//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the pieces the in-tree property tests need: the [`proptest!`] macro
//! (with `#![proptest_config(...)]` support), [`Strategy`] implementations
//! for integer ranges, `any::<T>()`, tuples, [`Just`], regex-literal string
//! strategies, `collection::vec`, and [`prop_oneof!`], plus the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! first counterexample found as-is) and deterministic per-test sampling
//! seeded from the test name, so failures reproduce exactly across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic sampling source used by the generated test runners.

    /// SplitMix64-based deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the test name), so each property
        /// gets a distinct but reproducible stream.
        pub fn deterministic(label: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    pub fn reject(msg: String) -> TestCaseError {
        TestCaseError::Reject(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String-literal "regex" strategies. Upstream proptest interprets the
/// pattern as a value regex; this stand-in generates printable strings of
/// random length (0..200), which satisfies every in-tree use (`"\\PC*"`
/// robustness fuzzing). The pattern itself is ignored.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(200) as usize;
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional exotic chars to
                // keep parsers honest.
                match rng.below(20) {
                    0 => char::from_u32(0x00A0 + rng.below(0x500) as u32).unwrap_or('¤'),
                    _ => (0x20u8 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec<T>` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategy choosing uniformly among boxed alternatives (see
/// [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Builds a [`OneOf`] from boxed strategies.
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
    OneOf { options }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Chooses uniformly among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests. Supports the upstream surface used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(any::<u8>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} falsified after {} cases: {}",
                                   stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5, "y={}", y);
        }

        #[test]
        fn vectors_respect_size(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_just_work(s in prop_oneof![Just("a".to_string()), Just("b".to_string())]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn string_strategy_yields_strings(s in "\\PC*") {
            prop_assert!(s.len() < 1000);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics() {
        // No `#[test]` on the inner property: it is a plain fn invoked
        // directly so the panic can be observed with catch_unwind.
        proptest! {
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let caught = std::panic::catch_unwind(always_fails);
        assert!(caught.is_err());
    }
}
