//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses.
//!
//! The build environment has no crates.io access; this stand-in keeps the
//! bench targets compiling and runnable. Each `bench_function` executes its
//! closure `sample_size` times and prints min/mean wall-clock times — no
//! statistical analysis, no HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration benchmark driver passed to the closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many times each closure is sampled.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        if b.times.is_empty() {
            println!("{name}: no samples");
        } else {
            let total: Duration = b.times.iter().sum();
            let min = b.times.iter().min().copied().unwrap_or_default();
            println!(
                "{name}: {} samples, min {:?}, mean {:?}",
                b.times.len(),
                min,
                total / b.times.len() as u32
            );
        }
        self
    }
}

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = sample_bench
        }
        benches();
    }
}
