//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few entry points it needs: the [`Rng`] extension trait
//! (`gen`, `gen_bool`, `gen_range`, `fill`), [`SeedableRng::seed_from_u64`]
//! and a deterministic [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64). Streams are *not* bit-compatible with upstream `rand`; all
//! in-tree consumers only rely on determinism and statistical uniformity,
//! never on exact values.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform draw in `[0, span)` by rejection (span > 0).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a word-sized seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic; fine for test stimulus and seeded
    /// experiment reproduction.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 37];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
