// Hand-written regression: registered datapath with an active-low
// asynchronous reset and a non-zero reset value. Exercises the
// const_reset_value extraction during elaboration, DFF init handling in
// the scan view's sequential feedback loop, and reset-polarity stimulus in
// every simulation layer.
module negedge_accumulator(
  input clk,
  input rst_n,
  input [7:0] d,
  input en,
  output reg [7:0] acc,
  output [7:0] peek
);
  assign peek = acc ^ 8'd170;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      acc <= 8'd7;
    end else begin
      acc <= en ? (acc + d) : (acc >> 1);
    end
  end
endmodule
