// Hand-written regression: case-based FSM whose transition conditions mix
// xnor (both `~^` spellings after parsing normalize) with reductions, plus
// a Moore output decoded from the state. Exercises case lowering, the
// default-arm pre-assignment idiom, and FSM extraction feeding the locking
// layer's candidate enumeration.
module xnor_fsm(
  input clk,
  input rst,
  input [3:0] sym,
  output [1:0] tag,
  output match
);
  reg [1:0] state;
  reg [1:0] state_n;
  assign tag = state ~^ 2'd2;
  assign match = (state == 2'd3) && (^sym);
  always @(*) begin
    state_n = state;
    case (state)
      2'd0: state_n = (sym ~^ 4'd9) == 4'd15 ? 2'd1 : 2'd0;
      2'd1: state_n = (&sym[1:0]) ? 2'd2 : 2'd1;
      2'd2: state_n = (sym[3] ~^ sym[0]) ? 2'd3 : 2'd0;
      2'd3: state_n = 2'd0;
    endcase
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
    end else begin
      state <= state_n;
    end
  end
endmodule
