// Hand-written regression: mux with an inverted select feeding nested
// ternaries. The optimizer's inverted-select absorption must swap the data
// legs when it eats the NOT — the exact rewrite the flag-gated
// injected miscompile corrupts — and constant legs tempt the folding
// rules into the same cone.
module inv_select_mux(
  input s,
  input t,
  input [3:0] a,
  input [3:0] b,
  output [3:0] y,
  output z
);
  wire [3:0] picked;
  wire [3:0] doubled;
  assign picked = (!s) ? (a ^ 4'd5) : (b | 4'd8);
  assign doubled = (~t) ? picked : (picked + 4'd1);
  assign y = ((s & ~t)) ? doubled : (doubled ^ 4'd15);
  assign z = (!(s ^ t)) ? (&a) : (|b);
endmodule
