//! Deterministic-parallelism suite: every parallel entry point must
//! produce output byte-identical to its sequential twin at any thread
//! count.
//!
//! Covered: the catalog flow runner (merged reports), the attack
//! portfolio (canonical verdicts), and the fuzzing campaign (reports and
//! persisted corpus directories), plus a cancellation stress test that
//! bounds how long a cancelled pool takes to drain.
//!
//! The fuzz test arms the process-global injected optimizer bug, so all
//! tests in this binary serialize on one mutex.

use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use rtlock_repro::attacks::{
    key_accuracy, portfolio_attack, portfolio_attack_sequential, AttackConfig, PortfolioConfig,
    PortfolioTarget,
};
use rtlock_repro::netlist::{GateKind, Netlist};
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::{
    lock_catalog_parallel, lock_catalog_sequential, CatalogEntry, CatalogJob, RtlLockConfig,
    RunBudget,
};
use rtlock_repro::artifacts::ArtifactStore;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Serializes the whole binary: the fuzz test flips a process-global
/// injection flag that must not leak into a concurrently running flow.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

// ---- catalog flow reports ----------------------------------------------

fn tiny_module(tag: u8) -> rtlock_repro::rtl::Module {
    rtlock_repro::rtl::parse(&format!(
        r#"
module tiny{tag}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h3{};
  end
endmodule"#,
        19 + tag,
        tag % 10
    ))
    .expect("tiny module parses")
}

fn quick_lock_config() -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 30.0,
            max_area_pct: 40.0,
            ..SelectionSpec::default()
        },
        verify_cycles: 16,
        scan: None,
        ..RtlLockConfig::default()
    }
}

fn catalog_job(designs: u8, portfolio: Option<PortfolioConfig>) -> CatalogJob {
    CatalogJob {
        entries: (0..designs)
            .map(|i| CatalogEntry {
                name: format!("tiny{i}"),
                module: tiny_module(i),
                config: quick_lock_config(),
            })
            .collect(),
        budget: RunBudget::unlimited(),
        portfolio,
        retry: rtlock_store::RetryPolicy::default(),
        cache: None,
    }
}

fn quick_portfolio() -> PortfolioConfig {
    PortfolioConfig {
        sat: AttackConfig { max_iterations: 1_000, ..AttackConfig::default() },
        sim_samples: 4,
        ..PortfolioConfig::default()
    }
}

#[test]
fn catalog_flow_reports_are_identical_across_thread_counts() {
    let _guard = serial();
    let job = catalog_job(4, None);
    let reference = lock_catalog_sequential(&job, &CancelToken::unlimited()).canonical();
    assert!(reference.contains("key_bits"), "flow must succeed:\n{reference}");
    for threads in [1, 2, 8] {
        let report = lock_catalog_parallel(&job, &Executor::new(threads), &CancelToken::unlimited());
        assert_eq!(report.canonical(), reference, "threads={threads}");
        assert_eq!(report.completed(), 4, "threads={threads}");
    }
}

#[test]
fn catalog_with_attacks_is_identical_across_thread_counts() {
    let _guard = serial();
    // scan: None exposes a full-scan combinational surface, so the
    // portfolio's SAT member gets a real target inside each worker.
    let job = catalog_job(2, Some(quick_portfolio()));
    let reference = lock_catalog_sequential(&job, &CancelToken::unlimited()).canonical();
    assert!(reference.contains("attack.winner"), "portfolio must run:\n{reference}");
    for threads in [1, 2, 8] {
        let report = lock_catalog_parallel(&job, &Executor::new(threads), &CancelToken::unlimited());
        assert_eq!(report.canonical(), reference, "threads={threads}");
    }
}

// ---- portfolio verdicts ------------------------------------------------

/// y = (a & b) ^ (c | d) locked with two XOR/XNOR key gates.
fn comb_pair(key: &[bool]) -> (Netlist, Netlist) {
    let mut orig = Netlist::new("orig");
    let a = orig.add_input("a");
    let b = orig.add_input("b");
    let c = orig.add_input("c");
    let d = orig.add_input("d");
    let ab = orig.add_gate(GateKind::And, vec![a, b]);
    let cd = orig.add_gate(GateKind::Or, vec![c, d]);
    let y = orig.add_gate(GateKind::Xor, vec![ab, cd]);
    orig.add_output("y", y);

    let mut locked = Netlist::new("locked");
    let a = locked.add_input("a");
    let b = locked.add_input("b");
    let c = locked.add_input("c");
    let d = locked.add_input("d");
    let k0 = locked.add_input("keyinput0");
    locked.mark_key_input(k0);
    let k1 = locked.add_input("keyinput1");
    locked.mark_key_input(k1);
    let ab = locked.add_gate(GateKind::And, vec![a, b]);
    let kind0 = if key[0] { GateKind::Xnor } else { GateKind::Xor };
    let ab_l = locked.add_gate(kind0, vec![ab, k0]);
    let cd = locked.add_gate(GateKind::Or, vec![c, d]);
    let kind1 = if key[1] { GateKind::Xnor } else { GateKind::Xor };
    let cd_l = locked.add_gate(kind1, vec![cd, k1]);
    let y = locked.add_gate(GateKind::Xor, vec![ab_l, cd_l]);
    locked.add_output("y", y);
    (locked, orig)
}

// ---- parallel DIP pipeline ---------------------------------------------

/// The pipeline's contract: executor worker count and cache mode are
/// scheduling/transport concerns, never semantic ones. The canonical
/// outcome — key bits, iteration count, deterministic counters — must be
/// byte-identical at workers ∈ {1, 2, 8} × cache ∈ {off, warm}.
#[test]
fn dip_pipeline_outcomes_are_identical_across_workers_and_cache_modes() {
    use rtlock_repro::attacks::{sat_attack_parallel_with, DipConfig};
    use rtlock_repro::sat::Solver;

    let _guard = serial();
    let (locked, orig) = comb_pair(&[true, false]);
    let dip = DipConfig::default();
    let reference = {
        let exec = Executor::new(1);
        sat_attack_parallel_with::<Solver>(&locked, &orig, &AttackConfig::default(), &dip, &exec)
    };
    let key = reference.key().expect("pipeline breaks the two-key circuit").to_vec();
    assert_eq!(key_accuracy(&locked, &orig, &key, 64, 7), 1.0);
    let reference = reference.canonical();

    let warm = Arc::new(ArtifactStore::in_memory());
    for workers in [1, 2, 8] {
        let exec = Executor::new(workers);
        for cache in [None, Some(warm.clone())] {
            let label = if cache.is_some() { "warm" } else { "off" };
            let cfg = AttackConfig { cache: cache.clone(), ..AttackConfig::default() };
            let out = sat_attack_parallel_with::<Solver>(&locked, &orig, &cfg, &dip, &exec);
            assert_eq!(out.canonical(), reference, "workers={workers}, cache={label}");
        }
    }
    assert!(warm.stats().hits > 0, "warm passes must serve cached templates");
}

/// The portfolio's determinism guarantee holds with the DIP pipeline
/// member enabled: parallel and sequential coordinators agree
/// byte-for-byte at every thread count.
#[test]
fn portfolio_with_dip_pipeline_is_identical_across_thread_counts() {
    use rtlock_repro::attacks::DipConfig;

    let _guard = serial();
    let (locked, orig) = comb_pair(&[false, true]);
    let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
    let cfg = PortfolioConfig { dip: Some(DipConfig::default()), ..quick_portfolio() };
    let reference = portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited());
    assert!(reference.broken, "pipeline member must break the target");
    let key = reference.key.as_deref().expect("winner recovered a key");
    assert_eq!(key_accuracy(&locked, &orig, key, 64, 7), 1.0);
    for threads in [1, 2, 8] {
        let exec = Executor::new(threads);
        let verdict = portfolio_attack(&target, &cfg, &exec, &CancelToken::unlimited());
        assert_eq!(verdict.canonical(), reference.canonical(), "threads={threads}");
    }
}

#[test]
fn portfolio_verdicts_are_identical_across_thread_counts() {
    let _guard = serial();
    let (locked, orig) = comb_pair(&[true, false]);
    let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
    let cfg = quick_portfolio();
    let reference = portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited());
    assert!(reference.broken, "SAT member must break the target");
    let key = reference.key.as_deref().expect("winner recovered a key");
    assert_eq!(key_accuracy(&locked, &orig, key, 64, 7), 1.0);
    for threads in [1, 2, 8] {
        let exec = Executor::new(threads);
        let verdict = portfolio_attack(&target, &cfg, &exec, &CancelToken::unlimited());
        assert_eq!(verdict.canonical(), reference.canonical(), "threads={threads}");
    }
}

// ---- fuzz reports and corpus directories -------------------------------

/// Sorted `(file name, contents)` pairs of every file in `dir`; empty when
/// the directory was never created (no divergences persisted).
fn dir_snapshot(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return files };
    for entry in entries {
        let entry = entry.expect("corpus dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let bytes = std::fs::read(entry.path()).expect("corpus file");
        files.push((name, bytes));
    }
    files.sort();
    files
}

#[test]
fn fuzz_reports_and_corpora_are_identical_across_thread_counts() {
    use rtlock_repro::fuzz::{run_fuzz, run_fuzz_parallel, FuzzConfig, FuzzReport};
    use rtlock_repro::synth::opt::inject;

    let _guard = serial();
    let scratch =
        std::env::temp_dir().join(format!("rtlock_parallel_determinism_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Arm the deliberate optimizer miscompile so the campaign actually
    // finds divergences — identical empty corpora prove nothing.
    let cfg_for = |dir: &std::path::Path| FuzzConfig {
        seed: 1,
        iters: 40,
        oracle: rtlock_repro::fuzz::OracleConfig {
            check_locked: false,
            ..rtlock_repro::fuzz::OracleConfig::default()
        },
        corpus_dir: Some(dir.to_path_buf()),
        ..FuzzConfig::default()
    };
    let digest = |r: &FuzzReport| {
        (
            r.executed,
            r.incomplete,
            r.cancelled,
            r.divergences
                .iter()
                .map(|d| (d.seed, d.layer, d.detail.clone(), d.shrunk_source.clone()))
                .collect::<Vec<_>>(),
        )
    };

    inject::set_opt_mux_bug(true);
    let seq_dir = scratch.join("seq");
    let reference = run_fuzz(&cfg_for(&seq_dir), &CancelToken::unlimited());
    let mut outcomes = Vec::new();
    for threads in [2, 8] {
        let dir = scratch.join(format!("par{threads}"));
        let report =
            run_fuzz_parallel(&cfg_for(&dir), &Executor::new(threads), &CancelToken::unlimited());
        outcomes.push((threads, dir, report));
    }
    inject::set_opt_mux_bug(false);

    assert!(
        !reference.divergences.is_empty(),
        "armed miscompile must produce divergences within {} iterations",
        cfg_for(&seq_dir).iters
    );
    let reference_corpus = dir_snapshot(&seq_dir);
    assert_eq!(reference_corpus.len(), {
        let mut seeds: Vec<u64> = reference.divergences.iter().map(|d| d.seed).collect();
        seeds.dedup();
        seeds.len()
    });
    for (threads, dir, report) in outcomes {
        assert_eq!(digest(&report), digest(&reference), "threads={threads}");
        assert_eq!(dir_snapshot(&dir), reference_corpus, "threads={threads}");
    }
    std::fs::remove_dir_all(&scratch).expect("cleanup");
}

/// The cache-differential oracle layer must not perturb campaign results:
/// with the optimizer bug armed, campaigns with the layer on and off find
/// the same divergences (the layer's own stores are per-design and fresh,
/// so it only ever *adds* findings — and a clean cache adds none).
#[test]
fn fuzz_reports_are_identical_with_cache_layer_on_and_off() {
    use rtlock_repro::fuzz::{run_fuzz, FuzzConfig, OracleConfig};
    use rtlock_repro::synth::opt::inject;

    let _guard = serial();
    let cfg_for = |check_cache: bool| FuzzConfig {
        seed: 1,
        iters: 40,
        oracle: OracleConfig { check_locked: false, check_cache, ..OracleConfig::default() },
        ..FuzzConfig::default()
    };
    inject::set_opt_mux_bug(true);
    let with_layer = run_fuzz(&cfg_for(true), &CancelToken::unlimited());
    let without_layer = run_fuzz(&cfg_for(false), &CancelToken::unlimited());
    inject::set_opt_mux_bug(false);

    assert!(!with_layer.divergences.is_empty(), "armed miscompile must diverge");
    let digest = |r: &rtlock_repro::fuzz::FuzzReport| {
        (
            r.executed,
            r.divergences
                .iter()
                .map(|d| (d.seed, d.layer, d.detail.clone(), d.shrunk_source.clone()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(digest(&with_layer), digest(&without_layer));
}

// ---- artifact cache determinism ----------------------------------------

/// The catalog job above with an artifact cache attached.
fn cached_job(cache: Option<Arc<ArtifactStore>>) -> CatalogJob {
    let mut job = catalog_job(2, Some(quick_portfolio()));
    job.cache = cache;
    job
}

/// The cache contract end to end: the catalog report (flow + portfolio
/// attacks) must be byte-identical across every cache mode — off, cold,
/// warm, and one store shared across runs — at every thread count.
#[test]
fn catalog_reports_are_identical_across_cache_modes_and_thread_counts() {
    let _guard = serial();
    let reference = lock_catalog_sequential(&cached_job(None), &CancelToken::unlimited()).canonical();
    assert!(reference.contains("attack.winner"), "portfolio must run:\n{reference}");

    // One store deliberately reused across thread counts: cold on the
    // first run, warm with cross-run artifacts on every later one.
    let shared = Arc::new(ArtifactStore::in_memory());
    for threads in [1, 2, 8] {
        let exec = Executor::new(threads);
        let unlimited = CancelToken::unlimited;

        let cold = Arc::new(ArtifactStore::in_memory());
        let report = lock_catalog_parallel(&cached_job(Some(cold.clone())), &exec, &unlimited());
        assert_eq!(report.canonical(), reference, "cold cache, threads={threads}");
        assert!(cold.stats().misses > 0, "cold store must be consulted (threads={threads})");

        let warm = Arc::new(ArtifactStore::in_memory());
        lock_catalog_parallel(&cached_job(Some(warm.clone())), &exec, &unlimited());
        let primed_hits = warm.stats().hits;
        let report = lock_catalog_parallel(&cached_job(Some(warm.clone())), &exec, &unlimited());
        assert_eq!(report.canonical(), reference, "warm cache, threads={threads}");
        assert!(
            warm.stats().hits > primed_hits,
            "second run over a warmed store must hit (threads={threads})"
        );

        let report = lock_catalog_parallel(&cached_job(Some(shared.clone())), &exec, &unlimited());
        assert_eq!(report.canonical(), reference, "shared cache, threads={threads}");
    }
    assert!(shared.stats().hits > 0, "shared store must serve artifacts across runs");
}

/// Poisoned-cache regression: a corrupted on-disk entry must be detected
/// by its checksum and recomputed — never served — and the store must
/// self-heal by rewriting the entry, with the report byte-identical to a
/// clean run throughout.
#[test]
fn poisoned_disk_entries_are_recomputed_and_healed() {
    let _guard = serial();
    let scratch = std::env::temp_dir().join(format!("rtlock_cache_poison_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let store = Arc::new(ArtifactStore::on_disk(&scratch));
    let reference =
        lock_catalog_sequential(&cached_job(Some(store)), &CancelToken::unlimited()).canonical();

    // Corrupt every persisted artifact: flip the last payload byte, which
    // breaks the frame checksum without touching its length fields.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&scratch).expect("cache dir exists") {
        let path = entry.expect("cache dir entry").path();
        let mut bytes = std::fs::read(&path).expect("cache entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt cache entry");
        corrupted += 1;
    }
    assert!(corrupted > 0, "the disk tier must have persisted artifacts");

    let poisoned_store = Arc::new(ArtifactStore::on_disk(&scratch));
    let report =
        lock_catalog_sequential(&cached_job(Some(poisoned_store.clone())), &CancelToken::unlimited());
    assert_eq!(report.canonical(), reference, "corrupt entries must be recomputed, not served");
    let stats = poisoned_store.stats();
    assert!(stats.poisoned > 0, "checksum failures must be counted: {}", stats.line());

    // Self-heal: the poisoned run rewrote every entry it touched, so a
    // third store over the same directory sees only clean frames.
    let healed_store = Arc::new(ArtifactStore::on_disk(&scratch));
    let report =
        lock_catalog_sequential(&cached_job(Some(healed_store.clone())), &CancelToken::unlimited());
    assert_eq!(report.canonical(), reference, "healed cache must still reproduce the report");
    let stats = healed_store.stats();
    assert_eq!(stats.poisoned, 0, "recomputed entries must have replaced the corrupt ones");
    assert!(stats.hits > 0, "healed entries must now be served: {}", stats.line());

    std::fs::remove_dir_all(&scratch).expect("cleanup");
}

/// SCOAP-reuse regression: with a warm cache the flow must not recompute
/// a single SCOAP profile — one `scoap::analyze` call per distinct
/// netlist hash, ever, across the pre-lock, post-lock, and analysis lint
/// gates (which previously each recomputed it per run).
#[test]
fn warm_cache_runs_compute_no_new_scoap_profiles() {
    use rtlock_repro::netlist::scoap;
    use rtlock_repro::rtlock::lock_governed_cached;

    let _guard = serial();
    let module = tiny_module(0);
    let config = quick_lock_config();
    let budget = RunBudget::unlimited();
    let store = Arc::new(ArtifactStore::in_memory());

    let before = scoap::analysis_count();
    let cold = lock_governed_cached(&module, &config, &budget, Some(store.clone())).expect("flow");
    let after_cold = scoap::analysis_count();
    assert!(after_cold > before, "the cold run must compute SCOAP at least once");

    let warm = lock_governed_cached(&module, &config, &budget, Some(store)).expect("flow");
    assert_eq!(
        scoap::analysis_count(),
        after_cold,
        "a warm run must serve every SCOAP profile from the cache"
    );
    assert_eq!(warm.report, cold.report, "hot == cold flow report");
}

// ---- cancellation stress -----------------------------------------------

#[test]
fn cancelled_catalog_drains_quickly_without_deadlock() {
    let _guard = serial();
    // Plenty of work queued behind few workers: locking 12 designs with
    // the portfolio attached takes far longer than the drain bound below,
    // so finishing in time demonstrates the cancel actually propagated.
    let job = catalog_job(12, Some(quick_portfolio()));
    let token = CancelToken::unlimited();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        })
    };
    let started = Instant::now();
    let report = lock_catalog_parallel(&job, &Executor::new(4), &token);
    let elapsed = started.elapsed();
    canceller.join().expect("canceller thread");

    assert!(
        elapsed < Duration::from_secs(20),
        "cancelled pool must drain promptly, took {elapsed:?}"
    );
    assert_eq!(report.designs.len(), 12, "every design slot must be accounted for");
    // Designs that never started report Cancelled; in-flight ones may
    // finish or fail, but none may vanish or panic.
    assert!(
        !report
            .designs
            .iter()
            .any(|(_, st)| matches!(st, rtlock_repro::rtlock::DesignStatus::Panicked(_))),
        "{}",
        report.canonical()
    );
}
