//! Governor × pool interaction properties: any combination of injected
//! stage fault, worker count, and cancellation timing must leave every
//! design slot in a structured state — `Done`, `Failed` with a typed
//! [`LockError`], or `Cancelled` — and must never surface a worker panic
//! or deadlock the pool.
//!
//! This is the cross-layer companion to `crates/core/tests/governor_faults.rs`:
//! that suite proves each stage fault is absorbed in isolation; this one
//! proves the absorption survives being raced across a work-stealing pool
//! while an external token fires at an arbitrary point.

use proptest::prelude::*;
use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::governor::{Fault, FaultPlan, Stage};
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::{
    lock_catalog_parallel, CatalogEntry, CatalogJob, DesignStatus, LockError, RtlLockConfig,
    RunBudget,
};
use std::time::Duration;

const FAULTS: [Fault; 4] = [Fault::Panic, Fault::Timeout, Fault::EmptyResult, Fault::Sabotage];

fn tiny_module(tag: u8) -> rtlock_repro::rtl::Module {
    rtlock_repro::rtl::parse(&format!(
        r#"
module gp{tag}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h4{};
  end
endmodule"#,
        23 + tag,
        tag % 10
    ))
    .expect("module parses")
}

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 30.0,
            max_area_pct: 40.0,
            ..SelectionSpec::default()
        },
        verify_cycles: 16,
        scan: None,
        ..RtlLockConfig::default()
    }
}

/// A `Failed` slot must carry one of the flow's typed errors — the
/// catch-all here is deliberate exhaustiveness: constructing the variant
/// proves the error is structured, not a stringly panic.
fn assert_structured(name: &str, err: &LockError) {
    match err {
        LockError::NoCandidates
        | LockError::SelectionInfeasible
        | LockError::VerificationFailed { .. }
        | LockError::Scan(_)
        | LockError::Synthesis(_)
        | LockError::Simulation(_)
        | LockError::StagePanic { .. }
        | LockError::Timeout { .. }
        | LockError::LintRejected { .. } => {}
    }
    let _ = name;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fault_cancel_interleaving_stays_structured(
        stage_idx in 0usize..Stage::ALL.len(),
        fault_idx in 0usize..FAULTS.len(),
        threads in 1usize..5,
        cancel_sel in 0u8..5,
        cancel_delay_raw in 0u64..400,
    ) {
        // sel 0 = no external cancel; otherwise fire after the delay.
        let cancel_delay_us = (cancel_sel > 0).then_some(cancel_delay_raw);
        let stage = Stage::ALL[stage_idx];
        let fault = FAULTS[fault_idx];
        let job = CatalogJob {
            entries: (0..3)
                .map(|i| CatalogEntry {
                    name: format!("gp{i}"),
                    module: tiny_module(i),
                    config: quick_config(),
                })
                .collect(),
            budget: RunBudget::unlimited()
                .with_faults(FaultPlan::none().inject(stage, fault)),
            portfolio: None,
            retry: rtlock_store::RetryPolicy::default(),
            cache: None,
        };

        let token = CancelToken::unlimited();
        let canceller = cancel_delay_us.map(|us| {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(us));
                token.cancel();
            })
        });

        let report = lock_catalog_parallel(&job, &Executor::new(threads), &token);
        if let Some(h) = canceller {
            h.join().expect("canceller thread");
        }

        prop_assert_eq!(report.designs.len(), 3, "every slot accounted for");
        for (name, status) in &report.designs {
            match status {
                DesignStatus::Done(_) | DesignStatus::Cancelled(_) => {}
                DesignStatus::Failed(err) => assert_structured(name, err),
                DesignStatus::Replayed(r) => {
                    return Err(TestCaseError::fail(format!(
                        "design {name}: replayed status from a run with no journal: {r:?}"
                    )));
                }
                DesignStatus::Panicked(msg) => {
                    return Err(TestCaseError::fail(format!(
                        "design {name}: panic escaped the governor into the pool \
                         (stage {stage}, fault {fault:?}): {msg}"
                    )));
                }
            }
        }

        // An injected panic in particular must come back as the typed
        // StagePanic error attributed to the right stage — on every
        // design that got far enough to run it. The lint gates are the
        // exception: a panicking gate is skipped (degradation recorded,
        // stage outcome `Panicked`), not a failed flow.
        if fault == Fault::Panic && cancel_delay_us.is_none() {
            for (name, status) in &report.designs {
                match status {
                    DesignStatus::Done(summary)
                        if matches!(stage, Stage::PreLint | Stage::PostLint) =>
                    {
                        let outcome = summary
                            .report
                            .stage_outcomes
                            .iter()
                            .find(|o| o.stage == stage)
                            .unwrap_or_else(|| panic!("{name}: no outcome for {stage}"));
                        prop_assert!(
                            matches!(
                                &outcome.status,
                                rtlock_repro::rtlock::governor::StageStatus::Panicked(_)
                            ),
                            "{}: lint-gate panic not recorded in stage outcomes: {:?}",
                            name,
                            outcome
                        );
                    }
                    DesignStatus::Failed(LockError::StagePanic { stage: s, .. }) => {
                        prop_assert_eq!(*s, stage, "{}: panic attributed to wrong stage", name);
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "design {name}: injected panic at {stage} was swallowed: {other:?}"
                        )));
                    }
                }
            }
        }
    }
}
