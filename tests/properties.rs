//! Cross-crate property-based tests (proptest): core invariants that must
//! hold for arbitrary inputs, not just the unit-test corpus.

use proptest::prelude::*;
use rtlock_repro::netlist::{GateKind, NetSim, Netlist};
use rtlock_repro::rtl::bv::Bv;
use rtlock_repro::sat::{SolveResult, Solver, Var};
use rtlock_repro::synth::optimize;

// ---- Bv arithmetic agrees with u128 reference semantics ----------------

proptest! {
    #[test]
    fn bv_add_matches_u128(a in any::<u64>(), b in any::<u64>(), width in 1usize..64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let x = Bv::from_u64(width, a);
        let y = Bv::from_u64(width, b);
        let expect = (a & mask).wrapping_add(b & mask) & mask;
        prop_assert_eq!(x.add(&y).to_u64_lossy(), expect);
    }

    #[test]
    fn bv_sub_then_add_round_trips(a in any::<u64>(), b in any::<u64>(), width in 1usize..64) {
        let x = Bv::from_u64(width, a);
        let y = Bv::from_u64(width, b);
        prop_assert_eq!(x.sub(&y).add(&y), x);
    }

    #[test]
    fn bv_mul_matches_u128(a in any::<u32>(), b in any::<u32>(), width in 1usize..33) {
        let x = Bv::from_u64(width, a as u64);
        let y = Bv::from_u64(width, b as u64);
        let mask = (1u64 << width) - 1;
        let expect = ((a as u64 & mask) as u128 * (b as u64 & mask) as u128) as u64 & mask;
        prop_assert_eq!(x.mul(&y).to_u64_lossy(), expect);
    }

    #[test]
    fn bv_slice_concat_identity(v in any::<u64>(), width in 2usize..64, cut in 1usize..63) {
        prop_assume!(cut < width);
        let x = Bv::from_u64(width, v);
        let hi = x.slice(width - 1, cut);
        let lo = x.slice(cut - 1, 0);
        prop_assert_eq!(hi.concat(&lo), x);
    }

    #[test]
    fn bv_shift_inverse(v in any::<u64>(), width in 1usize..64, n in 0usize..16) {
        prop_assume!(n < width);
        let x = Bv::from_u64(width, v);
        // (x << n) >> n clears the top n bits only.
        let round = x.shl(n).shr(n);
        let expect = x.and(&Bv::ones(width).shr(n));
        prop_assert_eq!(round, expect);
    }

    #[test]
    fn bv_binary_string_round_trip(v in any::<u64>(), width in 1usize..64) {
        let x = Bv::from_u64(width, v);
        let s = format!("{x}");
        let digits = s.split_once("'b").expect("prefixed").1;
        prop_assert_eq!(Bv::from_binary_str(digits).expect("parses"), x);
    }
}

// ---- optimizer preserves combinational function -------------------------

/// Builds a random DAG netlist from a seed byte stream.
fn random_netlist(ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("prop");
    let mut nets = vec![n.add_input("a"), n.add_input("b"), n.add_input("c"), n.add_input("d")];
    let zero = n.add_gate(GateKind::Const0, vec![]);
    let one = n.add_gate(GateKind::Const1, vec![]);
    nets.push(zero);
    nets.push(one);
    for (i, &op) in ops.iter().enumerate() {
        let a = nets[(op as usize / 7) % nets.len()];
        let b = nets[(op as usize * 13 + i) % nets.len()];
        let s = nets[(op as usize * 31 + i * 3) % nets.len()];
        let kind = match op % 10 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            4 => GateKind::Nor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Buf,
            _ => GateKind::Mux,
        };
        let g = match kind {
            GateKind::Not | GateKind::Buf => n.add_gate(kind, vec![a]),
            GateKind::Mux => n.add_gate(kind, vec![s, a, b]),
            _ => n.add_gate(kind, vec![a, b]),
        };
        nets.push(g);
    }
    n.add_output("y0", *nets.last().expect("non-empty"));
    n.add_output("y1", nets[nets.len() / 2]);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn optimize_preserves_function(ops in proptest::collection::vec(any::<u8>(), 1..40)) {
        let reference = random_netlist(&ops);
        let mut optimized = reference.clone();
        optimize(&mut optimized);
        let mut sim_r = NetSim::new(&reference).expect("acyclic");
        let mut sim_o = NetSim::new(&optimized).expect("acyclic");
        for pattern in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
            sim_r.set_inputs_bool(&bits);
            sim_o.set_inputs_bool(&bits);
            sim_r.eval_comb();
            sim_o.eval_comb();
            prop_assert_eq!(sim_r.outputs()[0] & 1, sim_o.outputs()[0] & 1);
            prop_assert_eq!(sim_r.outputs()[1] & 1, sim_o.outputs()[1] & 1);
        }
    }
}

// ---- SAT solver models satisfy the clauses ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn solver_models_satisfy_clauses(
        clauses in proptest::collection::vec(
            proptest::collection::vec((1i32..9, any::<bool>()), 1..4),
            1..24,
        )
    ) {
        let mut solver = Solver::new();
        let dimacs: Vec<Vec<i32>> = clauses
            .iter()
            .map(|c| c.iter().map(|&(v, pos)| if pos { v } else { -v }).collect())
            .collect();
        for c in &dimacs {
            solver.add_dimacs_clause(c);
        }
        if solver.solve(&[]) == SolveResult::Sat {
            for c in &dimacs {
                let ok = c.iter().any(|&l| {
                    let val = solver.value(Var(l.unsigned_abs() - 1)).unwrap_or(false);
                    (l > 0) == val
                });
                prop_assert!(ok, "model violates {c:?}");
            }
        } else {
            // UNSAT must be stable under re-solving.
            prop_assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        }
    }
}

// ---- parser/printer round trip on generated expressions -----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn print_parse_round_trip_preserves_semantics(seed in any::<u64>(), stimuli in proptest::collection::vec(any::<u64>(), 4)) {
        use rtlock_repro::rtl::{parse, print, sim::Simulator};
        // Generate a random expression source deterministically from `seed`.
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let mut expr = String::from("a");
        for _ in 0..(seed % 6 + 1) {
            let op = ["+", "-", "&", "|", "^", "*", ">>", "<<"][(next() % 8) as usize];
            let rhs = match next() % 3 {
                0 => "b".to_string(),
                1 => format!("8'd{}", next() % 256),
                _ => format!("(a ^ 8'd{})", next() % 256),
            };
            expr = format!("({expr} {op} {rhs})");
        }
        let src = format!("module p(input [7:0] a, input [7:0] b, output [7:0] y); assign y = {expr}; endmodule");
        let m1 = parse(&src).expect("generated source parses");
        let m2 = parse(&print(&m1)).expect("printed source re-parses");
        let mut s1 = Simulator::new(&m1);
        let mut s2 = Simulator::new(&m2);
        for &v in &stimuli {
            s1.set_by_name("a", Bv::from_u64(8, v));
            s1.set_by_name("b", Bv::from_u64(8, v >> 8));
            s2.set_by_name("a", Bv::from_u64(8, v));
            s2.set_by_name("b", Bv::from_u64(8, v >> 8));
            s1.settle().expect("settles");
            s2.settle().expect("settles");
            prop_assert_eq!(s1.get_by_name("y"), s2.get_by_name("y"));
        }
    }
}

// ---- Key-taint is a sound over-approximation of key dependence ----------
//
// Brute-force ground truth: with 5 free bits (2 data inputs + 3 key
// inputs) the 64-lane netlist simulator holds the entire truth table in
// one word. A gate whose value changes when a single key bit flips
// *depends* on that bit, so the dataflow fixpoint must report it tainted;
// the same trick cross-checks the per-key-bit cofactor constants and the
// plain ternary constant proofs against exhaustive simulation.

/// Same shape as [`random_netlist`], plus three marked key inputs.
fn random_locked_netlist(ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("prop_locked");
    let mut nets = vec![n.add_input("a"), n.add_input("b")];
    for i in 0..3 {
        let k = n.add_input(format!("keyinput{i}"));
        n.mark_key_input(k);
        nets.push(k);
    }
    nets.push(n.add_gate(GateKind::Const0, vec![]));
    nets.push(n.add_gate(GateKind::Const1, vec![]));
    for (i, &op) in ops.iter().enumerate() {
        let a = nets[(op as usize / 7) % nets.len()];
        let b = nets[(op as usize * 13 + i) % nets.len()];
        let s = nets[(op as usize * 31 + i * 3) % nets.len()];
        let kind = match op % 10 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            4 => GateKind::Nor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Buf,
            _ => GateKind::Mux,
        };
        let g = match kind {
            GateKind::Not | GateKind::Buf => n.add_gate(kind, vec![a]),
            GateKind::Mux => n.add_gate(kind, vec![s, a, b]),
            _ => n.add_gate(kind, vec![a, b]),
        };
        nets.push(g);
    }
    n.add_output("y0", *nets.last().expect("non-empty"));
    n.add_output("y1", nets[nets.len() / 2]);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn key_taint_covers_every_simulated_key_dependence(
        ops in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        use rtlock_repro::dataflow::analyze_netlist;

        let n = random_locked_netlist(&ops);
        let analysis = analyze_netlist(&n);
        let inputs: Vec<_> = n.inputs().to_vec();
        prop_assert_eq!(inputs.len(), 5);
        let lanes: u64 = (1 << (1 << inputs.len())) - 1; // 32 lanes used

        // Lane j carries input valuation j: input i reads bit i of j.
        let truth_table = |i: usize| -> u64 {
            let mut w = 0u64;
            for j in 0..32u64 {
                w |= (j >> i & 1) << j;
            }
            w
        };
        let mut sim = NetSim::new(&n).expect("acyclic");
        for (i, &g) in inputs.iter().enumerate() {
            sim.set_input(g, truth_table(i));
        }
        sim.eval_comb();
        let base: Vec<u64> = n.ids().map(|g| sim.value(g)).collect();

        // Ternary constant proofs agree with the exhaustive truth table.
        for (g, &word) in n.ids().zip(&base) {
            if let Some(c) = analysis.value_of(g).constant() {
                let want = if c { lanes } else { 0 };
                prop_assert_eq!(
                    word & lanes, want,
                    "gate {} proven constant {} but simulates otherwise", g, c
                );
            }
        }

        for (bit, &kg) in n.key_inputs.clone().iter().enumerate() {
            let ki = inputs.iter().position(|&g| g == kg).expect("key is an input");

            // Cofactor constants hold on the matching half of the lanes.
            let half = |v: bool| -> u64 {
                (0..32u64).filter(|j| (j >> ki & 1 == 1) == v).map(|j| 1 << j).sum()
            };
            for (g, &word) in n.ids().zip(&base) {
                let (c0, c1) = analysis.cofactor_values(bit, g);
                for (cof, v) in [(c0, false), (c1, true)] {
                    if let Some(c) = cof.constant() {
                        let m = half(v);
                        prop_assert_eq!(
                            word & m, if c { m } else { 0 },
                            "gate {} cofactor(key{}={}) proven {} but simulates otherwise",
                            g, bit, v, c
                        );
                    }
                }
            }

            // Flip only this key bit: any gate that changes is key-dependent
            // and must be tainted.
            sim.set_input(kg, truth_table(ki) ^ lanes);
            sim.eval_comb();
            for (g, &b) in n.ids().zip(&base) {
                if (sim.value(g) ^ b) & lanes != 0 {
                    prop_assert!(
                        analysis.is_tainted_by(g, bit),
                        "gate {} depends on key bit {} but is not tainted", g, bit
                    );
                }
            }
            sim.set_input(kg, truth_table(ki));
        }
    }
}

// ---- structural hash: renumbering-stable, mutation-sensitive ------------

/// How to perturb `random_netlist`'s construction. `Default` reproduces
/// it exactly; each knob is one controlled deviation used by the hash
/// properties below.
#[derive(Default)]
struct HashPerturbation {
    /// Declare `Const1` before `Const0`, renumbering both constants and
    /// every downstream gate while leaving the structure untouched.
    swap_const_decl: bool,
    /// Emit the `Const0` gate as a second `Const1` (a single-constant
    /// structural mutation).
    const0_as_one: bool,
    /// Flip the gate kind chosen for this op index (a single-gate
    /// structural mutation: And<->Or, Xor<->Xnor, Nand<->Nor, Not<->Buf,
    /// Mux -> And over its select and first data leg).
    flip_kind_at: Option<usize>,
}

/// `random_netlist` with the perturbation applied — kept in lockstep with
/// the generator above so the unperturbed build is gate-for-gate equal.
fn perturbed_netlist(ops: &[u8], p: &HashPerturbation) -> Netlist {
    let mut n = Netlist::new("prop");
    let mut nets = vec![n.add_input("a"), n.add_input("b"), n.add_input("c"), n.add_input("d")];
    let zero_kind = if p.const0_as_one { GateKind::Const1 } else { GateKind::Const0 };
    let (zero, one) = if p.swap_const_decl {
        let one = n.add_gate(GateKind::Const1, vec![]);
        (n.add_gate(zero_kind, vec![]), one)
    } else {
        let zero = n.add_gate(zero_kind, vec![]);
        (zero, n.add_gate(GateKind::Const1, vec![]))
    };
    nets.push(zero);
    nets.push(one);
    for (i, &op) in ops.iter().enumerate() {
        let a = nets[(op as usize / 7) % nets.len()];
        let b = nets[(op as usize * 13 + i) % nets.len()];
        let s = nets[(op as usize * 31 + i * 3) % nets.len()];
        let mut kind = match op % 10 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            4 => GateKind::Nor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Buf,
            _ => GateKind::Mux,
        };
        if p.flip_kind_at == Some(i) {
            kind = match kind {
                GateKind::And => GateKind::Or,
                GateKind::Or => GateKind::And,
                GateKind::Xor => GateKind::Xnor,
                GateKind::Xnor => GateKind::Xor,
                GateKind::Nand => GateKind::Nor,
                GateKind::Nor => GateKind::Nand,
                GateKind::Not => GateKind::Buf,
                GateKind::Buf => GateKind::Not,
                _ => GateKind::And,
            };
        }
        let g = match kind {
            GateKind::Not | GateKind::Buf => n.add_gate(kind, vec![a]),
            GateKind::Mux => n.add_gate(kind, vec![s, a, b]),
            GateKind::And if p.flip_kind_at == Some(i) && op % 10 == 8 => {
                // A flipped Mux keeps its select and first data leg.
                n.add_gate(kind, vec![s, a])
            }
            _ => n.add_gate(kind, vec![a, b]),
        };
        nets.push(g);
    }
    n.add_output("y0", *nets.last().expect("non-empty"));
    n.add_output("y1", nets[nets.len() / 2]);
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Renumbering invariance: declaring the constants in the opposite
    /// order shifts every downstream gate ID, yet the structural hash —
    /// which keys the artifact cache — must not move. The serialized
    /// bytes *do* move, proving the twin is a genuine renumbering.
    #[test]
    fn structural_hash_is_stable_under_gate_renumbering(
        ops in proptest::collection::vec(any::<u8>(), 1..40)
    ) {
        use rtlock_repro::artifacts::structural_hash;
        use rtlock_repro::netlist::codec;
        let base = perturbed_netlist(&ops, &HashPerturbation::default());
        prop_assert_eq!(codec::encode(&base), codec::encode(&random_netlist(&ops)));
        let twin =
            perturbed_netlist(&ops, &HashPerturbation { swap_const_decl: true, ..Default::default() });
        prop_assert_eq!(structural_hash(&base), structural_hash(&twin));
        prop_assert_ne!(codec::encode(&base), codec::encode(&twin));
    }

    /// Collision smoke over the generator: flipping a single gate kind
    /// must change the hash (a collision here would still be *correct* —
    /// the store compares identity bytes — but would silently cost every
    /// lookup a decode, so the hasher must separate near-identical DAGs).
    #[test]
    fn structural_hash_detects_a_single_gate_mutation(
        ops in proptest::collection::vec(any::<u8>(), 1..40),
        at in any::<u8>()
    ) {
        use rtlock_repro::artifacts::structural_hash;
        let base = perturbed_netlist(&ops, &HashPerturbation::default());
        let flip = at as usize % ops.len();
        let mutated = perturbed_netlist(
            &ops,
            &HashPerturbation { flip_kind_at: Some(flip), ..Default::default() },
        );
        prop_assert_ne!(structural_hash(&base), structural_hash(&mutated));
    }

    /// Same smoke for a single-constant mutation.
    #[test]
    fn structural_hash_detects_a_single_constant_mutation(
        ops in proptest::collection::vec(any::<u8>(), 1..40)
    ) {
        use rtlock_repro::artifacts::structural_hash;
        let base = perturbed_netlist(&ops, &HashPerturbation::default());
        let mutated =
            perturbed_netlist(&ops, &HashPerturbation { const0_as_one: true, ..Default::default() });
        prop_assert_ne!(structural_hash(&base), structural_hash(&mutated));
    }

    /// Cache-key reproducibility: optimizing the same netlist twice must
    /// land on bit-identical bytes and hashes, or warm lookups keyed on
    /// `hash(optimized(n))` could never hit.
    #[test]
    fn optimized_netlist_hash_is_reproducible(
        ops in proptest::collection::vec(any::<u8>(), 1..40)
    ) {
        use rtlock_repro::artifacts::structural_hash;
        use rtlock_repro::netlist::codec;
        let base = random_netlist(&ops);
        let mut first = base.clone();
        optimize(&mut first);
        let mut second = base.clone();
        optimize(&mut second);
        prop_assert_eq!(codec::encode(&first), codec::encode(&second));
        prop_assert_eq!(structural_hash(&first), structural_hash(&second));
    }

    /// The exact codec the disk tier stores netlists through must round
    /// trip arbitrary generated DAGs unchanged.
    #[test]
    fn netlist_codec_round_trips(ops in proptest::collection::vec(any::<u8>(), 1..40)) {
        use rtlock_repro::netlist::codec;
        let base = random_netlist(&ops);
        let decoded = codec::decode(&codec::encode(&base)).expect("well-formed frame");
        prop_assert_eq!(&decoded, &base);
        prop_assert_eq!(codec::encode(&decoded), codec::encode(&base));
    }
}
