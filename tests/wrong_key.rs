//! Wrong-key divergence properties over the whole benchmark catalog.
//!
//! The locking contract has two halves: the correct key must be
//! behavior-preserving, and *any* wrong key must corrupt. "Wrong" needs
//! care — RTLock's entangled XNOR pairs make some multi-bit flips
//! functionally correct equivalent keys (flipping both bits of a pair
//! preserves the unlock condition), so these tests flip exactly ONE bit,
//! which is guaranteed to leave every equivalence class.

use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::verify::cosim_mismatch_rate;
use rtlock_repro::rtlock::{lock, LockedDesign, RtlLockConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 120.0,
            max_area_pct: 40.0,
            min_key_bits: 8,
            ..SelectionSpec::default()
        },
        scan: None,
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

/// Locks every catalog design once; every test case reuses the results.
fn locked_catalog() -> &'static Vec<(&'static str, LockedDesign)> {
    static CACHE: OnceLock<Vec<(&'static str, LockedDesign)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        rtlock_designs::catalog()
            .into_iter()
            .map(|b| {
                let module = b.module().unwrap_or_else(|e| panic!("{}: {e}", b.name));
                let locked =
                    lock(&module, &quick_config()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
                (b.name, locked)
            })
            .collect()
    })
}

/// Observed corruption for a key, maximized over a few stimulus seeds (a
/// wrong key can be quiet on one short random trace; it must not be quiet
/// on all of them).
fn corruption(design: &LockedDesign, key: &[bool]) -> f64 {
    [5u64, 77, 901]
        .iter()
        .map(|&seed| cosim_mismatch_rate(&design.original, &design.locked, key, 48, seed))
        .fold(0.0, f64::max)
}

#[test]
fn correct_key_never_diverges_on_any_design() {
    for (name, design) in locked_catalog() {
        assert!(design.key.len() >= 8, "{name}: expected a real key, got {}", design.key.len());
        for seed in [5u64, 77, 901] {
            let rate = cosim_mismatch_rate(&design.original, &design.locked, &design.key, 48, seed);
            assert_eq!(rate, 0.0, "{name}: correct key diverged (seed {seed})");
        }
    }
}

#[test]
fn eight_single_bit_flips_diverge_on_every_design() {
    // Deterministic spread of >= 8 distinct flip positions per design.
    for (name, design) in locked_catalog() {
        let k = design.key.len();
        let picks = 8.min(k);
        let mut tried = Vec::new();
        for j in 0..picks {
            let bit = (j * k / picks + j) % k;
            if tried.contains(&bit) {
                continue;
            }
            tried.push(bit);
            let mut wrong = design.key.clone();
            wrong[bit] = !wrong[bit];
            let rate = corruption(design, &wrong);
            assert!(
                rate > 0.0,
                "{name}: flipping key bit {bit} of {k} produced no observable corruption"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (design, key-bit) pairs: a single flipped bit always
    /// observably corrupts, and re-flipping it back always restores
    /// equivalence.
    #[test]
    fn random_single_bit_flip_diverges(design_idx in 0usize..6, bit_sel in 0u32..u32::MAX) {
        let (name, design) = &locked_catalog()[design_idx];
        let k = design.key.len();
        let bit = bit_sel as usize % k;
        let mut wrong = design.key.clone();
        wrong[bit] = !wrong[bit];
        let rate = corruption(design, &wrong);
        prop_assert!(
            rate > 0.0,
            "{}: flipping key bit {} of {} produced no observable corruption", name, bit, k
        );
        wrong[bit] = !wrong[bit];
        let restored = cosim_mismatch_rate(&design.original, &design.locked, &wrong, 48, 5);
        prop_assert!(restored == 0.0, "{}: restored key must be clean", name);
    }
}
