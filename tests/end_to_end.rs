//! Cross-crate integration tests: the full RTLock pipeline on real
//! benchmark designs, exercised the way the paper's evaluation does.

use rtlock_repro::attacks::{sat_attack, AttackConfig, AttackOutcome};
use rtlock_repro::atpg::{run_atpg, AtpgConfig};
use rtlock_repro::rtl::sim::Simulator;
use rtlock_repro::rtlock::baselines::{lock_baseline, BaselineKind};
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::verify::cosim_mismatch_rate;
use rtlock_repro::rtlock::{lock, AttackSurface, RtlLockConfig};
use rtlock_repro::synth::{elaborate, optimize, scan, scan_view};
use std::time::Duration;

fn quick_config(with_scan: bool) -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 120.0,
            max_area_pct: 40.0,
            min_key_bits: 8,
            ..SelectionSpec::default()
        },
        scan: if with_scan { Some(Default::default()) } else { None },
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

#[test]
fn lock_b05_and_recover_key_with_sat_attack() {
    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(false)).expect("locks");
    assert!(locked.key.len() >= 8);
    match locked.attack_surface(None).expect("surface") {
        AttackSurface::CombinationalViews { locked: lv, original: ov } => {
            let out = sat_attack(
                &lv,
                &ov,
                &AttackConfig { max_iterations: 50_000, timeout: Some(Duration::from_secs(60)), ..Default::default() },
            );
            match out {
                AttackOutcome::KeyFound { key, .. } => {
                    // Recovered key must be functionally correct at RTL.
                    let rate = cosim_mismatch_rate(&locked.original, &locked.locked, &key, 40, 9);
                    assert_eq!(rate, 0.0, "SAT-recovered key must unlock the design");
                }
                other => panic!("attack should finish on this size: {other:?}"),
            }
        }
        other => panic!("expected comb views without scan locking: {other:?}"),
    }
}

#[test]
fn scan_locking_blocks_the_sat_attack_path() {
    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(true)).expect("locks");
    let policy = locked.scan_policy.clone().expect("scan locked");
    assert!(matches!(
        locked.attack_surface(None).expect("surface"),
        AttackSurface::SequentialOnly { .. }
    ));
    assert!(matches!(
        locked.attack_surface(Some(&policy.scan_key)).expect("surface"),
        AttackSurface::CombinationalViews { .. }
    ));
}

#[test]
fn locked_fibo_still_computes_fibonacci_with_the_key() {
    use rtlock_repro::rtl::Bv;
    let module = rtlock_designs::by_name("fibo").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(false)).expect("locks");
    let mut sim = Simulator::new(&locked.locked);
    sim.set_by_name("rst", Bv::from_bool(true));
    sim.reset().expect("simulates");
    sim.set_by_name("rst", Bv::from_bool(false));
    for (port, value) in rtlock_repro::rtlock::verify::key_port_values(&locked.locked, &locked.key) {
        sim.set_by_name(&port, value);
    }
    sim.set_by_name("n", Bv::from_u64(8, 12));
    sim.set_by_name("start", Bv::from_bool(true));
    sim.step().expect("simulates");
    sim.set_by_name("start", Bv::from_bool(false));
    for _ in 0..20 {
        sim.step().expect("simulates");
        if sim.get_by_name("ready").to_u64_lossy() == 1 {
            break;
        }
    }
    assert_eq!(sim.get_by_name("fib").to_u64_lossy(), 144, "F(12) with the correct key");
}

#[test]
fn baseline_and_rtlock_coexist_on_one_design() {
    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let mut original = elaborate(&module).expect("synthesizes");
    optimize(&mut original);
    for kind in [BaselineKind::Rnd, BaselineKind::Iolts] {
        let locked = lock_baseline(&original, kind, 12.0, 48, 5);
        assert!(rtlock_repro::rtlock::baselines::baseline_is_sound(&locked, &original, 32, 1));
    }
}

#[test]
fn atpg_covers_a_locked_scan_view() {
    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(true)).expect("locks");
    let mut netlist = locked.locked_netlist().expect("synthesizes");
    scan::insert_full_scan(&mut netlist);
    let mut view = scan_view(&netlist).netlist;
    rtlock_repro::rtlock::transforms::mark_key_inputs(&mut view);
    let dummy: Vec<bool> = locked.key.iter().map(|b| !b).collect();
    let report = run_atpg(&view, &[dummy], &AtpgConfig { random_blocks: 8, ..AtpgConfig::default() });
    assert!(report.fault_coverage() > 0.85, "fault coverage {}", report.fault_coverage());
    assert!(report.test_coverage() > 0.9, "test coverage {}", report.test_coverage());
    assert!(!report.patterns.is_empty());
}

#[test]
fn p1735_round_trip_preserves_the_locked_design() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtlock_repro::p1735::envelope::{Envelope, Grant, Permissions, ToolSession};
    use rtlock_repro::p1735::rsa::generate_keypair;

    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(false)).expect("locks");
    let mut rng = StdRng::seed_from_u64(77);
    let kp = generate_keypair(512, &mut rng);
    let text = locked.export_p1735(
        &[Grant { tool: "T".into(), public_key: kp.public, permissions: Permissions::simulation_only() }],
        &mut rng,
    );
    let env = Envelope::parse(&text).expect("parses");
    let tool = ToolSession { tool: "T".into(), private_key: kp.private };
    let ip = tool.open(&env).expect("authorized");
    let same = ip.with_source(|src| src == rtlock_repro::rtl::print(&locked.locked));
    assert!(same, "decrypted IP is byte-identical to the exported locked RTL");
    let parses = ip.with_source(|src| rtlock_repro::rtl::parse(src).is_ok());
    assert!(parses, "and the tool can parse it internally");
}

#[test]
fn bench_export_round_trips_through_the_interchange_format() {
    use rtlock_repro::netlist::NetSim;
    let module = rtlock_designs::by_name("b05").expect("catalog").module().expect("parses");
    let locked = lock(&module, &quick_config(false)).expect("locks");
    // Export the combinational scan view (what external attack tools eat).
    let mut n = locked.locked_netlist().expect("synthesizes");
    rtlock_repro::synth::scan::insert_full_scan(&mut n);
    let view = rtlock_repro::synth::scan_view(&n).netlist;
    let text = rtlock_repro::netlist::to_bench(&view);
    assert!(text.contains("INPUT(keyinput0)"), "external-tool key convention");
    let back = rtlock_repro::netlist::from_bench(&text).expect("re-imports");
    assert_eq!(back.key_inputs.len(), locked.key.len());
    assert_eq!(back.inputs().len(), view.inputs().len());
    assert_eq!(back.outputs().len(), view.outputs().len());
    // Functional equivalence by input/output order (names are sanitized by
    // the interchange format).
    let mut s1 = NetSim::new(&view).expect("acyclic");
    let mut s2 = NetSim::new(&back).expect("acyclic");
    let mut seed = 0x5EEDu64;
    for _ in 0..8 {
        for (i, (&g1, &g2)) in view.inputs().iter().zip(back.inputs()).enumerate() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let w = seed.wrapping_add(i as u64);
            s1.set_input(g1, w);
            s2.set_input(g2, w);
        }
        s1.eval_comb();
        s2.eval_comb();
        assert_eq!(s1.outputs(), s2.outputs(), "round-trip must be functionally identical");
    }
}
