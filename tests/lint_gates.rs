//! End-to-end regression for the lint flow gates: locking every bundled
//! benchmark must come out clean at the post-lock gate, a structurally
//! broken input must be rejected at the pre-lock gate, and a sabotaged
//! transform (key gate on a constant net) must be rejected post-lock even
//! though it verifies perfectly under the correct key.

use rtlock_repro::rtlock::candidates::EnumConfig;
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::flow::{lock_governed, FlowReport, LockError};
use rtlock_repro::rtlock::governor::{Fault, FaultPlan, RunBudget, Stage};
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::{lock, RtlLockConfig};
use rtlock_rtl::parse;

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        // Small enumeration keeps the big designs (b15, sha1, aes128)
        // affordable; gate behavior does not depend on candidate count.
        enumeration: EnumConfig { max_constants: 6, max_arith: 4, max_const_key_bits: 4 },
        database: DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 40.0,
            min_key_bits: 4,
            ..SelectionSpec::default()
        },
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

fn assert_gates_clean(name: &str, report: &FlowReport) {
    let pre = report.pre_lint.as_ref().unwrap_or_else(|| panic!("{name}: pre-lock gate skipped"));
    assert!(pre.skipped.is_empty(), "{name}: pre-lock rules skipped: {:?}", pre.skipped);
    assert_eq!(pre.deny_count(), 0, "{name} pre-lock:\n{}", pre.to_text());
    let post =
        report.post_lint.as_ref().unwrap_or_else(|| panic!("{name}: post-lock gate skipped"));
    assert!(post.skipped.is_empty(), "{name}: post-lock rules skipped: {:?}", post.skipped);
    assert_eq!(post.deny_count(), 0, "{name} post-lock:\n{}", post.to_text());
}

#[test]
fn every_catalog_design_locks_with_clean_gates() {
    for bench in rtlock_designs::catalog() {
        let module = bench.module().expect("bundled designs parse");
        let locked = lock(&module, &quick_config())
            .unwrap_or_else(|e| panic!("{}: flow failed: {e}", bench.name));
        assert_eq!(locked.report.verified_mismatch_rate, 0.0, "{}", bench.name);
        assert_gates_clean(bench.name, &locked.report);
    }
}

#[test]
fn multi_driven_input_is_rejected_at_the_pre_lock_gate() {
    // A multi-driven output: elaboration tolerates it (last driver wins)
    // but the pre-lock gate must refuse to spend locking effort on it.
    let src = "module broken(input clk, input rst, input a, input b, output y, output z);\n\
               reg r;\n\
               assign y = a;\n\
               assign y = b;\n\
               always @(posedge clk or posedge rst) begin\n\
                 if (rst) r <= 1'b0; else r <= a ^ b;\n\
               end\n\
               assign z = r;\nendmodule";
    let module = parse(src).expect("parses");
    match lock(&module, &quick_config()) {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::PreLint);
            assert!(findings.iter().any(|d| d.rule == "S002"), "findings: {findings:?}");
        }
        other => panic!("expected pre-lock rejection, got {other:?}"),
    }
}

#[test]
fn sabotaged_transform_is_rejected_at_the_post_lock_gate() {
    let module = rtlock_designs::by_name("fibo").expect("bundled").module().expect("parses");
    let budget = RunBudget::unlimited()
        .with_faults(FaultPlan::none().inject(Stage::Transform, Fault::Sabotage));
    match lock_governed(&module, &quick_config(), &budget) {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::PostLint);
            assert!(
                findings.iter().any(|d| d.rule == "C002"),
                "the constant-net key gate must be caught: {findings:?}"
            );
        }
        other => panic!("expected post-lock rejection, got {other:?}"),
    }
    // The same design without the sabotage passes both gates.
    let clean = lock(&module, &quick_config()).expect("clean run locks");
    assert_gates_clean("fibo", &clean.report);
}
