//! End-to-end regression for the lint flow gates: locking every bundled
//! benchmark must come out clean at the post-lock gate, a structurally
//! broken input must be rejected at the pre-lock gate, and a sabotaged
//! transform (key gate on a constant net) must be rejected post-lock even
//! though it verifies perfectly under the correct key.

use rtlock_repro::rtlock::candidates::EnumConfig;
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::flow::{lock_governed, FlowReport, LockError};
use rtlock_repro::rtlock::governor::{Fault, FaultPlan, RunBudget, Stage};
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::{lock, RtlLockConfig};
use rtlock_rtl::parse;

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        // Small enumeration keeps the big designs (b15, sha1, aes128)
        // affordable; gate behavior does not depend on candidate count.
        enumeration: EnumConfig { max_constants: 6, max_arith: 4, max_const_key_bits: 4 },
        database: DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 40.0,
            min_key_bits: 4,
            ..SelectionSpec::default()
        },
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

fn assert_gates_clean(name: &str, report: &FlowReport) {
    let pre = report.pre_lint.as_ref().unwrap_or_else(|| panic!("{name}: pre-lock gate skipped"));
    assert!(pre.skipped.is_empty(), "{name}: pre-lock rules skipped: {:?}", pre.skipped);
    assert_eq!(pre.deny_count(), 0, "{name} pre-lock:\n{}", pre.to_text());
    let post =
        report.post_lint.as_ref().unwrap_or_else(|| panic!("{name}: post-lock gate skipped"));
    assert!(post.skipped.is_empty(), "{name}: post-lock rules skipped: {:?}", post.skipped);
    assert_eq!(post.deny_count(), 0, "{name} post-lock:\n{}", post.to_text());
    let analysis =
        report.analysis.as_ref().unwrap_or_else(|| panic!("{name}: analysis stage skipped"));
    assert!(analysis.skipped.is_empty(), "{name}: dataflow rules skipped: {:?}", analysis.skipped);
    assert_eq!(analysis.deny_count(), 0, "{name} analysis:\n{}", analysis.to_text());
}

#[test]
fn every_catalog_design_locks_with_clean_gates() {
    for bench in rtlock_designs::catalog() {
        let module = bench.module().expect("bundled designs parse");
        let locked = lock(&module, &quick_config())
            .unwrap_or_else(|e| panic!("{}: flow failed: {e}", bench.name));
        assert_eq!(locked.report.verified_mismatch_rate, 0.0, "{}", bench.name);
        assert_gates_clean(bench.name, &locked.report);
    }
}

#[test]
fn multi_driven_input_is_rejected_at_the_pre_lock_gate() {
    // A multi-driven output: elaboration tolerates it (last driver wins)
    // but the pre-lock gate must refuse to spend locking effort on it.
    let src = "module broken(input clk, input rst, input a, input b, output y, output z);\n\
               reg r;\n\
               assign y = a;\n\
               assign y = b;\n\
               always @(posedge clk or posedge rst) begin\n\
                 if (rst) r <= 1'b0; else r <= a ^ b;\n\
               end\n\
               assign z = r;\nendmodule";
    let module = parse(src).expect("parses");
    match lock(&module, &quick_config()) {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::PreLint);
            assert!(findings.iter().any(|d| d.rule == "S002"), "findings: {findings:?}");
        }
        other => panic!("expected pre-lock rejection, got {other:?}"),
    }
}

#[test]
fn sabotaged_transform_is_rejected_at_the_post_lock_gate() {
    let module = rtlock_designs::by_name("fibo").expect("bundled").module().expect("parses");
    let budget = RunBudget::unlimited()
        .with_faults(FaultPlan::none().inject(Stage::Transform, Fault::Sabotage));
    match lock_governed(&module, &quick_config(), &budget) {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::PostLint);
            assert!(
                findings.iter().any(|d| d.rule == "C002"),
                "the constant-net key gate must be caught: {findings:?}"
            );
        }
        other => panic!("expected post-lock rejection, got {other:?}"),
    }
    // The same design without the sabotage passes both gates.
    let clean = lock(&module, &quick_config()).expect("clean run locks");
    assert_gates_clean("fibo", &clean.report);
}

#[test]
fn analysis_gate_backstops_a_skipped_post_lock_gate() {
    // Knock out the post-lock gate (C002 would catch the sabotage there)
    // and the dataflow stage must still reject: K002 proves the planted
    // key gate constant from the RTL const-net fixpoint.
    let module = rtlock_designs::by_name("fibo").expect("bundled").module().expect("parses");
    let budget = RunBudget::unlimited().with_faults(
        FaultPlan::none()
            .inject(Stage::Transform, Fault::Sabotage)
            .inject(Stage::PostLint, Fault::EmptyResult),
    );
    match lock_governed(&module, &quick_config(), &budget) {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::Analyze);
            assert!(
                findings.iter().any(|d| d.rule == "K002"),
                "the constant key gate must be caught by dataflow: {findings:?}"
            );
        }
        other => panic!("expected analysis-stage rejection, got {other:?}"),
    }
}

#[test]
fn post_lock_report_deduplicates_pre_lock_findings() {
    // An unused net fires the same (rule, span, message) finding on the
    // input module and again on the locked module; the flow must report
    // it once, on the pre-lock gate.
    let src = "module dup(input clk, input rst, input go, input [7:0] d, output reg [7:0] y, output busy);\n\
        reg [1:0] st; reg [1:0] st_next;\n\
        wire spare;\n\
        assign spare = go & busy;\n\
        assign busy = st != 2'd0;\n\
        always @(*) begin\n\
          st_next = st;\n\
          case (st)\n\
            2'd0: begin if (go) st_next = 2'd1; end\n\
            2'd1: begin st_next = 2'd2; end\n\
            2'd2: begin st_next = 2'd0; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin\n\
          if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
          else begin\n\
            st <= st_next;\n\
            if (st == 2'd1) y <= (d + 8'd37) ^ 8'h5A;\n\
          end\n\
        end\nendmodule";
    let module = parse(src).expect("parses");
    let locked = lock(&module, &quick_config()).expect("locks");
    let pre = locked.report.pre_lint.as_ref().expect("pre gate ran");
    let post = locked.report.post_lint.as_ref().expect("post gate ran");
    let key = |d: &rtlock_lint::Diagnostic| (d.rule, d.span.clone(), d.message.clone());
    let pre_keys: Vec<_> = pre.diagnostics.iter().map(key).collect();
    assert!(
        pre.diagnostics.iter().any(|d| d.rule == "S005"),
        "expected the unused net on the pre-lock report:\n{}",
        pre.to_text()
    );
    for d in &post.diagnostics {
        assert!(
            !pre_keys.contains(&key(d)),
            "finding duplicated across gates: {d}\npre:\n{}\npost:\n{}",
            pre.to_text(),
            post.to_text()
        );
    }
    if let Some(analysis) = locked.report.analysis.as_ref() {
        for d in &analysis.diagnostics {
            assert!(!pre_keys.contains(&key(d)), "finding duplicated into analysis: {d}");
        }
    }
}
