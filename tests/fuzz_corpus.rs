//! Corpus replay: every module in `fuzz/corpus/` runs through the full
//! five-layer differential oracle on every test run. The corpus holds
//! hand-written tricky modules plus any shrunk reproducers a fuzzing
//! campaign persisted — once a divergence lands here, it can never
//! silently regress.

use rtlock_fuzz::oracle::{check_source, OracleConfig, Verdict};
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/corpus"))
}

#[test]
fn corpus_is_not_empty() {
    let entries = rtlock_fuzz::corpus::load(corpus_dir()).expect("fuzz/corpus must exist");
    assert!(
        entries.len() >= 3,
        "fuzz/corpus must keep its hand-written seed modules, found {}",
        entries.len()
    );
}

#[test]
fn every_corpus_module_passes_all_layers() {
    let entries = rtlock_fuzz::corpus::load(corpus_dir()).expect("fuzz/corpus must exist");
    let cfg = OracleConfig::default();
    let mut failures = Vec::new();
    for (name, source) in &entries {
        // Two seeds per module: different stimulus streams, same verdict
        // expected.
        for seed in [11u64, 1213] {
            match check_source(source, seed, &cfg) {
                Verdict::Pass => {}
                Verdict::Incomplete(msg) => {
                    failures.push(format!("{name} (seed {seed}): incomplete: {msg}"))
                }
                Verdict::Diverged { layer, detail } => {
                    failures.push(format!("{name} (seed {seed}): {layer}: {detail}"))
                }
            }
        }
    }
    assert!(failures.is_empty(), "corpus replay failures:\n{}", failures.join("\n"));
}

#[test]
fn corpus_covers_the_tricky_constructs() {
    // The three seed modules were written to pin specific cross-layer
    // hazards; make sure nobody waters them down.
    let entries = rtlock_fuzz::corpus::load(corpus_dir()).expect("fuzz/corpus must exist");
    let all: String = entries.iter().map(|(_, s)| s.as_str()).collect();
    assert!(all.contains("(!s) ?"), "an inverted-select mux module must stay in the corpus");
    assert!(all.contains("negedge"), "an active-low-reset module must stay in the corpus");
    assert!(all.contains("case (state)"), "a case-FSM module must stay in the corpus");
    assert!(all.contains("~^"), "an xnor module must stay in the corpus");
}
