//! Regression for the dataflow-pruned SAT attack across the full catalog.
//!
//! Two tiers, because the vendored solver's cost differs by orders of
//! magnitude across the designs:
//!
//! * **Tractable designs** (`b05`, `fibo`) run under a pure iteration cap
//!   — no wall clock — so both attacks are deterministic, and the pruned
//!   attack must reach the *same* verdict as the plain one (a
//!   functionally correct key) without ever spending more DIP iterations.
//! * **SAT-hard designs** (`b14`, `b15`, `sha1`, `aes128` lock to miters
//!   over arithmetic cones where a single solver call can outlive any CI
//!   budget) run under a short wall-clock budget. There the contract is
//!   monotone instead of strict: pruning may only *improve* the verdict
//!   (`TimedOut` → `KeyFound` is the whole point of splitting the key
//!   space), never degrade it, and any key it does find must be
//!   functionally correct.

use rtlock_repro::attacks::{
    key_accuracy, sat_attack, sat_attack_pruned, AttackConfig, AttackOutcome,
};
use rtlock_repro::rtlock::database::DatabaseConfig;
use rtlock_repro::rtlock::select::SelectionSpec;
use rtlock_repro::rtlock::{lock, AttackSurface, RtlLockConfig};
use std::time::Duration;

const TRACTABLE: [&str; 2] = ["b05", "fibo"];

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        enumeration: rtlock_repro::rtlock::candidates::EnumConfig {
            max_constants: 6,
            max_arith: 4,
            max_const_key_bits: 4,
        },
        database: DatabaseConfig {
            sat_probe: false,
            ml_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 40.0,
            min_key_bits: 4,
            ..SelectionSpec::default()
        },
        scan: None, // direct combinational views for the attacks
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

#[test]
fn pruned_attack_never_degrades_the_plain_verdict_across_the_catalog() {
    for bench in rtlock_designs::catalog() {
        let module = bench.module().expect("catalog designs parse");
        let locked = lock(&module, &quick_config())
            .unwrap_or_else(|e| panic!("{}: flow failed: {e}", bench.name));
        let AttackSurface::CombinationalViews { locked: lv, original: ov } =
            locked.attack_surface(None).expect("surface")
        else {
            panic!("{}: expected combinational views without scan locking", bench.name);
        };

        let strict = TRACTABLE.contains(&bench.name);
        let config = if strict {
            // An iteration cap instead of a deadline keeps the run
            // reproducible: the DIP sequence is a pure function of the
            // netlist.
            AttackConfig { max_iterations: 2_000, ..AttackConfig::default() }
        } else {
            AttackConfig {
                max_iterations: 2_000,
                timeout: Some(Duration::from_secs(5)),
                ..AttackConfig::default()
            }
        };

        let plain = sat_attack(&lv, &ov, &config);
        let pruned = sat_attack_pruned(&lv, &ov, &config);

        // The analysis products must be coherent regardless of verdicts.
        for bit in &pruned.pruned_bits {
            assert!(
                !pruned.partitions.iter().any(|p| p.contains(bit)),
                "{}: pruned bit {bit} still in a partition",
                bench.name
            );
        }

        match (&plain, &pruned.outcome) {
            (
                AttackOutcome::KeyFound { key: pk, iterations: pi, .. },
                AttackOutcome::KeyFound { key: qk, iterations: qi, .. },
            ) => {
                assert_eq!(pk.len(), qk.len(), "{}", bench.name);
                // Both keys must be functionally correct — they need not be
                // bit-identical (prunable bits are don't-cares).
                assert_eq!(
                    key_accuracy(&lv, &ov, pk, 64, 17),
                    1.0,
                    "{}: plain key wrong",
                    bench.name
                );
                assert_eq!(
                    key_accuracy(&lv, &ov, qk, 64, 17),
                    1.0,
                    "{}: pruned key wrong",
                    bench.name
                );
                assert!(
                    qi <= pi,
                    "{}: pruned attack used more DIPs ({qi}) than unpruned ({pi})",
                    bench.name
                );
            }
            (AttackOutcome::TimedOut { .. }, AttackOutcome::KeyFound { key, .. }) if !strict => {
                // Pruning turned an intractable instance into solvable
                // pieces: allowed, as long as the merged key is right.
                assert_eq!(
                    key_accuracy(&lv, &ov, key, 64, 17),
                    1.0,
                    "{}: pruned key wrong",
                    bench.name
                );
            }
            (a, b) => {
                assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{}: pruned verdict degraded: plain {a:?}, pruned {b:?}",
                    bench.name
                );
            }
        }

        if strict {
            assert!(
                matches!(plain, AttackOutcome::KeyFound { .. }),
                "{}: tractable design must break under the iteration cap: {plain:?}",
                bench.name
            );
        }
    }
}
