//! Red-team walkthrough: lock a benchmark with RTLock and with a
//! gate-level baseline, then attack both with the oracle-guided SAT attack
//! and the oracle-less SCOPE attack — the Table III / Table IV story on
//! one design.
//!
//! Run with: `cargo run --release --example lock_and_attack`

use rtlock::baselines::{lock_baseline, BaselineKind};
use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::{lock, AttackSurface, RtlLockConfig};
use rtlock_attacks::ml::scope_attack;
use rtlock_attacks::{key_accuracy, sat_attack, AttackConfig, AttackOutcome};
use rtlock_synth::{elaborate, optimize, scan, scan_view};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = rtlock_designs::by_name("b05").expect("catalog design");
    let module = design.module()?;
    let mut original = elaborate(&module)?;
    optimize(&mut original);
    println!("design: {} ({} gates, {} flops)", design.name, original.logic_count(), original.dffs().len());

    // --- Gate-level baseline: RND at 15 % overhead -----------------------
    let baseline = lock_baseline(&original, BaselineKind::Rnd, 15.0, 128, 1);
    println!("\nRND baseline: {} key bits, {:.1} % area overhead", baseline.key.len(), baseline.area_overhead_pct);
    let mut l = baseline.netlist.clone();
    scan::insert_full_scan(&mut l);
    let locked_view = scan_view(&l).netlist;
    let mut o = original.clone();
    scan::insert_full_scan(&mut o);
    let oracle_view = scan_view(&o).netlist;
    let cfg = AttackConfig { max_iterations: 100_000, timeout: Some(Duration::from_secs(20)), ..Default::default() };
    match sat_attack(&locked_view, &oracle_view, &cfg) {
        AttackOutcome::KeyFound { key, iterations, elapsed, .. } => {
            let acc = key_accuracy(&baseline.netlist, &original, &key, 64, 3);
            println!("  SAT attack: key recovered in {elapsed:?} ({iterations} DIPs), functional accuracy {acc}");
        }
        other => println!("  SAT attack: {other:?}"),
    }
    let scope = scope_attack(&baseline.netlist, &baseline.key);
    println!("  SCOPE (oracle-less): {:.1} % accuracy (≈0 or ≈100 ⇒ broken)", scope.accuracy * 100.0);

    // --- RTLock with scan locking ---------------------------------------
    let config = RtlLockConfig {
        database: DatabaseConfig { sat_probe: true, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 200.0,
            max_area_pct: 30.0,
            min_key_bits: 16,
            ..SelectionSpec::default()
        },
        ..RtlLockConfig::default()
    };
    let locked = lock(&module, &config)?;
    println!(
        "\nRTLock: {} key bits via {:?}",
        locked.key.len(),
        locked.applied.iter().map(|c| c.label()).collect::<Vec<_>>()
    );

    // Scan access is locked: the SAT attack has no combinational surface.
    match locked.attack_surface(None)? {
        AttackSurface::SequentialOnly { locked: l, original: o } => {
            let out = sat_attack(&l, &o, &cfg);
            println!("  SAT attack without the scan key: {out:?}");
        }
        AttackSurface::CombinationalViews { .. } => unreachable!("scan locking is on"),
    }
    // Even the legitimate test engineer (who has the scan key) leaves the
    // functional key SAT-protected only by its ILP-chosen depth:
    let scan_key = locked.scan_policy.as_ref().expect("scan locked").scan_key.clone();
    if let AttackSurface::CombinationalViews { locked: lv, original: ov } = locked.attack_surface(Some(&scan_key))? {
        match sat_attack(&lv, &ov, &cfg) {
            AttackOutcome::KeyFound { key, iterations, elapsed, .. } => println!(
                "  SAT attack with scan access: {} bits in {elapsed:?} ({iterations} DIPs) — \
                 this is why scan locking matters",
                key.len()
            ),
            other => println!("  SAT attack with scan access: {other:?}"),
        }
    }
    let locked_net = locked.locked_netlist()?;
    let scope = scope_attack(&locked_net, &locked.key);
    println!("  SCOPE (oracle-less): {:.1} % accuracy (≈50 ⇒ resilient)", scope.accuracy * 100.0);
    Ok(())
}
