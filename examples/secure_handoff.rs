//! Zero-trust hand-off (Section III-B): lock a design, wrap it in a P1735
//! envelope for two EDA tools, and show what each party can and cannot do —
//! the insider-threat story of Fig. 1(d).
//!
//! Run with: `cargo run --release --example secure_handoff`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::{lock, RtlLockConfig};
use rtlock_p1735::envelope::{Envelope, Grant, Permissions, ToolSession};
use rtlock_p1735::rsa::generate_keypair;
use rtlock_rtl::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse(
        "module royalty_counter(input clk, input rst, input tick, output reg [31:0] count);\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) count <= 32'd0;\n\
           else begin if (tick) count <= count + 32'd1; end\n\
         end\nendmodule",
    )?;

    // The IP owner locks the design...
    let locked = lock(
        &module,
        &RtlLockConfig {
            database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
            spec: SelectionSpec { min_resilience: 20.0, max_area_pct: 60.0, min_key_bits: 8, ..SelectionSpec::default() },
            ..RtlLockConfig::default()
        },
    )?;
    println!("IP owner: locked with {} key bits (key stays in the TPM provisioning DB)", locked.key.len());

    // ...and publishes tool keyrings. Two vendors are authorized:
    let mut rng = StdRng::seed_from_u64(2024);
    let sim_tool_keys = generate_keypair(512, &mut rng);
    let synth_tool_keys = generate_keypair(512, &mut rng);
    let envelope_text = locked.export_p1735(
        &[
            Grant {
                tool: "SimTool-2026".into(),
                public_key: sim_tool_keys.public.clone(),
                permissions: Permissions::simulation_only(),
            },
            Grant {
                tool: "SynthTool-2026".into(),
                public_key: synth_tool_keys.public.clone(),
                permissions: Permissions::simulation_only(),
            },
        ],
        &mut rng,
    );
    println!("\nenvelope preview:");
    for line in envelope_text.lines().take(6) {
        println!("  {line}");
    }
    assert!(!envelope_text.contains("lock_key"), "locked RTL is not visible in the envelope");

    // The verification engineer receives only ciphertext...
    println!("\nverification engineer: sees {} bytes of pragma-protected text, no RTL", envelope_text.len());

    // ...and feeds it to an authorized tool, which can simulate internally.
    let envelope = Envelope::parse(&envelope_text)?;
    println!("rights block lists tools: {:?}", envelope.authorized_tools());
    let sim_tool = ToolSession { tool: "SimTool-2026".into(), private_key: sim_tool_keys.private };
    let ip = sim_tool.open(&envelope)?;
    println!("SimTool-2026 opened the IP: fingerprint {}", &ip.source_digest()[..16]);
    let parses = ip.with_source(|src| rtlock_rtl::parse(src).is_ok());
    println!("SimTool-2026 can parse/simulate internally: {parses}");

    // A rogue tool (insider with the envelope but no vendor key) fails.
    let rogue_keys = generate_keypair(512, &mut rng);
    let rogue = ToolSession { tool: "SimTool-2026".into(), private_key: rogue_keys.private };
    println!("rogue tool with a forged identity: {:?}", rogue.open(&envelope).unwrap_err());

    // Even the authorized tool never exposes the locking key: the design it
    // holds is the *locked* RTL; activation still needs the TPM key.
    println!("\neven inside the tool, the IP is locked: key length {}", locked.key.len());
    Ok(())
}
