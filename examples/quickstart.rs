//! Quickstart: lock a small RTL design with RTLock, verify it, inspect
//! the artifacts, and show that a wrong key corrupts the outputs.
//!
//! Run with: `cargo run --release --example quickstart`

use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::verify::cosim_mismatch_rate;
use rtlock::{lock, RtlLockConfig};
use rtlock_rtl::{parse, print};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An RTL design: a small checksum engine with a control FSM.
    let source = r#"
module checksum(input clk, input rst, input start, input [7:0] d,
                output reg [15:0] sum, output reg ready);
  localparam [1:0] IDLE = 2'd0, RUN = 2'd1, DONE = 2'd2;
  reg [1:0] st;
  reg [1:0] st_next;
  reg [3:0] n;
  always @(*) begin
    st_next = st;
    case (st)
      IDLE: begin if (start) st_next = RUN; end
      RUN:  begin if (n == 4'd15) st_next = DONE; end
      DONE: begin st_next = IDLE; end
      default: begin st_next = IDLE; end
    endcase
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin st <= 2'd0; n <= 4'd0; sum <= 16'd0; ready <= 1'b0; end
    else begin
      st <= st_next;
      if (st == IDLE) begin ready <= 1'b0; if (start) begin n <= 4'd0; sum <= 16'd0; end end
      if (st == RUN) begin sum <= sum + (d * 8'd31) + 16'd7; n <= n + 4'd1; end
      if (st == DONE) ready <= 1'b1;
    end
  end
endmodule"#;
    let module = parse(source)?;

    // 2. Run the seven-step RTLock flow.
    let config = RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 150.0,
            max_area_pct: 30.0,
            min_key_bits: 12,
            ..SelectionSpec::default()
        },
        ..RtlLockConfig::default()
    };
    let locked = lock(&module, &config)?;

    println!("== RTLock quickstart ==");
    println!("candidates enumerated : {}", locked.report.candidates_enumerated);
    println!("viable database cases : {}", locked.report.viable_cases);
    println!("selected via          : {}", if locked.report.used_ilp { "ILP" } else { "greedy" });
    println!("applied cases         : {:?}", locked.applied.iter().map(|c| c.label()).collect::<Vec<_>>());
    println!("functional key        : {} bits", locked.key.len());
    if let Some(p) = &locked.scan_policy {
        println!("scan-locked registers : {:?} (scan key {} bits)", p.scanned_registers, p.scan_key.len());
    }

    // 3. Verified equivalent under the correct key...
    let rate = cosim_mismatch_rate(&locked.original, &locked.locked, &locked.key, 64, 1);
    println!("correct-key mismatch  : {rate} (must be 0)");
    assert_eq!(rate, 0.0);

    // ...and corrupted under a wrong one.
    let mut wrong = locked.key.clone();
    wrong[0] = !wrong[0];
    let corruption = cosim_mismatch_rate(&locked.original, &locked.locked, &wrong, 64, 1);
    println!("wrong-key corruption  : {:.1} % of output samples", corruption * 100.0);
    assert!(corruption > 0.0);

    // 4. The locked RTL is ordinary Verilog you can hand to any flow.
    let verilog = print(&locked.locked);
    println!("\nfirst lines of the locked RTL:");
    for line in verilog.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
