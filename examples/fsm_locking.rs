//! FSM locking deep-dive (the Fig. 3 case studies as a library tour):
//! extract the control FSM of a design, apply each locking flavor, and
//! watch the state traversal change under wrong keys.
//!
//! Run with: `cargo run --release --example fsm_locking`

use rtlock::candidates::{enumerate, Candidate, EnumConfig, FsmLockKind};
use rtlock::transforms::{apply, KeyAllocator};
use rtlock::verify::key_port_values;
use rtlock_rtl::fsm::extract;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{parse, Bv, Module};

fn run_trace(m: &Module, key: &[bool], cycles: usize) -> Vec<u64> {
    let mut sim = Simulator::new(m);
    sim.set_by_name("rst", Bv::from_bool(true));
    sim.reset().expect("simulates");
    sim.set_by_name("rst", Bv::from_bool(false));
    sim.set_by_name("go", Bv::from_bool(true));
    for (port, value) in key_port_values(m, key) {
        sim.set_by_name(&port, value);
    }
    (0..cycles)
        .map(|_| {
            sim.step().expect("simulates");
            sim.get_by_name("state").to_u64_lossy()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse(
        "module traffic(input clk, input rst, input go, output reg [1:0] state, output reg [3:0] green_time);\n\
         reg [1:0] state_next;\n\
         localparam [1:0] RED = 2'd0, GREEN = 2'd1, YELLOW = 2'd2;\n\
         always @(*) begin\n\
           state_next = state;\n\
           case (state)\n\
             RED:    begin if (go) state_next = GREEN; end\n\
             GREEN:  begin state_next = YELLOW; end\n\
             YELLOW: begin state_next = RED; end\n\
           endcase\n\
         end\n\
         always @(posedge clk or posedge rst) begin\n\
           if (rst) begin state <= 2'd0; green_time <= 4'd0; end\n\
           else begin\n\
             state <= state_next;\n\
             if (state == GREEN) green_time <= green_time + 4'd1;\n\
           end\n\
         end\nendmodule",
    )?;

    // Step 1 of the flow: FSM extraction (the FSMX role).
    let fsms = extract(&module);
    let fsm = &fsms[0];
    println!("extracted FSM on `{}`:", module.net(fsm.state_reg).name);
    println!("  states      : {:?}", fsm.states.iter().map(|s| s.to_u64_lossy()).collect::<Vec<_>>());
    println!("  initial     : {:?}", fsm.initial.as_ref().map(|s| s.to_u64_lossy()));
    for t in &fsm.transitions {
        println!(
            "  transition  : {} -> {}{}",
            t.from.to_u64_lossy(),
            t.to.to_u64_lossy(),
            if t.guarded { " (guarded)" } else { "" }
        );
    }
    println!("  BMC depths  : {:?}", fsm.depth_from_initial().iter().map(|(s, d)| (s.to_u64_lossy(), *d)).collect::<Vec<_>>());

    // Apply every FSM flavor and print traces.
    println!("\nreference trace: {:?}", run_trace(&module, &[], 9));
    let (candidates, fsms) = enumerate(&module, &EnumConfig::default());
    for c in &candidates {
        let Candidate::Fsm { kind, .. } = c else { continue };
        let mut locked = module.clone();
        let mut keys = KeyAllocator::new();
        if apply(&mut locked, c, &fsms, &mut keys).is_err() {
            continue;
        }
        let key = keys.correct_key().to_vec();
        let mut wrong = key.clone();
        wrong[0] = !wrong[0];
        println!("\n{}", c.label());
        println!("  correct : {:?}", run_trace(&locked, &key, 9));
        println!("  wrong   : {:?}", run_trace(&locked, &wrong, 9));
        if matches!(kind, FsmLockKind::BypassState { .. }) {
            println!("  (state 3 above is the inserted fake state)");
        }
    }
    Ok(())
}
