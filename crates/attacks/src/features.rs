//! Synthesis-report feature extraction shared by the SWEEP and SCOPE
//! constant-propagation attacks (\[18\], \[37\] in the paper).
//!
//! Both attacks hardwire one key-bit hypothesis at a time, re-run synthesis
//! optimization, and compare synthesis features between the `0` and `1`
//! hypotheses. The feature vector mirrors the report fields the original
//! tools consume (area, per-cell counts, depth, net count).

use rtlock_netlist::Netlist;
use rtlock_synth::optimize;

/// Number of features in a [`FeatureVec`].
pub const NUM_FEATURES: usize = 12;

/// A fixed-size synthesis feature vector.
pub type FeatureVec = [f64; NUM_FEATURES];

/// Extracts the feature vector of a netlist.
pub fn features(netlist: &Netlist) -> FeatureVec {
    let h = netlist.kind_histogram();
    let get = |k: &str| h.get(k).copied().unwrap_or(0) as f64;
    let depth = netlist.depth().unwrap_or(0) as f64;
    [
        netlist.logic_count() as f64,
        get("INV_X1"),
        get("BUF_X1"),
        get("AND2_X1"),
        get("NAND2_X1"),
        get("OR2_X1"),
        get("NOR2_X1"),
        get("XOR2_X1"),
        get("XNOR2_X1"),
        get("MUX2_X1"),
        depth,
        netlist.len() as f64,
    ]
}

/// Hardwires key bit `bit` of `locked` to `value`, re-optimizes, and
/// returns the resulting features ("constant propagation synthesis run").
///
/// # Panics
///
/// Panics if `bit` is out of range.
pub fn resynth_features(locked: &Netlist, bit: usize, value: bool) -> FeatureVec {
    let mut n = locked.clone();
    let key = n.key_inputs[bit];
    n.convert_input_to_const(key, value);
    optimize(&mut n);
    features(&n)
}

/// The per-bit feature delta `f(k=1) − f(k=0)` that both attacks classify.
pub fn key_bit_delta(locked: &Netlist, bit: usize) -> FeatureVec {
    let f0 = resynth_features(locked, bit, false);
    let f1 = resynth_features(locked, bit, true);
    let mut d = [0.0; NUM_FEATURES];
    for i in 0..NUM_FEATURES {
        d[i] = f1[i] - f0[i];
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::{GateKind, Netlist};

    fn xor_locked() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let g = n.add_gate(GateKind::And, vec![a, b]);
        let kg = n.add_gate(GateKind::Xor, vec![g, k]);
        n.add_output("y", kg);
        n
    }

    #[test]
    fn features_count_cells() {
        let n = xor_locked();
        let f = features(&n);
        assert_eq!(f[0], 2.0, "two logic gates");
        assert_eq!(f[7], 1.0, "one xor");
    }

    #[test]
    fn resynth_shrinks_under_correct_hypothesis() {
        let n = xor_locked();
        let f0 = resynth_features(&n, 0, false);
        let f1 = resynth_features(&n, 0, true);
        // Correct key is 0 (XOR passthrough): gate count drops to 1.
        assert_eq!(f0[0], 1.0);
        // Wrong hypothesis leaves an extra inverter.
        assert_eq!(f1[0], 2.0);
    }

    #[test]
    fn delta_sign_reflects_asymmetry() {
        let n = xor_locked();
        let d = key_bit_delta(&n, 0);
        assert!(d[0] > 0.0, "k=1 netlist is larger for an XOR key gate with key 0");
    }
}
