//! Oracle-guided BMC (bounded-model-checking) attack on sequential locked
//! circuits.
//!
//! When scan access is unavailable (RTLock's scan locking), the attacker
//! can only drive primary inputs over clock cycles. The BMC attack unrolls
//! the locked circuit for `T` time frames, builds a two-key miter over the
//! unrolled transition relation, and searches for a *distinguishing input
//! sequence* (DIS). Each DIS is answered by the sequential oracle and added
//! as a constraint; when no DIS exists at depth `T`, the depth is
//! increased. Deep FSM state (what RTLock's ILP prefers) forces large
//! unrolling depths, which is exactly the scalability wall the paper
//! exploits ("none of the circuits can be broken using the BMC attacks").

use crate::oracle::SeqOracle;
use crate::sat_attack::{model_bits, AttackOutcome, AttackStats};
use rtlock_governor::{CancelToken, Deadline};
use rtlock_netlist::{CnfBuilder, GateId, GateKind, Netlist};
use rtlock_sat::{Budget, Lit, SolveResult, Solver};
use std::time::{Duration, Instant};

/// BMC attack limits.
#[derive(Debug, Clone)]
pub struct BmcConfig {
    /// Initial unrolling depth.
    pub initial_depth: usize,
    /// Maximum unrolling depth before giving up.
    pub max_depth: usize,
    /// Maximum DIS iterations across all depths.
    pub max_iterations: usize,
    /// Wall-clock limit.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation, polled at every DIS and depth boundary
    /// and inside the solver at restart boundaries (see
    /// [`AttackConfig::cancel`](crate::AttackConfig)).
    pub cancel: Option<CancelToken>,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            initial_depth: 2,
            max_depth: 16,
            max_iterations: 2_000,
            timeout: None,
            cancel: None,
        }
    }
}

impl BmcConfig {
    /// The token the attack polls (cancel token tightened to the timeout).
    fn stop_token(&self) -> CancelToken {
        let deadline = Deadline::within(self.timeout);
        match &self.cancel {
            Some(t) => t.tightened(deadline),
            None => CancelToken::with_deadline(deadline),
        }
    }
}

/// One time-frame encoding of a netlist copy.
struct Frame {
    gate_vars: Vec<i32>,
}

/// Encodes `depth` frames of `netlist` with the given key variables; input
/// variables are taken from `input_vars[t]` (shared across copies).
/// Frame 0 state = flop init constants; frame t+1 state = frame t D pins.
fn unroll(
    cnf: &mut CnfBuilder,
    netlist: &Netlist,
    key_vars: &[i32],
    input_vars: &[Vec<i32>],
    data_inputs: &[GateId],
) -> Vec<Frame> {
    let dffs = netlist.dffs();
    let mut frames = Vec::with_capacity(input_vars.len());
    let mut state_vars: Vec<i32> = dffs
        .iter()
        .map(|&d| {
            let v = cnf.fresh_var();
            match netlist.gate(d).kind {
                GateKind::Dff { init: true } => cnf.assert_lit(v),
                _ => cnf.assert_lit(-v),
            }
            v
        })
        .collect();
    for frame_inputs in input_vars {
        let in_vars: Vec<i32> = netlist
            .inputs()
            .iter()
            .map(|g| {
                if let Some(ki) = netlist.key_inputs.iter().position(|k| k == g) {
                    key_vars[ki]
                } else {
                    let xi = data_inputs.iter().position(|d| d == g).expect("partitioned");
                    frame_inputs[xi]
                }
            })
            .collect();
        let gate_vars = cnf.encode_comb(netlist, &in_vars, &state_vars);
        // Next state = D-pin vars of this frame.
        state_vars = dffs.iter().map(|&d| gate_vars[netlist.gate(d).fanin[0].index()]).collect();
        frames.push(Frame { gate_vars });
    }
    frames
}

/// One oracle observation: the per-cycle input trace and the matching
/// per-cycle named output trace.
type Observation = (Vec<Vec<bool>>, Vec<Vec<(String, bool)>>);

/// Runs the BMC attack on a sequential locked netlist against the unlocked
/// `original` (matched by input/output names).
pub fn bmc_attack(locked: &Netlist, original: &Netlist, config: &BmcConfig) -> AttackOutcome {
    let start = Instant::now();
    if locked.key_inputs.is_empty() {
        return AttackOutcome::Infeasible { reason: "no key inputs".into() };
    }
    let oracle = SeqOracle::new(original);
    let data_inputs: Vec<GateId> =
        locked.inputs().iter().copied().filter(|g| !locked.key_inputs.contains(g)).collect();
    let token = config.stop_token();

    let mut iterations = 0usize;
    // Accumulated oracle observations: (input trace, output trace).
    let mut observations: Vec<Observation> = Vec::new();

    let mut depth = config.initial_depth;
    while depth <= config.max_depth {
        // Rebuild the formula at this depth.
        let mut cnf = CnfBuilder::new();
        let mut solver = Solver::new();
        let mut drained = 0usize;
        let k1: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();
        let k2: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();
        let input_vars: Vec<Vec<i32>> =
            (0..depth).map(|_| data_inputs.iter().map(|_| cnf.fresh_var()).collect()).collect();
        let frames1 = unroll(&mut cnf, locked, &k1, &input_vars, &data_inputs);
        let frames2 = unroll(&mut cnf, locked, &k2, &input_vars, &data_inputs);
        let mut diffs = Vec::new();
        for (f1, f2) in frames1.iter().zip(&frames2) {
            for (_, drv) in locked.outputs() {
                let d = cnf.xor_lit(f1.gate_vars[drv.index()], f2.gate_vars[drv.index()]);
                diffs.push(d);
            }
        }
        let any = cnf.or_lit(&diffs);
        let act = cnf.fresh_var();
        cnf.add_clause(&[-act, any]);

        // Re-apply accumulated observations (truncated/extended to depth).
        for (trace, outs) in &observations {
            for keys in [&k1, &k2] {
                constrain_observation(&mut cnf, locked, keys, &data_inputs, trace, outs);
            }
        }
        sync(&mut cnf, &mut solver, &mut drained);

        loop {
            if token.should_stop().is_some() {
                return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) };
            }
            solver.set_budget(Budget::cancellable(&token));
            match solver.solve(&[Lit::from_dimacs(act)]) {
                SolveResult::Unknown => {
                    return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) }
                }
                SolveResult::Unsat => break, // no DIS at this depth — deepen
                SolveResult::Sat => {
                    iterations += 1;
                    if iterations > config.max_iterations {
                        return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) };
                    }
                    let mut trace: Vec<Vec<bool>> = Vec::with_capacity(input_vars.len());
                    for (t, fv) in input_vars.iter().enumerate() {
                        match model_bits(&solver, fv) {
                            Ok(cycle) => trace.push(cycle),
                            Err(missing) => {
                                return AttackOutcome::Error {
                                    reason: format!(
                                        "SAT model lacks an assignment for input {missing} \
                                         in frame {t}; refusing to fabricate a DIS"
                                    ),
                                }
                            }
                        }
                    }
                    let named: Vec<Vec<(String, bool)>> = trace
                        .iter()
                        .map(|cycle| {
                            data_inputs
                                .iter()
                                .zip(cycle)
                                .map(|(&g, &v)| (locked.gate_name(g).unwrap_or("").to_owned(), v))
                                .collect()
                        })
                        .collect();
                    let outs = oracle.run(&named);
                    for keys in [&k1, &k2] {
                        constrain_observation(&mut cnf, locked, keys, &data_inputs, &trace, &outs);
                    }
                    observations.push((trace, outs));
                    sync(&mut cnf, &mut solver, &mut drained);
                }
            }
        }

        // UNSAT at this depth: candidate key. Validate by simulation; if it
        // holds on random traces, report it, otherwise deepen. The
        // extraction solve's three answers diverge: Unknown is budget
        // exhaustion (mid-extraction deadline — not a property of the
        // target), Unsat means the accumulated oracle constraints are
        // inconsistent (a permanent miter/encoding defect retrying can
        // never fix), and only Sat yields a candidate.
        let extraction = solver.solve(&[]);
        if extraction == SolveResult::Unknown {
            return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) };
        }
        if extraction == SolveResult::Unsat {
            return AttackOutcome::Infeasible {
                reason: "oracle observations inconsistent (oracle/netlist mismatch?)".into(),
            };
        }
        {
            let key = match model_bits(&solver, &k1) {
                Ok(bits) => bits,
                Err(missing) => {
                    return AttackOutcome::Error {
                        reason: format!(
                            "SAT model lacks an assignment for key bit {missing}; \
                             refusing to fabricate key bits"
                        ),
                    }
                }
            };
            // Validate on traces much longer than the unrolling depth — a
            // key that merely survives `depth` frames is not recovered
            // (FSM locking corrupts outputs only once the machine has
            // walked deep enough).
            if sequential_key_accuracy(locked, original, &key, 16, (4 * depth).max(64), 0xBEE5) == 1.0 {
                return AttackOutcome::KeyFound { key, iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) };
            }
        }
        depth += 2;
    }
    AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats: bmc_stats(iterations) }
}

/// Adds clauses forcing the unrolled circuit under `keys` to reproduce an
/// observed input/output trace.
/// BMC attack statistics: one sequential-oracle trace query per accepted
/// distinguishing input sequence; the BMC loop has no bit-parallel
/// simulation stage. Deterministic for a fixed configuration.
fn bmc_stats(iterations: usize) -> AttackStats {
    AttackStats {
        oracle_queries: iterations,
        dips_accepted: iterations,
        ..AttackStats::default()
    }
}

fn constrain_observation(
    cnf: &mut CnfBuilder,
    locked: &Netlist,
    keys: &[i32],
    data_inputs: &[GateId],
    trace: &[Vec<bool>],
    outs: &[Vec<(String, bool)>],
) {
    let input_vars: Vec<Vec<i32>> = trace
        .iter()
        .map(|cycle| {
            cycle
                .iter()
                .map(|&v| {
                    let var = cnf.fresh_var();
                    cnf.assert_lit(if v { var } else { -var });
                    var
                })
                .collect()
        })
        .collect();
    let frames = unroll(cnf, locked, keys, &input_vars, data_inputs);
    for (frame, cycle_outs) in frames.iter().zip(outs) {
        for (name, drv) in locked.outputs() {
            if let Some((_, v)) = cycle_outs.iter().find(|(n, _)| n == name) {
                let lit = frame.gate_vars[drv.index()];
                cnf.assert_lit(if *v { lit } else { -lit });
            }
        }
    }
}

fn sync(cnf: &mut CnfBuilder, solver: &mut Solver, drained: &mut usize) {
    solver.reserve_vars(cnf.num_vars());
    let clauses = cnf.clauses();
    for c in &clauses[*drained..] {
        solver.add_dimacs_clause(c);
    }
    *drained = clauses.len();
}

/// Fraction of matching output bits between the keyed locked netlist and
/// the original over random input traces.
pub fn sequential_key_accuracy(
    locked: &Netlist,
    original: &Netlist,
    key: &[bool],
    traces: usize,
    cycles: usize,
    seed: u64,
) -> f64 {
    use crate::sat_attack::apply_key;
    use rtlock_netlist::NetSim;
    let keyed = apply_key(locked, key);
    let oracle = SeqOracle::new(original);
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    // Reset-looking inputs (by name) are asserted for two cycles and then
    // released; driving them randomly would keep the machine in reset and
    // make every key look correct.
    let is_reset = |name: &str| name.contains("rst") || name.contains("reset");
    let reset_active = |name: &str| !name.ends_with("_n");
    let mut total = 0usize;
    let mut matching = 0usize;
    for _ in 0..traces {
        let trace: Vec<Vec<(String, bool)>> = (0..cycles)
            .map(|cyc| {
                keyed
                    .inputs()
                    .iter()
                    .map(|&g| {
                        let name = keyed.gate_name(g).unwrap_or("").to_owned();
                        let v = if is_reset(&name) {
                            (cyc < 2) == reset_active(&name)
                        } else {
                            next() & 1 == 1
                        };
                        (name, v)
                    })
                    .collect()
            })
            .collect();
        let expect = oracle.run(&trace);
        let mut sim = NetSim::new(&keyed).expect("acyclic");
        sim.reset();
        for (cycle, cycle_expect) in trace.iter().zip(&expect) {
            for (name, v) in cycle {
                if let Some(g) = keyed.find_input(name) {
                    sim.set_input(g, if *v { u64::MAX } else { 0 });
                }
            }
            // Pre-edge sampling to match the oracle convention.
            sim.eval_comb();
            for (name, drv) in keyed.outputs() {
                let got = sim.value(*drv) & 1 == 1;
                if let Some((_, e)) = cycle_expect.iter().find(|(n, _)| n == name) {
                    total += 1;
                    matching += usize::from(got == *e);
                }
            }
            sim.step();
        }
    }
    if total == 0 {
        1.0
    } else {
        matching as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential circuit: q' = q + (a xor k-corrupted bit); out = q.
    /// Locked with an XOR key gate on the input path.
    fn build_seq(key_bit: bool) -> (Netlist, Netlist) {
        let build = |lock: Option<bool>| {
            let mut n = Netlist::new("seq");
            let a = n.add_input("a");
            let path = match lock {
                None => a,
                Some(kb) => {
                    let k = n.add_input("keyinput0");
                    n.mark_key_input(k);
                    if kb {
                        n.add_gate(GateKind::Xnor, vec![a, k])
                    } else {
                        n.add_gate(GateKind::Xor, vec![a, k])
                    }
                }
            };
            let q = n.add_gate(GateKind::Dff { init: false }, vec![path]);
            let x = n.add_gate(GateKind::Xor, vec![q, path]);
            n.gate_mut(q).fanin[0] = x;
            n.add_output("out", q);
            n
        };
        (build(Some(key_bit)), build(None))
    }

    #[test]
    fn recovers_key_from_sequential_circuit() {
        for kb in [false, true] {
            let (locked, orig) = build_seq(kb);
            let out = bmc_attack(&locked, &orig, &BmcConfig::default());
            match out {
                AttackOutcome::KeyFound { key, .. } => {
                    assert_eq!(key, vec![kb], "recovered wrong key for {kb}");
                }
                other => panic!("bmc failed for {kb}: {other:?}"),
            }
        }
    }

    #[test]
    fn keyless_is_infeasible() {
        let (_, orig) = build_seq(false);
        assert!(matches!(bmc_attack(&orig, &orig, &BmcConfig::default()), AttackOutcome::Infeasible { .. }));
    }

    #[test]
    fn depth_budget_limits_attack() {
        let (locked, orig) = build_seq(true);
        let cfg = BmcConfig { initial_depth: 1, max_depth: 0, max_iterations: 5, timeout: None, ..Default::default() };
        assert!(matches!(bmc_attack(&locked, &orig, &cfg), AttackOutcome::TimedOut { .. }));
    }

    #[test]
    fn sequential_accuracy_detects_wrong_key() {
        let (locked, orig) = build_seq(true);
        assert_eq!(sequential_key_accuracy(&locked, &orig, &[true], 8, 12, 3), 1.0);
        assert!(sequential_key_accuracy(&locked, &orig, &[false], 8, 12, 3) < 1.0);
    }
}
