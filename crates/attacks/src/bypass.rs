//! Bypass-attack feasibility analysis (\[13\] in the paper).
//!
//! The bypass attack runs a SAT-resistant locked chip with an arbitrary
//! wrong key and patches the handful of input patterns the wrong key
//! corrupts with a small "bypass" comparator circuit. Its cost is
//! proportional to the number of corrupted patterns: point-function schemes
//! corrupt one pattern (one comparator), while high-corruptibility locking
//! corrupts a large fraction of the input space, making the bypass
//! circuitry as large as the design itself — infeasible.

use crate::oracle::CombOracle;
use crate::sat_attack::apply_key;
use rtlock_netlist::{NetSim, Netlist};

/// Estimated cost of a bypass attack for one wrong key.
#[derive(Debug, Clone, PartialEq)]
pub struct BypassEstimate {
    /// Fraction of sampled input patterns with *any* corrupted output —
    /// each such pattern needs its own comparator in the bypass circuit.
    pub corrupted_fraction: f64,
    /// Estimated number of corrupted patterns over the whole input space
    /// (`corrupted_fraction * 2^inputs`, saturating).
    pub estimated_patterns: f64,
    /// `true` when the bypass circuitry would stay small (few protected
    /// patterns) — the attack is considered feasible below
    /// [`BYPASS_FEASIBLE_FRACTION`].
    pub feasible: bool,
}

/// Corruption fraction below which a bypass circuit is considered
/// practical (a loose bound: a handful of pattern comparators).
pub const BYPASS_FEASIBLE_FRACTION: f64 = 1e-3;

/// Estimates bypass-attack cost for `wrong_key` by sampling
/// `samples * 64` random patterns.
///
/// # Panics
///
/// Panics if `wrong_key` length differs from the key input count.
pub fn bypass_estimate(
    locked: &Netlist,
    original: &Netlist,
    wrong_key: &[bool],
    samples: usize,
    seed: u64,
) -> BypassEstimate {
    let keyed = apply_key(locked, wrong_key);
    let mut oracle = CombOracle::new(original);
    let mut sim = NetSim::new(&keyed).expect("acyclic");
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut patterns = 0usize;
    let mut corrupted = 0usize;
    for _ in 0..samples.max(1) {
        let words: Vec<u64> = keyed.inputs().iter().map(|_| next()).collect();
        for (&g, &w) in keyed.inputs().iter().zip(&words) {
            sim.set_input(g, w);
        }
        sim.eval_comb();
        for lane in 0..64 {
            let named: Vec<(String, bool)> = keyed
                .inputs()
                .iter()
                .zip(&words)
                .map(|(&g, &w)| (keyed.gate_name(g).unwrap_or("").to_owned(), w >> lane & 1 == 1))
                .collect();
            let expect = oracle.query(&named);
            patterns += 1;
            let mismatch = keyed.outputs().iter().any(|(name, drv)| {
                expect
                    .iter()
                    .find(|(n, _)| n == name)
                    .is_some_and(|(_, e)| (sim.value(*drv) >> lane & 1 == 1) != *e)
            });
            corrupted += usize::from(mismatch);
        }
    }
    let corrupted_fraction = corrupted as f64 / patterns.max(1) as f64;
    let data_inputs = locked.inputs().len() - locked.key_inputs.len();
    let space = 2.0f64.powi(data_inputs.min(1023) as i32);
    BypassEstimate {
        corrupted_fraction,
        estimated_patterns: corrupted_fraction * space,
        feasible: corrupted_fraction < BYPASS_FEASIBLE_FRACTION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::{GateKind, Netlist};

    #[test]
    fn high_corruption_is_infeasible_to_bypass() {
        let mut locked = Netlist::new("l");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_input("keyinput0");
        locked.mark_key_input(k);
        let g = locked.add_gate(GateKind::Or, vec![a, b]);
        let y = locked.add_gate(GateKind::Xor, vec![g, k]);
        locked.add_output("y", y);
        let mut orig = Netlist::new("o");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let g = orig.add_gate(GateKind::Or, vec![a, b]);
        orig.add_output("y", g);
        // Wrong key (true) flips every output.
        let est = bypass_estimate(&locked, &orig, &[true], 16, 5);
        assert!(est.corrupted_fraction > 0.9);
        assert!(!est.feasible);
    }

    #[test]
    fn correct_key_corrupts_nothing() {
        let mut locked = Netlist::new("l");
        let a = locked.add_input("a");
        let k = locked.add_input("keyinput0");
        locked.mark_key_input(k);
        let y = locked.add_gate(GateKind::Xor, vec![a, k]);
        locked.add_output("y", y);
        let mut orig = Netlist::new("o");
        let a = orig.add_input("a");
        orig.add_output("y", a);
        let est = bypass_estimate(&locked, &orig, &[false], 16, 5);
        assert_eq!(est.corrupted_fraction, 0.0);
        assert!(est.feasible, "nothing to patch");
    }
}
