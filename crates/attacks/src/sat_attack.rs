//! The oracle-guided SAT attack (Subramanyan et al., HOST 2015 — \[4\]/\[38\]
//! in the paper).
//!
//! Finds the locking key of a *combinational* (scan-accessible) locked
//! circuit by iteratively discovering distinguishing input patterns (DIPs):
//! a miter of two key-differentiated copies yields an input on which some
//! pair of keys disagrees; the oracle's answer for that input rules out all
//! keys in the wrong equivalence class. When no DIP remains, any key
//! consistent with the accumulated I/O constraints is functionally correct.
//!
//! Sequential circuits must be attacked through their scan view
//! ([`rtlock_synth::scan_view`]); if flip-flops remain (partial scan or
//! locked scan access), the attack refuses — exactly the protection RTLock's
//! scan locking provides.

use crate::oracle::CombOracle;
use rtlock_artifacts::{encode_comb_cached, ArtifactStore};
use rtlock_governor::{CancelToken, Deadline};
use rtlock_netlist::{CnfBuilder, GateId, Netlist};
use rtlock_sat::{Budget, Lit, SatBackend, SolveResult, Solver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Attack resource limits.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Maximum number of DIP iterations.
    pub max_iterations: usize,
    /// Wall-clock limit for the whole attack.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation: a fired token stops the attack at the next
    /// solver restart or DIP boundary with [`AttackOutcome::TimedOut`].
    /// This is how a portfolio run interrupts a losing attack mid-solve.
    pub cancel: Option<CancelToken>,
    /// Content-addressed artifact cache for the Tseitin encodings the
    /// attack re-derives on every circuit copy (two miter copies plus two
    /// per DIP). A hit replays the exact clause list and variable numbering
    /// a direct encode would produce, so the attack outcome is identical
    /// with or without the cache. `None` encodes directly.
    pub cache: Option<Arc<ArtifactStore>>,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig { max_iterations: 10_000, timeout: None, cancel: None, cache: None }
    }
}

impl AttackConfig {
    /// The token the attack polls: the configured cancel token tightened to
    /// the wall-clock timeout, or a pure deadline token without one.
    pub(crate) fn stop_token(&self) -> CancelToken {
        let deadline = Deadline::within(self.timeout);
        match &self.cancel {
            Some(t) => t.tightened(deadline),
            None => CancelToken::with_deadline(deadline),
        }
    }
}

/// Counters an attack accumulates while it runs.
///
/// The counter fields (`oracle_queries`, `patterns_simulated`,
/// `dips_accepted`, `dips_rejected`) are deterministic for a given attack
/// configuration — identical across worker counts, cache modes and reruns
/// — and so are safe to surface in canonical (journaled, diffable)
/// renderings. `round_wall_clock` is wall-clock telemetry and must stay
/// out of every canonical form, like `elapsed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// Oracle invocations (one batch `query64` sweep counts once).
    pub oracle_queries: usize,
    /// Input patterns evaluated by bit-parallel simulation (64 per sweep).
    pub patterns_simulated: usize,
    /// Distinguishing patterns whose I/O constraints entered the miter.
    pub dips_accepted: usize,
    /// Candidate patterns discarded (duplicates from parallel miners,
    /// pre-filter lanes that no longer distinguish any candidate).
    pub dips_rejected: usize,
    /// Wall-clock time of each DIP round, in round order. Telemetry only:
    /// never part of canonical renderings.
    pub round_wall_clock: Vec<Duration>,
}

impl AttackStats {
    /// Folds another attack's counters into this one (partitioned attacks
    /// report the aggregate); round wall clocks concatenate in order.
    pub fn absorb(&mut self, other: &AttackStats) {
        self.oracle_queries += other.oracle_queries;
        self.patterns_simulated += other.patterns_simulated;
        self.dips_accepted += other.dips_accepted;
        self.dips_rejected += other.dips_rejected;
        self.round_wall_clock.extend(other.round_wall_clock.iter().copied());
    }

    /// The deterministic counters as a canonical fragment. Excludes every
    /// wall-clock field by construction.
    pub fn canonical(&self) -> String {
        format!(
            "queries={}, simulated={}, dips={}+{}",
            self.oracle_queries, self.patterns_simulated, self.dips_accepted, self.dips_rejected
        )
    }
}

/// Result of an attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// A functionally correct key was recovered.
    KeyFound {
        /// Recovered key bits, in `key_inputs` order.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
        /// Wall-clock time spent.
        elapsed: Duration,
        /// Deterministic counters plus per-round telemetry.
        stats: AttackStats,
    },
    /// The budget ran out first (counts as "not broken" in Table III).
    TimedOut {
        /// DIP iterations completed.
        iterations: usize,
        /// Wall-clock time spent.
        elapsed: Duration,
        /// Deterministic counters plus per-round telemetry.
        stats: AttackStats,
    },
    /// The attack does not apply (no key inputs, or sequential elements
    /// without scan access).
    Infeasible {
        /// Why the attack cannot run.
        reason: String,
    },
    /// The attack machinery itself failed — e.g. the SAT model lacked an
    /// assignment for a variable the attack must read. Unlike
    /// [`AttackOutcome::Infeasible`] this indicates a bug or an
    /// inconsistent encoding, never a property of the target, so callers
    /// must not score it as "resisted".
    Error {
        /// What went wrong.
        reason: String,
    },
}

impl AttackOutcome {
    /// The recovered key, if any.
    pub fn key(&self) -> Option<&[bool]> {
        match self {
            AttackOutcome::KeyFound { key, .. } => Some(key),
            _ => None,
        }
    }

    /// How a retry supervisor should treat this outcome — the one
    /// classification every attack (sat, bmc, removal, bypass) shares:
    ///
    /// * [`AttackOutcome::TimedOut`] is budget exhaustion (deadline,
    ///   cancel, or an iteration cap) — `Transient`: a retry with a fresh
    ///   budget may finish.
    /// * [`AttackOutcome::Error`] is broken attack machinery (a model
    ///   hole, an inconsistent miter) — `Permanent`: it re-fails
    ///   identically on every attempt and must never be retried.
    /// * [`AttackOutcome::KeyFound`] and [`AttackOutcome::Infeasible`]
    ///   are definitive verdicts about the target — `None`, nothing to
    ///   retry.
    pub fn error_class(&self) -> Option<rtlock_store::ErrorClass> {
        match self {
            AttackOutcome::TimedOut { .. } => Some(rtlock_store::ErrorClass::Transient),
            AttackOutcome::Error { .. } => Some(rtlock_store::ErrorClass::Permanent),
            AttackOutcome::KeyFound { .. } | AttackOutcome::Infeasible { .. } => None,
        }
    }

    /// The attack statistics, if this outcome carries them.
    pub fn stats(&self) -> Option<&AttackStats> {
        match self {
            AttackOutcome::KeyFound { stats, .. } | AttackOutcome::TimedOut { stats, .. } => {
                Some(stats)
            }
            _ => None,
        }
    }

    /// Canonical wall-clock-free rendering: everything about the outcome
    /// that is deterministic for a fixed attack configuration (key bits,
    /// iteration count, deterministic counters) and nothing that is not
    /// (`elapsed`, per-round wall clock). Two runs of the same attack at
    /// different worker counts must render identically — this is the
    /// string the parallel-determinism suite pins.
    pub fn canonical(&self) -> String {
        match self {
            AttackOutcome::KeyFound { key, iterations, stats, .. } => {
                let bits: String = key.iter().map(|&b| if b { '1' } else { '0' }).collect();
                format!("key-found(key={bits}, iterations={iterations}, {})", stats.canonical())
            }
            AttackOutcome::TimedOut { iterations, stats, .. } => {
                format!("timed-out(iterations={iterations}, {})", stats.canonical())
            }
            AttackOutcome::Infeasible { reason } => format!("infeasible({reason})"),
            AttackOutcome::Error { reason } => format!("error({reason})"),
        }
    }
}

/// Runs the SAT attack on `locked` (combinational, key inputs marked)
/// against an oracle built from the unlocked `original` netlist.
///
/// Input and output correspondence is by name: every non-key input and
/// every output of `locked` must exist in `original`.
pub fn sat_attack(locked: &Netlist, original: &Netlist, config: &AttackConfig) -> AttackOutcome {
    sat_attack_with::<Solver>(locked, original, config)
}

/// [`sat_attack`] parameterized over the solver backend. The attack loop,
/// miter encoding and DIP schedule are identical for every backend; only
/// the solving engine differs — which is what lets the bench harness
/// demand identical recovered keys from the arena core and the frozen
/// [`rtlock_sat::baseline`] solver while timing both.
pub fn sat_attack_with<S: SatBackend>(
    locked: &Netlist,
    original: &Netlist,
    config: &AttackConfig,
) -> AttackOutcome {
    let start = Instant::now();
    let mut oracle = CombOracle::new(original);
    let problem = match AttackProblem::build(locked, &oracle) {
        Ok(p) => p,
        Err(outcome) => return outcome,
    };
    let mut cnf = CnfBuilder::new();
    let mut solver = S::new();
    let mut drained = 0usize;
    let cache = config.cache.as_deref();
    let token = config.stop_token();

    // Shared x variables and two key copies.
    let x_vars: Vec<i32> = problem.data_inputs.iter().map(|_| cnf.fresh_var()).collect();
    let k1: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();
    let k2: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();

    let vars1 =
        encode_comb_cached(cache, &mut cnf, locked, &problem.assemble(&k1, &x_vars), &[], &token);
    let vars2 =
        encode_comb_cached(cache, &mut cnf, locked, &problem.assemble(&k2, &x_vars), &[], &token);

    // Miter: some output differs — guarded by an activation literal so the
    // final key-extraction solve can drop it.
    let mut diffs = Vec::new();
    for (_, drv) in locked.outputs() {
        let d = cnf.xor_lit(vars1[drv.index()], vars2[drv.index()]);
        diffs.push(d);
    }
    let any_diff = cnf.or_lit(&diffs);
    let act = cnf.fresh_var();
    cnf.add_clause(&[-act, any_diff]);

    sync(&mut cnf, &mut solver, &mut drained);

    let mut iterations = 0usize;
    let mut stats = AttackStats::default();
    let mut round_start = Instant::now();
    loop {
        solver.set_budget(Budget::cancellable(&token));
        let res = solver.solve(&[Lit::from_dimacs(act)]);
        match res {
            SolveResult::Unknown => {
                return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats };
            }
            SolveResult::Unsat => {
                // No DIP left: any consistent key is correct.
                match solver.solve(&[]) {
                    SolveResult::Sat => {}
                    // Budget/cancel fired during key extraction: this is
                    // exhaustion, not a property of the target — reporting
                    // it as Infeasible would let a retry supervisor treat
                    // a slow run as a permanent miter defect.
                    SolveResult::Unknown => {
                        return AttackOutcome::TimedOut {
                            iterations,
                            elapsed: start.elapsed(),
                            stats,
                        };
                    }
                    SolveResult::Unsat => {
                        return AttackOutcome::Infeasible {
                            reason: "I/O constraints inconsistent (oracle/netlist mismatch?)".into(),
                        };
                    }
                }
                let key = match model_bits(&solver, &k1) {
                    Ok(bits) => bits,
                    Err(missing) => {
                        return AttackOutcome::Error {
                            reason: format!(
                                "SAT model lacks an assignment for key bit {missing}; \
                                 refusing to fabricate key bits"
                            ),
                        }
                    }
                };
                return AttackOutcome::KeyFound { key, iterations, elapsed: start.elapsed(), stats };
            }
            SolveResult::Sat => {
                iterations += 1;
                if iterations > config.max_iterations {
                    return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats };
                }
                // Extract the DIP and ask the oracle.
                let dip = match model_bits(&solver, &x_vars) {
                    Ok(bits) => bits,
                    Err(missing) => {
                        return AttackOutcome::Error {
                            reason: format!(
                                "SAT model lacks an assignment for DIP input {missing}; \
                                 refusing to fabricate a distinguishing pattern"
                            ),
                        }
                    }
                };
                let answer = oracle.query_bits(&problem.bind_pattern(&dip));
                stats.oracle_queries += 1;

                // Constrain both key copies to produce the oracle's answer
                // on this DIP, using two fresh circuit copies.
                for keys in [&k1, &k2] {
                    encode_dip_constraint(
                        &mut cnf, cache, &problem, keys, &dip, &answer, &token,
                    );
                }
                stats.dips_accepted += 1;
                stats.round_wall_clock.push(round_start.elapsed());
                round_start = Instant::now();
                sync(&mut cnf, &mut solver, &mut drained);
            }
        }
        if token.should_stop().is_some() {
            return AttackOutcome::TimedOut { iterations, elapsed: start.elapsed(), stats };
        }
    }
}

/// One locked-input slot: where the literal for that input position comes
/// from when a circuit copy is assembled.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// `key_inputs[i]` — take the i-th literal of the key vector.
    Key(usize),
    /// The i-th data (non-key) input — take the i-th x/pattern literal.
    Data(usize),
}

/// Everything about a locked/original pair the attack resolves *once*:
/// input partition, the input→slot table every circuit copy is assembled
/// through (replacing the old O(inputs × key_bits) `position()` scans per
/// copy), and the index-based oracle binding (replacing the per-DIP
/// name-map rescan).
pub(crate) struct AttackProblem<'n> {
    pub(crate) locked: &'n Netlist,
    /// Non-key inputs of `locked`, in input order.
    pub(crate) data_inputs: Vec<GateId>,
    /// Per locked output: does the oracle share it (by name)?
    pub(crate) shared_outputs: Vec<bool>,
    /// Per locked input position: key index or data index.
    pub(crate) slots: Vec<Slot>,
    /// Per data input: the oracle-side input id, if the oracle knows it
    /// (scan controls and the like exist only on the locked design).
    pub(crate) oracle_bind: Vec<Option<GateId>>,
    /// Per locked output: position in the oracle's answer vector.
    pub(crate) answer_pos: Vec<Option<usize>>,
}

impl<'n> AttackProblem<'n> {
    /// Resolves the problem structure, or the `Infeasible` outcome that
    /// explains why the attack cannot run.
    pub(crate) fn build(
        locked: &'n Netlist,
        oracle: &CombOracle<'_>,
    ) -> Result<AttackProblem<'n>, AttackOutcome> {
        if locked.key_inputs.is_empty() {
            return Err(AttackOutcome::Infeasible { reason: "no key inputs".into() });
        }
        if !locked.dffs().is_empty() {
            return Err(AttackOutcome::Infeasible {
                reason: "sequential elements without scan access; SAT attack requires full scan"
                    .into(),
            });
        }
        let data_inputs: Vec<GateId> =
            locked.inputs().iter().copied().filter(|g| !locked.key_inputs.contains(g)).collect();
        // Inputs the oracle does not know (scan controls and the like,
        // present only on the locked design) are still attacker-controlled
        // variables; they are simply not forwarded to the oracle. Likewise
        // only outputs the oracle shares are constrained by its answers.
        let shared_outputs: Vec<bool> = locked
            .outputs()
            .iter()
            .map(|(name, _)| oracle.netlist().outputs().iter().any(|(n, _)| n == name))
            .collect();
        if !shared_outputs.iter().any(|&s| s) {
            return Err(AttackOutcome::Infeasible {
                reason: "no outputs shared with the oracle".into(),
            });
        }
        let key_pos: std::collections::HashMap<GateId, usize> =
            locked.key_inputs.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let data_pos: std::collections::HashMap<GateId, usize> =
            data_inputs.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let slots: Vec<Slot> = locked
            .inputs()
            .iter()
            .map(|g| match key_pos.get(g) {
                Some(&ki) => Slot::Key(ki),
                None => Slot::Data(data_pos[g]),
            })
            .collect();
        let oracle_bind: Vec<Option<GateId>> = data_inputs
            .iter()
            .map(|&g| locked.gate_name(g).and_then(|n| oracle.input_id(n)))
            .collect();
        let answer_pos: Vec<Option<usize>> =
            locked.outputs().iter().map(|(name, _)| oracle.output_position(name)).collect();
        Ok(AttackProblem { locked, data_inputs, shared_outputs, slots, oracle_bind, answer_pos })
    }

    /// Literal vector for one circuit copy: `keys` for key positions, `xs`
    /// for data positions, via the precomputed slot table.
    pub(crate) fn assemble(&self, keys: &[i32], xs: &[i32]) -> Vec<i32> {
        self.slots
            .iter()
            .map(|s| match *s {
                Slot::Key(ki) => keys[ki],
                Slot::Data(xi) => xs[xi],
            })
            .collect()
    }

    /// The oracle assignment for a concrete data-input pattern.
    pub(crate) fn bind_pattern(&self, dip: &[bool]) -> Vec<(GateId, bool)> {
        self.oracle_bind
            .iter()
            .zip(dip)
            .filter_map(|(bind, &v)| bind.map(|g| (g, v)))
            .collect()
    }

    /// The oracle assignment for one 64-lane sweep over the data inputs.
    pub(crate) fn bind_sweep(&self, words: &[u64]) -> Vec<(GateId, u64)> {
        self.oracle_bind
            .iter()
            .zip(words)
            .filter_map(|(bind, &w)| bind.map(|g| (g, w)))
            .collect()
    }
}

/// Encodes one I/O constraint copy: a fresh circuit copy with inputs
/// hardwired to `dip` under key literals `keys`, with every shared output
/// asserted to the oracle's `answer`.
pub(crate) fn encode_dip_constraint(
    cnf: &mut CnfBuilder,
    cache: Option<&ArtifactStore>,
    problem: &AttackProblem<'_>,
    keys: &[i32],
    dip: &[bool],
    answer: &[bool],
    token: &CancelToken,
) {
    let xin: Vec<i32> = dip
        .iter()
        .map(|&v| {
            let var = cnf.fresh_var();
            cnf.assert_lit(if v { var } else { -var });
            var
        })
        .collect();
    let vars = encode_comb_cached(
        cache,
        cnf,
        problem.locked,
        &problem.assemble(keys, &xin),
        &[],
        token,
    );
    for (oi, (_, drv)) in problem.locked.outputs().iter().enumerate() {
        if !problem.shared_outputs[oi] {
            continue; // locked-only output: the oracle has no answer
        }
        let Some(ai) = problem.answer_pos[oi] else { continue };
        let lit = vars[drv.index()];
        cnf.assert_lit(if answer[ai] { lit } else { -lit });
    }
}

/// Reads the model values for `vars` (DIMACS numbering) after a
/// [`SolveResult::Sat`] answer. `Err(i)` reports the position of the first
/// variable the model does not assign — the caller must surface that as an
/// [`AttackOutcome::Error`], never substitute a default: a fabricated key
/// bit silently turns "attack machinery broke" into a plausible-looking
/// wrong key.
pub(crate) fn model_bits<S: SatBackend>(solver: &S, vars: &[i32]) -> Result<Vec<bool>, usize> {
    vars.iter()
        .enumerate()
        .map(|(i, &v)| solver.value(rtlock_sat::Var(v as u32 - 1)).ok_or(i))
        .collect()
}

fn sync<S: SatBackend>(cnf: &mut CnfBuilder, solver: &mut S, drained: &mut usize) {
    solver.reserve_vars(cnf.num_vars());
    let clauses = cnf.clauses();
    for c in &clauses[*drained..] {
        solver.add_dimacs_clause(c);
    }
    *drained = clauses.len();
}

/// Hardwires a key into a locked netlist (no optimization).
///
/// # Panics
///
/// Panics if `key.len()` differs from the number of key inputs.
pub fn apply_key(locked: &Netlist, key: &[bool]) -> Netlist {
    assert_eq!(key.len(), locked.key_inputs.len(), "key length mismatch");
    let mut n = locked.clone();
    let kins = n.key_inputs.clone();
    for (&g, &v) in kins.iter().zip(key) {
        n.convert_input_to_const(g, v);
    }
    n
}

/// Checks a recovered key by random co-simulation of the keyed locked
/// netlist against the original: returns the fraction of matching output
/// bits over `patterns` random input vectors (1.0 = functionally
/// equivalent on the sample).
pub fn key_accuracy(locked: &Netlist, original: &Netlist, key: &[bool], patterns: usize, seed: u64) -> f64 {
    use rtlock_netlist::NetSim;
    let keyed = apply_key(locked, key);
    let mut oracle = CombOracle::new(original);
    let mut sim = NetSim::new(&keyed).expect("acyclic");
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut total = 0usize;
    let mut matching = 0usize;
    for _ in 0..patterns {
        let named: Vec<(String, bool)> = keyed
            .inputs()
            .iter()
            .map(|&g| (keyed.gate_name(g).unwrap_or("").to_owned(), next() & 1 == 1))
            .collect();
        for (&g, (_, v)) in keyed.inputs().iter().zip(&named) {
            sim.set_input(g, if *v { u64::MAX } else { 0 });
        }
        sim.eval_comb();
        let answer = oracle.query(&named);
        for ((name, drv), _) in keyed.outputs().iter().zip(0..) {
            let got = sim.value(*drv) & 1 == 1;
            let expect = answer.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(false);
            total += 1;
            matching += usize::from(got == expect);
        }
    }
    if total == 0 {
        1.0
    } else {
        matching as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::GateKind;

    /// y = (a & b) ^ (c | d), locked with XOR/XNOR key gates.
    fn build_pair(key: &[bool]) -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let c = orig.add_input("c");
        let d = orig.add_input("d");
        let ab = orig.add_gate(GateKind::And, vec![a, b]);
        let cd = orig.add_gate(GateKind::Or, vec![c, d]);
        let y = orig.add_gate(GateKind::Xor, vec![ab, cd]);
        orig.add_output("y", y);

        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let c = locked.add_input("c");
        let d = locked.add_input("d");
        let mut keys = Vec::new();
        for i in 0..key.len() {
            let k = locked.add_input(format!("keyinput{i}"));
            locked.mark_key_input(k);
            keys.push(k);
        }
        let ab = locked.add_gate(GateKind::And, vec![a, b]);
        // Key gate 0 on ab: XOR if key bit 0 else XNOR.
        let ab_l = if key[0] {
            locked.add_gate(GateKind::Xnor, vec![ab, keys[0]])
        } else {
            locked.add_gate(GateKind::Xor, vec![ab, keys[0]])
        };
        let cd = locked.add_gate(GateKind::Or, vec![c, d]);
        let cd_l = if key.len() > 1 {
            if key[1] {
                locked.add_gate(GateKind::Xnor, vec![cd, keys[1]])
            } else {
                locked.add_gate(GateKind::Xor, vec![cd, keys[1]])
            }
        } else {
            cd
        };
        let y = locked.add_gate(GateKind::Xor, vec![ab_l, cd_l]);
        locked.add_output("y", y);
        (locked, orig)
    }

    #[test]
    fn recovers_two_bit_key() {
        for key in [[false, false], [false, true], [true, false], [true, true]] {
            let (locked, orig) = build_pair(&key);
            let out = sat_attack(&locked, &orig, &AttackConfig::default());
            match out {
                AttackOutcome::KeyFound { key: found, .. } => {
                    assert_eq!(key_accuracy(&locked, &orig, &found, 64, 7), 1.0, "key {key:?} -> {found:?}");
                }
                other => panic!("attack failed for {key:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn refuses_sequential_netlists() {
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let x = n.add_gate(GateKind::Xor, vec![a, k]);
        let ff = n.add_gate(GateKind::Dff { init: false }, vec![x]);
        n.add_output("q", ff);
        let out = sat_attack(&n, &n, &AttackConfig::default());
        assert!(matches!(out, AttackOutcome::Infeasible { .. }));
    }

    #[test]
    fn refuses_keyless_netlists() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.add_output("y", a);
        assert!(matches!(sat_attack(&n, &n, &AttackConfig::default()), AttackOutcome::Infeasible { .. }));
    }

    #[test]
    fn iteration_budget_respected() {
        let (locked, orig) = build_pair(&[true, false]);
        let out = sat_attack(&locked, &orig, &AttackConfig { max_iterations: 0, timeout: None, ..Default::default() });
        // Either it needed no DIPs (unlikely) or it hits the budget.
        assert!(matches!(out, AttackOutcome::TimedOut { .. } | AttackOutcome::KeyFound { .. }));
    }

    #[test]
    fn missing_model_assignment_is_an_error_not_a_zero_bit() {
        // A variable the solver never saw has no model value; the old
        // `unwrap_or(false)` fabricated a zero key bit here.
        let mut s = Solver::new();
        s.add_dimacs_clause(&[1]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(model_bits(&s, &[1]), Ok(vec![true]));
        assert_eq!(model_bits(&s, &[1, 7]), Err(1), "var 7 is unassigned");
    }

    #[test]
    fn attack_error_outcome_carries_no_key() {
        let out = AttackOutcome::Error { reason: "model hole".into() };
        assert_eq!(out.key(), None);
    }

    #[test]
    fn pre_cancelled_token_times_the_attack_out() {
        let (locked, orig) = build_pair(&[true, false]);
        let token = rtlock_governor::CancelToken::unlimited();
        token.cancel();
        let cfg = AttackConfig { cancel: Some(token), ..AttackConfig::default() };
        let out = sat_attack(&locked, &orig, &cfg);
        assert!(
            matches!(out, AttackOutcome::TimedOut { iterations: 0, .. }),
            "cancelled before the first solve: {out:?}"
        );
    }

    #[test]
    fn canonical_rendering_excludes_wall_clock_fields() {
        // Two outcomes that differ ONLY in wall-clock telemetry must
        // render identically — the canonical form is what the journal
        // replays and the determinism suite diffs.
        let stats_fast = AttackStats {
            oracle_queries: 3,
            patterns_simulated: 128,
            dips_accepted: 2,
            dips_rejected: 1,
            round_wall_clock: vec![Duration::from_millis(5), Duration::from_millis(7)],
        };
        let stats_slow = AttackStats {
            round_wall_clock: vec![Duration::from_secs(60); 9],
            ..stats_fast.clone()
        };
        let fast = AttackOutcome::KeyFound {
            key: vec![true, false],
            iterations: 2,
            elapsed: Duration::from_millis(12),
            stats: stats_fast.clone(),
        };
        let slow = AttackOutcome::KeyFound {
            key: vec![true, false],
            iterations: 2,
            elapsed: Duration::from_secs(999),
            stats: stats_slow.clone(),
        };
        assert_eq!(fast.canonical(), slow.canonical());
        assert!(!fast.canonical().to_lowercase().contains("elapsed"), "{}", fast.canonical());
        let t_fast = AttackOutcome::TimedOut {
            iterations: 4,
            elapsed: Duration::from_millis(3),
            stats: stats_fast,
        };
        let t_slow =
            AttackOutcome::TimedOut { iterations: 4, elapsed: Duration::from_secs(10), stats: stats_slow };
        assert_eq!(t_fast.canonical(), t_slow.canonical());
        // But the deterministic counters DO show up.
        assert!(fast.canonical().contains("queries=3, simulated=128, dips=2+1"), "{}", fast.canonical());
    }

    #[test]
    fn stats_absorb_sums_counters_and_concatenates_rounds() {
        let mut a = AttackStats {
            oracle_queries: 1,
            patterns_simulated: 64,
            dips_accepted: 1,
            dips_rejected: 0,
            round_wall_clock: vec![Duration::from_millis(1)],
        };
        let b = AttackStats {
            oracle_queries: 2,
            patterns_simulated: 0,
            dips_accepted: 3,
            dips_rejected: 4,
            round_wall_clock: vec![Duration::from_millis(2), Duration::from_millis(3)],
        };
        a.absorb(&b);
        assert_eq!(a.oracle_queries, 3);
        assert_eq!(a.patterns_simulated, 64);
        assert_eq!(a.dips_accepted, 4);
        assert_eq!(a.dips_rejected, 4);
        assert_eq!(a.round_wall_clock.len(), 3);
    }

    #[test]
    fn apply_key_hardwires_constants() {
        let (locked, orig) = build_pair(&[true, true]);
        let keyed = apply_key(&locked, &[true, true]);
        assert!(keyed.key_inputs.is_empty());
        assert_eq!(key_accuracy(&locked, &orig, &[true, true], 32, 3), 1.0);
        assert!(key_accuracy(&locked, &orig, &[false, true], 32, 3) < 1.0, "wrong key corrupts");
    }
}
