//! SWEEP and SCOPE — oracle-less, ML-based constant-propagation attacks
//! (\[18\] and \[37\] in the paper, used for Table IV).
//!
//! **SWEEP** (supervised): trains per-feature weights on a corpus of locked
//! designs with known keys, then predicts each key bit of the target from
//! the sign of the learned score on that bit's feature delta.
//!
//! **SCOPE** (unsupervised): no training; for each key bit it compares the
//! two re-synthesis runs and votes with a fixed heuristic — the hypothesis
//! whose netlist optimizes *smaller/shallower* is taken as the likely
//! correct value (correct constants cancel key gates; wrong constants leave
//! residual logic). Undecidable bits (identical reports) are output as
//! unknown, scored as coin flips — which is why balanced RTL locking lands
//! at ~50 % in Table IV.

use crate::features::{key_bit_delta, NUM_FEATURES};
use rtlock_netlist::Netlist;

/// Accuracy report of an ML attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct MlReport {
    /// Per-bit prediction (`None` = undecidable).
    pub predictions: Vec<Option<bool>>,
    /// Accuracy against the true key: correct bits count 1, undecidable
    /// bits count 0.5 (coin flip), in `[0, 1]`.
    pub accuracy: f64,
}

fn score_accuracy(predictions: &[Option<bool>], key: &[bool]) -> f64 {
    assert_eq!(predictions.len(), key.len(), "key length mismatch");
    if key.is_empty() {
        return 1.0;
    }
    let mut score = 0.0;
    for (p, &k) in predictions.iter().zip(key) {
        score += match p {
            Some(v) if *v == k => 1.0,
            Some(_) => 0.0,
            None => 0.5,
        };
    }
    score / key.len() as f64
}

/// A trained SWEEP model (linear weights over feature deltas).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepModel {
    weights: [f64; NUM_FEATURES],
    bias: f64,
}

impl SweepModel {
    /// Trains on `(locked netlist, correct key)` pairs by least squares on
    /// ±1 labels over per-bit feature deltas (ridge-regularized).
    ///
    /// # Panics
    ///
    /// Panics if the training set contains no key bits.
    pub fn train(corpus: &[(&Netlist, &[bool])]) -> SweepModel {
        let mut rows: Vec<([f64; NUM_FEATURES], f64)> = Vec::new();
        for (netlist, key) in corpus {
            for (bit, &kv) in key.iter().enumerate() {
                let delta = key_bit_delta(netlist, bit);
                rows.push((delta, if kv { 1.0 } else { -1.0 }));
            }
        }
        assert!(!rows.is_empty(), "empty SWEEP training set");
        // Solve (XᵀX + λI) w = Xᵀy with Gaussian elimination.
        const D: usize = NUM_FEATURES + 1; // +1 for bias
        let mut ata = [[0.0f64; D]; D];
        let mut aty = [0.0f64; D];
        for (x, y) in &rows {
            let mut xb = [0.0; D];
            xb[..NUM_FEATURES].copy_from_slice(x);
            xb[NUM_FEATURES] = 1.0;
            for i in 0..D {
                for j in 0..D {
                    ata[i][j] += xb[i] * xb[j];
                }
                aty[i] += xb[i] * y;
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-3; // ridge
        }
        let w = solve_linear(ata, aty);
        let mut weights = [0.0; NUM_FEATURES];
        weights.copy_from_slice(&w[..NUM_FEATURES]);
        SweepModel { weights, bias: w[NUM_FEATURES] }
    }

    /// Predicts one key bit of `locked`; `None` when the score is too close
    /// to the decision boundary (margin below `1e-6`).
    pub fn predict_bit(&self, locked: &Netlist, bit: usize) -> Option<bool> {
        let delta = key_bit_delta(locked, bit);
        let score: f64 =
            self.weights.iter().zip(&delta).map(|(w, d)| w * d).sum::<f64>() + self.bias;
        if score.abs() < 1e-6 {
            None
        } else {
            Some(score > 0.0)
        }
    }

    /// Attacks a target: predicts every bit and scores against `key`.
    pub fn attack(&self, locked: &Netlist, key: &[bool]) -> MlReport {
        let predictions: Vec<Option<bool>> =
            (0..locked.key_inputs.len()).map(|b| self.predict_bit(locked, b)).collect();
        let accuracy = score_accuracy(&predictions, key);
        MlReport { predictions, accuracy }
    }
}

fn solve_linear<const D: usize>(mut a: [[f64; D]; D], mut b: [f64; D]) -> [f64; D] {
    for col in 0..D {
        // Partial pivot.
        let mut pivot = col;
        for r in col + 1..D {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-12 {
            continue;
        }
        for r in 0..D {
            if r == col {
                continue;
            }
            let factor = a[r][col] / p;
            let pivot_row = a[col];
            for (rc, pc) in a[r].iter_mut().zip(pivot_row) {
                *rc -= factor * pc;
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = [0.0; D];
    for i in 0..D {
        x[i] = if a[i][i].abs() < 1e-12 { 0.0 } else { b[i] / a[i][i] };
    }
    x
}

/// SCOPE: unsupervised single-target attack.
///
/// For each key bit, compare re-synthesis features under the 0 and 1
/// hypotheses; vote per feature for the hypothesis with the smaller value
/// (more constant-propagation collapse). Ties on every feature → unknown.
pub fn scope_attack(locked: &Netlist, key: &[bool]) -> MlReport {
    let predictions: Vec<Option<bool>> = (0..locked.key_inputs.len())
        .map(|bit| {
            let delta = key_bit_delta(locked, bit);
            // delta = f(1) − f(0); positive → the 1-hypothesis is larger →
            // 0 looks correct. Sum signed votes over all features.
            let vote: f64 = delta.iter().sum();
            if vote > 0.0 {
                Some(false)
            } else if vote < 0.0 {
                Some(true)
            } else {
                None
            }
        })
        .collect();
    let accuracy = score_accuracy(&predictions, key);
    MlReport { predictions, accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::{GateKind, Netlist};

    /// Chain of AND gates with XOR/XNOR key gates (TOC_XOR-style locking).
    fn xor_locked_chain(key: &[bool], seed: u64) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let ins: Vec<_> = (0..6).map(|i| n.add_input(format!("i{i}"))).collect();
        let mut cur = ins[0];
        let mut nets = ins.clone();
        for (i, &kv) in key.iter().enumerate() {
            let other = nets[(next() % nets.len() as u64) as usize];
            cur = n.add_gate(GateKind::And, vec![cur, other]);
            let k = n.add_input(format!("keyinput{i}"));
            n.mark_key_input(k);
            cur = if kv {
                n.add_gate(GateKind::Xnor, vec![cur, k])
            } else {
                n.add_gate(GateKind::Xor, vec![cur, k])
            };
            nets.push(cur);
        }
        n.add_output("y", cur);
        n
    }

    #[test]
    fn scope_breaks_xor_locking() {
        let key = vec![true, false, true, true, false];
        let locked = xor_locked_chain(&key, 11);
        let report = scope_attack(&locked, &key);
        assert!(report.accuracy > 0.9, "SCOPE should break naive XOR locking, got {}", report.accuracy);
    }

    #[test]
    fn sweep_breaks_xor_locking_after_training() {
        let train_keys: Vec<Vec<bool>> =
            vec![vec![false, true, false, true], vec![true, true, false, false], vec![false, false, true, true]];
        let train_nets: Vec<Netlist> =
            train_keys.iter().enumerate().map(|(i, k)| xor_locked_chain(k, 100 + i as u64)).collect();
        let corpus: Vec<(&Netlist, &[bool])> =
            train_nets.iter().zip(&train_keys).map(|(n, k)| (n, k.as_slice())).collect();
        let model = SweepModel::train(&corpus);
        let key = vec![true, false, false, true, true];
        let target = xor_locked_chain(&key, 999);
        let report = model.attack(&target, &key);
        assert!(report.accuracy > 0.9, "SWEEP accuracy {}", report.accuracy);
    }

    #[test]
    fn balanced_locking_defeats_scope() {
        // A "balanced" key gate: mux between a+b and a-b style — here
        // modeled as mux(k, xor(a,b), xnor(a,b)): both hypotheses leave
        // exactly one gate, so features tie and SCOPE must output unknown.
        let mut n = Netlist::new("balanced");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k = n.add_input("keyinput0");
        n.mark_key_input(k);
        let t = n.add_gate(GateKind::Xor, vec![a, b]);
        let f = n.add_gate(GateKind::Xnor, vec![a, b]);
        let m = n.add_gate(GateKind::Mux, vec![k, t, f]);
        n.add_output("y", m);
        let report = scope_attack(&n, &[false]);
        assert_eq!(report.predictions, vec![None], "balanced gate is undecidable");
        assert_eq!(report.accuracy, 0.5);
    }

    #[test]
    fn accuracy_scoring_rules() {
        assert_eq!(score_accuracy(&[Some(true), Some(false)], &[true, false]), 1.0);
        assert_eq!(score_accuracy(&[Some(false), Some(true)], &[true, false]), 0.0);
        assert_eq!(score_accuracy(&[None, None], &[true, false]), 0.5);
    }
}
