//! Attack suite of the RTLock reproduction (Section IV / Tables III–IV).
//!
//! * [`sat_attack()`] — the oracle-guided SAT attack of Subramanyan et al.;
//! * [`bmc_attack()`] — oracle-guided bounded-model-checking attack for
//!   circuits without scan access;
//! * [`ml`] — the oracle-less SWEEP (supervised) and SCOPE (unsupervised)
//!   constant-propagation attacks;
//! * [`removal`] — SPS-based point-function removal analysis;
//! * [`prune`] — dataflow-guided key-space partitioning for the SAT
//!   attack and taint-justified removal candidates;
//! * [`bypass`] — bypass-attack cost estimation;
//! * [`portfolio`] — deterministic parallel portfolio racing the suite
//!   under one budget;
//! * [`oracle`] — the activated-chip oracles the oracle-guided attacks use.
//!
//! # Examples
//!
//! Lock a trivial circuit with one XOR key gate and break it:
//!
//! ```
//! use rtlock_netlist::{Netlist, GateKind};
//! use rtlock_attacks::{sat_attack, AttackConfig, AttackOutcome};
//!
//! let mut orig = Netlist::new("orig");
//! let a = orig.add_input("a");
//! let b = orig.add_input("b");
//! let g = orig.add_gate(GateKind::And, vec![a, b]);
//! orig.add_output("y", g);
//!
//! let mut locked = orig.clone();
//! let k = locked.add_input("keyinput0");
//! locked.mark_key_input(k);
//! let out = locked.outputs()[0].1;
//! let kg = locked.add_gate(GateKind::Xor, vec![out, k]);
//! locked.replace_output_driver(0, kg);
//!
//! match sat_attack(&locked, &orig, &AttackConfig::default()) {
//!     AttackOutcome::KeyFound { key, .. } => assert_eq!(key, vec![false]),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod bmc_attack;
pub mod bypass;
pub mod dip;
pub mod features;
pub mod ml;
pub mod oracle;
pub mod portfolio;
pub mod prune;
pub mod removal;
pub mod sat_attack;

pub use bmc_attack::{bmc_attack, sequential_key_accuracy, BmcConfig};
pub use bypass::{bypass_estimate, BypassEstimate};
pub use dip::{sat_attack_parallel, sat_attack_parallel_with, DipConfig, PrefilterConfig};
pub use ml::{scope_attack, MlReport, SweepModel};
pub use oracle::{CombOracle, SeqOracle};
pub use portfolio::{
    portfolio_attack, portfolio_attack_resumable, portfolio_attack_sequential, MemberOutcome,
    PortfolioConfig, PortfolioMember, PortfolioTarget, PortfolioVerdict, ReplayedMember,
};
pub use prune::{dataflow_removal_candidates, sat_attack_pruned, PrunedAttack, RemovalJustification};
pub use removal::{removal_attack, RemovalOutcome};
pub use sat_attack::{apply_key, key_accuracy, sat_attack, sat_attack_with, AttackConfig, AttackOutcome};
