//! Deterministic portfolio attack: race the whole attack suite, keep the
//! sequential verdict.
//!
//! A portfolio runs several attacks on the same locked design at once and
//! takes the first decisive answer — standard practice for SAT-style
//! workloads where attack runtimes vary by orders of magnitude. The naive
//! version is nondeterministic: whichever attack wins the wall-clock race
//! determines the verdict. This module pins the semantics down so the
//! parallel run is *byte-identical* to a sequential one:
//!
//! * Members are listed in **priority order** (index 0 strongest claim).
//! * A member **resolves** when it produces a decisive break — a recovered
//!   key, a successful point-function removal, or a feasible bypass.
//!   Timeouts, infeasibility and foiled analyses do not resolve.
//! * The **winner** is the lowest-index member that resolved. Members at
//!   higher indices are cancelled as soon as a lower one resolves and are
//!   always normalized to [`MemberOutcome::Skipped`] in the verdict — even
//!   if they happened to finish first on this particular schedule.
//! * Members at indices *below* the winner are never cancelled by the
//!   coordinator; their natural outcomes appear in the verdict.
//!
//! Under those rules the verdict depends only on the member outcomes, not
//! on scheduling, so [`portfolio_attack`] (any thread count) and
//! [`portfolio_attack_sequential`] agree bit-for-bit on
//! [`PortfolioVerdict::canonical`] — which is what the determinism suite
//! asserts. Wall-clock fields (`elapsed`) are excluded from the canonical
//! form; callers that want determinism must also budget members by
//! iteration counts, not timeouts.

use crate::bmc_attack::{bmc_attack, BmcConfig};
use crate::bypass::{bypass_estimate, BypassEstimate};
use crate::dip::{sat_attack_parallel, DipConfig};
use crate::removal::{removal_attack, RemovalOutcome};
use crate::sat_attack::{sat_attack, AttackConfig, AttackOutcome};
use rtlock_artifacts::ArtifactStore;
use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use rtlock_netlist::Netlist;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One attack in the portfolio, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioMember {
    /// Oracle-guided SAT attack on the combinational scan view.
    Sat,
    /// Oracle-guided BMC attack on the sequential surface.
    Bmc,
    /// SPS removal analysis on the combinational scan view.
    Removal,
    /// Bypass feasibility estimate on the combinational scan view.
    Bypass,
}

impl PortfolioMember {
    /// Stable lower-case name used in the canonical verdict form.
    pub fn name(&self) -> &'static str {
        match self {
            PortfolioMember::Sat => "sat",
            PortfolioMember::Bmc => "bmc",
            PortfolioMember::Removal => "removal",
            PortfolioMember::Bypass => "bypass",
        }
    }
}

/// The attack surfaces a portfolio run can reach. Mirrors
/// `AttackSurface` in the core flow: scan access yields combinational
/// views, locked scan leaves only the sequential netlists.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioTarget<'a> {
    /// Combinational full-scan views `(locked, original)`, if scan access
    /// is available.
    pub comb: Option<(&'a Netlist, &'a Netlist)>,
    /// Sequential netlists `(locked, original)` for BMC, if available.
    pub seq: Option<(&'a Netlist, &'a Netlist)>,
}

/// Portfolio configuration: member list (priority order) plus per-member
/// budgets. For deterministic verdicts budget by iterations, not wall
/// clock.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Members to race, strongest claim first.
    pub members: Vec<PortfolioMember>,
    /// SAT attack limits. Its `cancel` field is overridden by the
    /// portfolio's per-member child token.
    pub sat: AttackConfig,
    /// BMC attack limits. Its `cancel` field is likewise overridden.
    pub bmc: BmcConfig,
    /// Simulation rounds (×64 patterns) for removal and bypass analyses.
    pub sim_samples: usize,
    /// Skew threshold for removal candidate selection.
    pub skew_threshold: f64,
    /// Residual error tolerated by a removal "recovery".
    pub removal_tolerance: f64,
    /// Seed for the simulation-based members.
    pub seed: u64,
    /// Artifact cache handed to members that encode CNF (currently the
    /// SAT attack, unless its own `sat.cache` is already set). Verdicts
    /// are byte-identical with or without it.
    pub cache: Option<Arc<ArtifactStore>>,
    /// When set, the SAT member runs the parallel DIP pipeline
    /// ([`sat_attack_parallel`]) under this configuration instead of the
    /// sequential loop. The pipeline is deterministic for a fixed
    /// configuration, so the portfolio's canonical-verdict guarantee is
    /// unchanged — but the pipeline's outcome (iterations, counters) is a
    /// different deterministic point than the sequential attack's.
    pub dip: Option<DipConfig>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            members: vec![
                PortfolioMember::Sat,
                PortfolioMember::Bmc,
                PortfolioMember::Removal,
                PortfolioMember::Bypass,
            ],
            sat: AttackConfig::default(),
            bmc: BmcConfig::default(),
            sim_samples: 8,
            skew_threshold: 0.45,
            removal_tolerance: 0.0,
            seed: 0xD15_EA5E,
            cache: None,
            dip: None,
        }
    }
}

/// What one portfolio member reported.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberOutcome {
    /// A SAT or BMC attack outcome.
    Attack(AttackOutcome),
    /// A removal analysis outcome.
    Removal(RemovalOutcome),
    /// A bypass feasibility estimate.
    Bypass(BypassEstimate),
    /// The surface this member needs is not part of the target.
    Unavailable(String),
    /// Cancelled (or never started) because a higher-priority member
    /// resolved first. Always reported for members after the winner,
    /// regardless of how far they actually got on this schedule.
    Skipped,
    /// The member panicked inside the worker pool.
    Crashed(String),
    /// The member's outcome was replayed from a campaign journal instead
    /// of re-executed ([`portfolio_attack_resumable`]). Carries the
    /// original outcome's exact canonical rendering plus the two facts
    /// the verdict assembly needs, so a resumed run is byte-identical to
    /// the uninterrupted one.
    Replayed(ReplayedMember),
}

/// A journal-recovered member outcome (see [`MemberOutcome::Replayed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedMember {
    /// The original outcome's [`MemberOutcome::canonical`] text, printed
    /// verbatim in the resumed verdict.
    pub rendered: String,
    /// Whether the original outcome resolved (decisive break).
    pub resolved: bool,
    /// The recovered key, when the original outcome produced one.
    pub key: Option<Vec<bool>>,
}

impl MemberOutcome {
    /// The canonical text rendering used inside
    /// [`PortfolioVerdict::canonical`] — wall-clock free, stable, and the
    /// exact string a journal must store to replay this outcome.
    pub fn canonical(&self) -> String {
        canonical_outcome(self)
    }

    /// Whether this outcome is a decisive break (see the module docs).
    pub fn resolves(&self) -> bool {
        resolves(self)
    }

    /// The recovered key, when this outcome carries one.
    pub fn recovered_key(&self) -> Option<Vec<bool>> {
        outcome_key(self)
    }

    /// Retry classification, mirroring [`AttackOutcome::error_class`]:
    /// a crashed member is `Transient` (the panic is captured, a retry
    /// may succeed), attack outcomes delegate to their own
    /// classification, and everything else — analyses that ran to
    /// completion, unavailable surfaces, skips, replays — is definitive.
    pub fn error_class(&self) -> Option<rtlock_store::ErrorClass> {
        match self {
            MemberOutcome::Attack(o) => o.error_class(),
            MemberOutcome::Crashed(_) => Some(rtlock_store::ErrorClass::Transient),
            MemberOutcome::Removal(_)
            | MemberOutcome::Bypass(_)
            | MemberOutcome::Unavailable(_)
            | MemberOutcome::Skipped
            | MemberOutcome::Replayed(_) => None,
        }
    }
}

/// The combined, scheduling-independent result of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioVerdict {
    /// Index (into `outcomes`) of the lowest-priority-number member that
    /// resolved, if any.
    pub winner: Option<usize>,
    /// Whether the design was broken (some member resolved).
    pub broken: bool,
    /// The recovered key, when the winner produced one.
    pub key: Option<Vec<bool>>,
    /// Per-member outcomes in priority order, losers normalized to
    /// [`MemberOutcome::Skipped`].
    pub outcomes: Vec<(PortfolioMember, MemberOutcome)>,
}

impl PortfolioVerdict {
    /// A canonical text rendering excluding every wall-clock field, so two
    /// runs with identical member outcomes serialize identically no matter
    /// how they were scheduled.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        match self.winner {
            Some(w) => {
                let _ = writeln!(s, "winner: {} ({})", w, self.outcomes[w].0.name());
            }
            None => s.push_str("winner: none\n"),
        }
        let _ = writeln!(s, "broken: {}", self.broken);
        match &self.key {
            Some(k) => {
                let _ = writeln!(s, "key: {}", bits(k));
            }
            None => s.push_str("key: -\n"),
        }
        for (m, o) in &self.outcomes {
            let _ = writeln!(s, "{}: {}", m.name(), canonical_outcome(o));
        }
        s
    }
}

fn bits(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn canonical_outcome(o: &MemberOutcome) -> String {
    match o {
        // Attack outcomes render through [`AttackOutcome::canonical`],
        // which surfaces the deterministic counters (oracle queries,
        // simulated patterns, accepted/rejected DIPs) and excludes every
        // wall-clock field by construction.
        MemberOutcome::Attack(a) => a.canonical(),
        MemberOutcome::Removal(RemovalOutcome::Recovered { gate, error_rate }) => {
            format!("removal-recovered(gate={}, error_rate={error_rate:.6})", gate.index())
        }
        MemberOutcome::Removal(RemovalOutcome::Foiled { tried, best_error_rate }) => {
            format!("removal-foiled(tried={tried}, best_error_rate={best_error_rate:.6})")
        }
        MemberOutcome::Bypass(est) => format!(
            "bypass(corrupted_fraction={:.6}, feasible={})",
            est.corrupted_fraction, est.feasible
        ),
        MemberOutcome::Unavailable(reason) => format!("unavailable({reason})"),
        MemberOutcome::Skipped => "skipped".into(),
        MemberOutcome::Crashed(msg) => format!("crashed({msg})"),
        // Verbatim: the stored text IS the original rendering, which is
        // what makes a resumed verdict byte-identical.
        MemberOutcome::Replayed(r) => r.rendered.clone(),
    }
}

/// Whether an outcome is a decisive break (see the module docs).
fn resolves(o: &MemberOutcome) -> bool {
    match o {
        MemberOutcome::Attack(AttackOutcome::KeyFound { .. }) => true,
        MemberOutcome::Removal(RemovalOutcome::Recovered { .. }) => true,
        MemberOutcome::Bypass(est) => est.feasible,
        MemberOutcome::Replayed(r) => r.resolved,
        _ => false,
    }
}

fn outcome_key(o: &MemberOutcome) -> Option<Vec<bool>> {
    match o {
        MemberOutcome::Attack(AttackOutcome::KeyFound { key, .. }) => Some(key.clone()),
        MemberOutcome::Replayed(r) => r.key.clone(),
        _ => None,
    }
}

/// Runs one member to its natural completion under `token`.
fn run_member(
    member: PortfolioMember,
    target: &PortfolioTarget<'_>,
    config: &PortfolioConfig,
    token: &CancelToken,
) -> MemberOutcome {
    match member {
        PortfolioMember::Sat => match target.comb {
            Some((locked, original)) => {
                let cfg = AttackConfig {
                    cancel: Some(token.clone()),
                    cache: config.sat.cache.clone().or_else(|| config.cache.clone()),
                    ..config.sat.clone()
                };
                MemberOutcome::Attack(match &config.dip {
                    Some(dip) => sat_attack_parallel(locked, original, &cfg, dip),
                    None => sat_attack(locked, original, &cfg),
                })
            }
            None => MemberOutcome::Unavailable("no combinational scan view".into()),
        },
        PortfolioMember::Bmc => match target.seq {
            Some((locked, original)) => {
                let cfg = BmcConfig { cancel: Some(token.clone()), ..config.bmc.clone() };
                MemberOutcome::Attack(bmc_attack(locked, original, &cfg))
            }
            None => MemberOutcome::Unavailable("no sequential surface".into()),
        },
        PortfolioMember::Removal => match target.comb {
            Some((locked, original)) => MemberOutcome::Removal(removal_attack(
                locked,
                original,
                config.skew_threshold,
                config.removal_tolerance,
                config.sim_samples,
                config.seed,
            )),
            None => MemberOutcome::Unavailable("no combinational scan view".into()),
        },
        PortfolioMember::Bypass => match target.comb {
            Some((locked, original)) => {
                if locked.key_inputs.is_empty() {
                    return MemberOutcome::Unavailable("no key inputs".into());
                }
                let wrong_key = vec![false; locked.key_inputs.len()];
                MemberOutcome::Bypass(bypass_estimate(
                    locked,
                    original,
                    &wrong_key,
                    config.sim_samples,
                    config.seed,
                ))
            }
            None => MemberOutcome::Unavailable("no combinational scan view".into()),
        },
    }
}

fn assemble_verdict(
    members: &[PortfolioMember],
    mut outcomes: Vec<MemberOutcome>,
    winner: Option<usize>,
) -> PortfolioVerdict {
    if let Some(w) = winner {
        for o in outcomes.iter_mut().skip(w + 1) {
            *o = MemberOutcome::Skipped;
        }
    }
    let key = winner.and_then(|w| outcome_key(&outcomes[w]));
    PortfolioVerdict {
        winner,
        broken: winner.is_some(),
        key,
        outcomes: members.iter().copied().zip(outcomes).collect(),
    }
}

/// Races every member of `config.members` on `executor`, cancelling lower
/// priority members once a higher one resolves. The verdict is identical
/// to [`portfolio_attack_sequential`] for any executor size (see the
/// module docs for the exact guarantee).
pub fn portfolio_attack(
    target: &PortfolioTarget<'_>,
    config: &PortfolioConfig,
    executor: &Executor,
    token: &CancelToken,
) -> PortfolioVerdict {
    let n = config.members.len();
    // Each member gets a child token: the coordinator can cancel it
    // individually, while a fired run-wide `token` still reaches everyone.
    let children: Vec<CancelToken> = (0..n).map(|_| token.child()).collect();
    let slots: Vec<Mutex<Option<MemberOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let best: Mutex<Option<usize>> = Mutex::new(None);

    let ((), panics) = executor.scope(token, |scope| {
        for (i, &member) in config.members.iter().enumerate() {
            let (children, slots, best) = (&children, &slots, &best);
            scope.spawn(move |_| {
                let outcome = run_member(member, target, config, &children[i]);
                if resolves(&outcome) {
                    let mut b = best.lock().expect("portfolio winner lock");
                    if b.is_none_or(|w| i < w) {
                        *b = Some(i);
                        // Losers (lower priority than the new winner) stop
                        // now; members above the winner keep running.
                        for t in &children[i + 1..] {
                            t.cancel();
                        }
                    }
                }
                *slots[i].lock().expect("portfolio slot lock") = Some(outcome);
            });
        }
    });

    let mut panic_messages = panics.into_iter().map(|p| p.message);
    let outcomes: Vec<MemberOutcome> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("portfolio slot lock").unwrap_or_else(|| {
                MemberOutcome::Crashed(
                    panic_messages.next().unwrap_or_else(|| "member did not report".into()),
                )
            })
        })
        .collect();
    let winner = best.into_inner().expect("portfolio winner lock");
    assemble_verdict(&config.members, outcomes, winner)
}

/// Resumes a portfolio run from a campaign journal: members whose
/// outcomes were journaled before the crash are replayed verbatim
/// (`prior[i] = Some(..)`, aligned with `config.members`), only the rest
/// re-execute. The verdict's [`PortfolioVerdict::canonical`] form is
/// byte-identical to an uninterrupted [`portfolio_attack`] run — replayed
/// members print their stored rendering, re-executed members their fresh
/// (deterministic) one, and the winner/skip normalization is the same.
///
/// # Panics
///
/// Panics when `prior.len()` differs from `config.members.len()`.
pub fn portfolio_attack_resumable(
    target: &PortfolioTarget<'_>,
    config: &PortfolioConfig,
    executor: &Executor,
    token: &CancelToken,
    prior: &[Option<ReplayedMember>],
) -> PortfolioVerdict {
    assert_eq!(prior.len(), config.members.len(), "prior outcomes misaligned with members");
    let n = config.members.len();
    let children: Vec<CancelToken> = (0..n).map(|_| token.child()).collect();
    let slots: Vec<Mutex<Option<MemberOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // A replayed resolution seeds the race: members below it still run to
    // their natural outcomes (they were never cancelled in the original
    // schedule either), members above it are cancelled up front.
    let pre_winner =
        prior.iter().position(|p| p.as_ref().is_some_and(|r| r.resolved));
    if let Some(w) = pre_winner {
        for t in &children[w + 1..] {
            t.cancel();
        }
    }
    let best: Mutex<Option<usize>> = Mutex::new(pre_winner);

    let ((), panics) = executor.scope(token, |scope| {
        for (i, &member) in config.members.iter().enumerate() {
            if let Some(replay) = &prior[i] {
                *slots[i].lock().expect("portfolio slot lock") =
                    Some(MemberOutcome::Replayed(replay.clone()));
                continue;
            }
            let (children, slots, best) = (&children, &slots, &best);
            scope.spawn(move |_| {
                let outcome = run_member(member, target, config, &children[i]);
                if resolves(&outcome) {
                    let mut b = best.lock().expect("portfolio winner lock");
                    if b.is_none_or(|w| i < w) {
                        *b = Some(i);
                        for t in &children[i + 1..] {
                            t.cancel();
                        }
                    }
                }
                *slots[i].lock().expect("portfolio slot lock") = Some(outcome);
            });
        }
    });

    let mut panic_messages = panics.into_iter().map(|p| p.message);
    let outcomes: Vec<MemberOutcome> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("portfolio slot lock").unwrap_or_else(|| {
                MemberOutcome::Crashed(
                    panic_messages.next().unwrap_or_else(|| "member did not report".into()),
                )
            })
        })
        .collect();
    let winner = best.into_inner().expect("portfolio winner lock");
    assemble_verdict(&config.members, outcomes, winner)
}

/// The sequential twin of [`portfolio_attack`]: runs members in priority
/// order and stops at the first resolution. Canonically identical to the
/// parallel run — the determinism suite diffs the two.
pub fn portfolio_attack_sequential(
    target: &PortfolioTarget<'_>,
    config: &PortfolioConfig,
    token: &CancelToken,
) -> PortfolioVerdict {
    let mut outcomes = Vec::with_capacity(config.members.len());
    let mut winner = None;
    for (i, &member) in config.members.iter().enumerate() {
        if winner.is_some() {
            outcomes.push(MemberOutcome::Skipped);
            continue;
        }
        let outcome = run_member(member, target, config, &token.child());
        if resolves(&outcome) {
            winner = Some(i);
        }
        outcomes.push(outcome);
    }
    assemble_verdict(&config.members, outcomes, winner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::GateKind;

    /// y = (a & b) ^ (c | d) locked with two XOR/XNOR key gates — breakable
    /// by the SAT attack, foiled removal, infeasible bypass.
    fn comb_pair(key: &[bool]) -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let c = orig.add_input("c");
        let d = orig.add_input("d");
        let ab = orig.add_gate(GateKind::And, vec![a, b]);
        let cd = orig.add_gate(GateKind::Or, vec![c, d]);
        let y = orig.add_gate(GateKind::Xor, vec![ab, cd]);
        orig.add_output("y", y);

        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let c = locked.add_input("c");
        let d = locked.add_input("d");
        let k0 = locked.add_input("keyinput0");
        locked.mark_key_input(k0);
        let k1 = locked.add_input("keyinput1");
        locked.mark_key_input(k1);
        let ab = locked.add_gate(GateKind::And, vec![a, b]);
        let ab_l = if key[0] {
            locked.add_gate(GateKind::Xnor, vec![ab, k0])
        } else {
            locked.add_gate(GateKind::Xor, vec![ab, k0])
        };
        let cd = locked.add_gate(GateKind::Or, vec![c, d]);
        let cd_l = if key[1] {
            locked.add_gate(GateKind::Xnor, vec![cd, k1])
        } else {
            locked.add_gate(GateKind::Xor, vec![cd, k1])
        };
        let y = locked.add_gate(GateKind::Xor, vec![ab_l, cd_l]);
        locked.add_output("y", y);
        (locked, orig)
    }

    fn quick_config() -> PortfolioConfig {
        PortfolioConfig {
            sat: AttackConfig { max_iterations: 1_000, ..AttackConfig::default() },
            sim_samples: 4,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn sat_wins_on_a_breakable_combinational_target() {
        let (locked, orig) = comb_pair(&[true, false]);
        let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
        let cfg = quick_config();
        let verdict =
            portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited());
        assert!(verdict.broken);
        assert_eq!(verdict.winner, Some(0));
        // The two-XOR locking admits complement key pairs, so check the
        // recovered key functionally instead of bit-for-bit.
        let key = verdict.key.as_deref().expect("winner recovered a key");
        assert_eq!(crate::sat_attack::key_accuracy(&locked, &orig, key, 64, 7), 1.0);
        // Everything after the winner is skipped.
        for (_, o) in &verdict.outcomes[1..] {
            assert_eq!(*o, MemberOutcome::Skipped);
        }
    }

    #[test]
    fn parallel_matches_sequential_at_every_thread_count() {
        let (locked, orig) = comb_pair(&[false, true]);
        let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
        let cfg = quick_config();
        let reference =
            portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited()).canonical();
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let verdict = portfolio_attack(&target, &cfg, &exec, &CancelToken::unlimited());
            assert_eq!(verdict.canonical(), reference, "threads={threads}");
        }
    }

    #[test]
    fn no_surface_means_nothing_resolves() {
        let target = PortfolioTarget { comb: None, seq: None };
        let cfg = quick_config();
        let verdict = portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited());
        assert!(!verdict.broken);
        assert_eq!(verdict.winner, None);
        assert!(verdict
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, MemberOutcome::Unavailable(_))));
    }

    #[test]
    fn run_wide_cancellation_reaches_every_member() {
        // Key [true, false]: the all-false bypass probe key fully corrupts
        // the output, so no simulation-only member can trivially resolve.
        let (locked, orig) = comb_pair(&[true, false]);
        let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
        let cfg = quick_config();
        let token = CancelToken::unlimited();
        token.cancel();
        let exec = Executor::new(4);
        let verdict = portfolio_attack(&target, &cfg, &exec, &token);
        assert!(!verdict.broken, "cancelled run must not claim a break: {verdict:?}");
        assert!(matches!(
            verdict.outcomes[0].1,
            MemberOutcome::Attack(AttackOutcome::TimedOut { .. })
        ));
    }

    #[test]
    fn resumed_portfolio_is_byte_identical_to_uninterrupted() {
        let (locked, orig) = comb_pair(&[true, false]);
        let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
        let cfg = quick_config();
        let exec = Executor::new(4);
        let reference = portfolio_attack(&target, &cfg, &exec, &CancelToken::unlimited());

        // Replay each completed prefix of the reference run — as a crash
        // after k journaled members would leave it — and resume the rest.
        for completed in 0..=cfg.members.len() {
            let prior: Vec<Option<ReplayedMember>> = reference
                .outcomes
                .iter()
                .enumerate()
                .map(|(i, (_, o))| {
                    // Skipped members were never journaled as finished.
                    if i < completed && !matches!(o, MemberOutcome::Skipped) {
                        Some(ReplayedMember {
                            rendered: o.canonical(),
                            resolved: o.resolves(),
                            key: o.recovered_key(),
                        })
                    } else {
                        None
                    }
                })
                .collect();
            let resumed =
                portfolio_attack_resumable(&target, &cfg, &exec, &CancelToken::unlimited(), &prior);
            assert_eq!(
                resumed.canonical(),
                reference.canonical(),
                "resume after {completed} journaled members"
            );
            assert_eq!(resumed.key, reference.key);
        }
    }

    #[test]
    fn outcome_classification_is_consistent_across_members() {
        use rtlock_store::ErrorClass;
        let timed = MemberOutcome::Attack(AttackOutcome::TimedOut {
            iterations: 3,
            elapsed: std::time::Duration::ZERO,
            stats: crate::sat_attack::AttackStats::default(),
        });
        assert_eq!(timed.error_class(), Some(ErrorClass::Transient));
        let err = MemberOutcome::Attack(AttackOutcome::Error { reason: "model hole".into() });
        assert_eq!(err.error_class(), Some(ErrorClass::Permanent), "never retried");
        let crashed = MemberOutcome::Crashed("worker panic".into());
        assert_eq!(crashed.error_class(), Some(ErrorClass::Transient));
        let infeasible =
            MemberOutcome::Attack(AttackOutcome::Infeasible { reason: "no key inputs".into() });
        assert_eq!(infeasible.error_class(), None, "definitive verdict about the target");
        assert_eq!(MemberOutcome::Skipped.error_class(), None);
    }

    #[test]
    fn canonical_form_contains_no_wall_clock() {
        let (locked, orig) = comb_pair(&[true, false]);
        let target = PortfolioTarget { comb: Some((&locked, &orig)), seq: None };
        let cfg = quick_config();
        let verdict = portfolio_attack_sequential(&target, &cfg, &CancelToken::unlimited());
        let canon = verdict.canonical();
        assert!(!canon.contains("elapsed"), "{canon}");
        assert!(canon.starts_with("winner: "), "{canon}");
    }
}
