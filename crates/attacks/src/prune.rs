//! Dataflow-guided SAT key-space pruning (divide-and-conquer) and
//! taint-justified removal candidates.
//!
//! The `rtlock-dataflow` key-taint fixpoint partitions the key bits by
//! the observation points they can influence: bits in different
//! partitions never co-taint an output, so their key constraints are
//! independent and the SAT attack can solve each partition against its
//! own output slice — `2^(a+b)` key space becomes `2^a + 2^b`. Bits that
//! taint no observable net at all are *prunable*: no oracle query can
//! constrain them, so any value is functionally correct and the attack
//! fixes them without a single solver call.
//!
//! The same analysis justifies removal candidates: every gate tainted by
//! a prunable key bit sits in a cone no output or scan cell observes, so
//! cutting the whole cone provably preserves observable behavior — a
//! structural counterpart to the probabilistic SPS analysis in
//! [`crate::removal`].

use crate::sat_attack::{sat_attack, AttackConfig, AttackOutcome, AttackStats};
use rtlock_dataflow::analyze_netlist;
use rtlock_netlist::{GateId, Netlist};
use std::time::Duration;

/// Result of a dataflow-pruned SAT attack.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedAttack {
    /// The merged attack verdict. [`AttackOutcome::KeyFound`] carries the
    /// full-width key (pruned bits hardwired to `false`) and the summed
    /// iteration/elapsed totals across partitions.
    pub outcome: AttackOutcome,
    /// Key-bit partitions attacked independently (taint-disjoint at every
    /// observation point), each sorted ascending.
    pub partitions: Vec<Vec<usize>>,
    /// Key bits fixed without solving: no output- or scan-observable net
    /// depends on them.
    pub pruned_bits: Vec<usize>,
}

/// Runs the SAT attack with dataflow pruning: prunable key bits are fixed
/// for free, and each taint partition is attacked against only the
/// outputs it can influence (other partitions hardwired to `false`).
///
/// Falls back to the plain [`sat_attack`] when the analysis finds a
/// single partition and nothing prunable — the pruned attack is then
/// byte-for-byte the unpruned one. Soundness of the split: an output
/// untainted by a key bit is provably independent of it, so constraining
/// a partition's bits only needs the outputs that partition taints, and
/// the other partitions' values cannot matter there.
pub fn sat_attack_pruned(
    locked: &Netlist,
    original: &Netlist,
    config: &AttackConfig,
) -> PrunedAttack {
    if locked.key_inputs.is_empty() || !locked.dffs().is_empty() {
        // Let the plain attack produce its own Infeasible verdict.
        return PrunedAttack {
            outcome: sat_attack(locked, original, config),
            partitions: Vec::new(),
            pruned_bits: Vec::new(),
        };
    }
    let analysis = analyze_netlist(locked);
    let pruned_bits = analysis.prunable_keys.clone();
    let partitions: Vec<Vec<usize>> = analysis
        .partitions
        .iter()
        .map(|p| p.iter().copied().filter(|b| !pruned_bits.contains(b)).collect::<Vec<usize>>())
        .filter(|p| !p.is_empty())
        .collect();

    if partitions.len() <= 1 && pruned_bits.is_empty() {
        return PrunedAttack {
            outcome: sat_attack(locked, original, config),
            partitions,
            pruned_bits,
        };
    }

    let mut key = vec![false; locked.key_inputs.len()];
    let mut iterations = 0usize;
    let mut elapsed = Duration::ZERO;
    let mut stats = AttackStats::default();
    for part in &partitions {
        // Restrict to this partition: hardwire every other key bit (the
        // kept outputs are independent of them) and keep only outputs the
        // partition taints. Gate ids stay stable until the final sweep,
        // so the analysis's taint rows remain valid while filtering.
        let mut sub = locked.clone();
        let kins = sub.key_inputs.clone();
        for (bit, &kg) in kins.iter().enumerate() {
            if !part.contains(&bit) {
                sub.convert_input_to_const(kg, false);
            }
        }
        sub.retain_outputs(|_, drv| part.iter().any(|&b| analysis.is_tainted_by(drv, b)));
        sub.sweep_dead();
        match sat_attack(&sub, original, config) {
            AttackOutcome::KeyFound { key: sub_key, iterations: it, elapsed: el, stats: st } => {
                for (&bit, &v) in part.iter().zip(&sub_key) {
                    key[bit] = v;
                }
                iterations += it;
                elapsed += el;
                stats.absorb(&st);
            }
            AttackOutcome::TimedOut { iterations: it, elapsed: el, stats: st } => {
                stats.absorb(&st);
                return PrunedAttack {
                    outcome: AttackOutcome::TimedOut {
                        iterations: iterations + it,
                        elapsed: elapsed + el,
                        stats,
                    },
                    partitions,
                    pruned_bits,
                };
            }
            other => {
                return PrunedAttack { outcome: other, partitions, pruned_bits };
            }
        }
    }
    PrunedAttack {
        outcome: AttackOutcome::KeyFound { key, iterations, elapsed, stats },
        partitions,
        pruned_bits,
    }
}

/// One taint-justified removal candidate: a key bit no observation point
/// depends on, together with its full tainted cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovalJustification {
    /// The prunable key bit (index into `key_inputs`).
    pub key_bit: usize,
    /// The key input gate itself.
    pub key_input: GateId,
    /// Every gate the bit taints (the removable cone), sorted by id. None
    /// of these reach an output or a scan cell, so deleting the cone and
    /// the key input preserves all observable behavior.
    pub cone: Vec<GateId>,
}

/// Lists removal candidates the key-taint fixpoint *proves* safe: for
/// each prunable key bit, the gates it taints form a cone invisible to
/// every output and scan cell. Unlike the probabilistic skew analysis in
/// [`crate::removal`], these candidates need no oracle validation — the
/// justification is the absence of any observable taint path.
pub fn dataflow_removal_candidates(locked: &Netlist) -> Vec<RemovalJustification> {
    let analysis = analyze_netlist(locked);
    analysis
        .prunable_keys
        .iter()
        .map(|&bit| RemovalJustification {
            key_bit: bit,
            key_input: locked.key_inputs[bit],
            cone: locked.ids().filter(|&g| analysis.is_tainted_by(g, bit)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat_attack::key_accuracy;
    use rtlock_netlist::GateKind;

    /// Two key bits locking disjoint output cones, plus one dangling key
    /// bit whose cone feeds nothing.
    fn partitioned_locked() -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let c = orig.add_input("c");
        let y0 = orig.add_gate(GateKind::And, vec![a, b]);
        let y1 = orig.add_gate(GateKind::Or, vec![b, c]);
        orig.add_output("y0", y0);
        orig.add_output("y1", y1);

        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let c = locked.add_input("c");
        let keys: Vec<_> = (0..3)
            .map(|i| {
                let k = locked.add_input(format!("keyinput{i}"));
                locked.mark_key_input(k);
                k
            })
            .collect();
        let g0 = locked.add_gate(GateKind::And, vec![a, b]);
        let y0 = locked.add_gate(GateKind::Xnor, vec![g0, keys[0]]); // correct key bit 0 = 1
        let g1 = locked.add_gate(GateKind::Or, vec![b, c]);
        let y1 = locked.add_gate(GateKind::Xor, vec![g1, keys[1]]); // correct key bit 1 = 0
        // Dangling cone: key bit 2 taints a gate nothing reads.
        let _dead = locked.add_gate(GateKind::Xor, vec![a, keys[2]]);
        locked.add_output("y0", y0);
        locked.add_output("y1", y1);
        (locked, orig)
    }

    #[test]
    fn pruned_attack_splits_partitions_and_fixes_dangling_bits() {
        let (locked, orig) = partitioned_locked();
        let out = sat_attack_pruned(&locked, &orig, &AttackConfig::default());
        assert_eq!(out.pruned_bits, vec![2], "dangling bit pruned");
        assert_eq!(out.partitions, vec![vec![0], vec![1]], "disjoint cones split");
        match &out.outcome {
            AttackOutcome::KeyFound { key, .. } => {
                assert_eq!(key.len(), 3);
                assert_eq!(
                    key_accuracy(&locked, &orig, key, 64, 11),
                    1.0,
                    "merged key is functionally correct: {key:?}"
                );
            }
            other => panic!("expected a key, got {other:?}"),
        }
    }

    #[test]
    fn single_partition_falls_back_to_the_plain_attack() {
        // One key bit entangled with the only output: nothing to split.
        let mut orig = Netlist::new("o");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let g = orig.add_gate(GateKind::And, vec![a, b]);
        orig.add_output("y", g);
        let mut locked = Netlist::new("l");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_input("keyinput0");
        locked.mark_key_input(k);
        let g = locked.add_gate(GateKind::And, vec![a, b]);
        let y = locked.add_gate(GateKind::Xor, vec![g, k]);
        locked.add_output("y", y);
        let pruned = sat_attack_pruned(&locked, &orig, &AttackConfig::default());
        let plain = sat_attack(&locked, &orig, &AttackConfig::default());
        assert!(pruned.pruned_bits.is_empty());
        assert_eq!(pruned.partitions.len(), 1);
        match (&pruned.outcome, &plain) {
            (
                AttackOutcome::KeyFound { key: kp, .. },
                AttackOutcome::KeyFound { key: ku, .. },
            ) => assert_eq!(kp, ku),
            other => panic!("expected keys from both, got {other:?}"),
        }
    }

    #[test]
    fn removal_candidates_cover_exactly_the_unobservable_cones() {
        let (locked, _) = partitioned_locked();
        let just = dataflow_removal_candidates(&locked);
        assert_eq!(just.len(), 1);
        assert_eq!(just[0].key_bit, 2);
        assert_eq!(just[0].key_input, locked.key_inputs[2]);
        // The cone is the key input plus the dangling XOR; no logic in it
        // reaches an output (the key input itself is a primary input, and
        // those are live by definition).
        let live = locked.live_set();
        for &g in &just[0].cone {
            if g == just[0].key_input {
                continue;
            }
            assert!(!live[g.index()], "justified cone gate {g} is observable");
        }
        assert_eq!(just[0].cone.len(), 2, "key input + dangling XOR");
    }
}
