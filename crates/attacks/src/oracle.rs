//! Oracles for the oracle-guided threat model.
//!
//! An oracle is an *activated working chip*: the attacker can apply inputs
//! and observe outputs, but cannot see internals. [`CombOracle`] models
//! combinational (scan-accessible) query access; [`SeqOracle`] models
//! normal functional operation over clock cycles.

use rtlock_netlist::{NetSim, Netlist};
use std::collections::HashMap;

/// Combinational oracle backed by an unlocked netlist.
///
/// Queries are made by *input name* so that a locked netlist's inputs can
/// be matched against the oracle even when the locked design has extra
/// (key) inputs or different input ordering.
#[derive(Debug, Clone)]
pub struct CombOracle<'n> {
    netlist: &'n Netlist,
    sim: NetSim<'n>,
    input_index: HashMap<String, rtlock_netlist::GateId>,
    output_index: HashMap<String, usize>,
}

impl<'n> CombOracle<'n> {
    /// Wraps an unlocked combinational netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle.
    pub fn new(netlist: &'n Netlist) -> Self {
        let input_index = netlist
            .inputs()
            .iter()
            .filter_map(|&g| netlist.gate_name(g).map(|n| (n.to_owned(), g)))
            .collect();
        // First writer wins so `output_position` agrees with a linear
        // first-match scan over the output list.
        let mut output_index = HashMap::new();
        for (i, (name, _)) in netlist.outputs().iter().enumerate() {
            output_index.entry(name.clone()).or_insert(i);
        }
        let sim = NetSim::new(netlist).expect("oracle netlist is acyclic");
        CombOracle { netlist, sim, input_index, output_index }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// `true` if the oracle has an input with this name.
    pub fn has_input(&self, name: &str) -> bool {
        self.input_index.contains_key(name)
    }

    /// The oracle-side gate id of a named input, for the index-based
    /// query paths. Resolve once, query many times — this is what removes
    /// the per-DIP name rescan from the attack loop.
    pub fn input_id(&self, name: &str) -> Option<rtlock_netlist::GateId> {
        self.input_index.get(name).copied()
    }

    /// Position of a named output in the oracle's answer vectors (the
    /// first output with that name, matching a linear scan).
    pub fn output_position(&self, name: &str) -> Option<usize> {
        self.output_index.get(name).copied()
    }

    /// Number of oracle outputs (the length of every answer vector).
    pub fn num_outputs(&self) -> usize {
        self.netlist.outputs().len()
    }

    /// Applies named input values and returns `(output name, value)` pairs
    /// in the oracle netlist's output order. Unlisted inputs read 0.
    ///
    /// # Panics
    ///
    /// Panics if a named input does not exist.
    pub fn query(&mut self, inputs: &[(String, bool)]) -> Vec<(String, bool)> {
        for &g in self.netlist.inputs() {
            self.sim.set_input(g, 0);
        }
        for (name, val) in inputs {
            let g = *self
                .input_index
                .get(name)
                .unwrap_or_else(|| panic!("oracle has no input `{name}`"));
            self.sim.set_input(g, if *val { u64::MAX } else { 0 });
        }
        self.sim.eval_comb();
        self.netlist
            .outputs()
            .iter()
            .map(|(n, g)| (n.clone(), self.sim.value(*g) & 1 == 1))
            .collect()
    }

    /// Index-based single query: applies `(input id, value)` assignments
    /// (ids from [`CombOracle::input_id`]) and returns one bool per
    /// output, in output order ([`CombOracle::output_position`] indexes
    /// into it). Unlisted inputs read 0. Produces exactly the values
    /// [`CombOracle::query`] would, without any string traffic.
    pub fn query_bits(&mut self, assigns: &[(rtlock_netlist::GateId, bool)]) -> Vec<bool> {
        for &g in self.netlist.inputs() {
            self.sim.set_input(g, 0);
        }
        for &(g, v) in assigns {
            self.sim.set_input(g, if v { u64::MAX } else { 0 });
        }
        self.sim.eval_comb();
        self.netlist.outputs().iter().map(|(_, g)| self.sim.value(*g) & 1 == 1).collect()
    }

    /// Batch query: 64 patterns per sweep, one per bit lane of each
    /// input's word. Returns one word per output in output order — lane
    /// `l` of output word `o` answers pattern `l`. Unlisted inputs read 0
    /// in every lane. One netlist evaluation serves all 64 patterns,
    /// which is what makes the bit-parallel DIP pre-filter cheaper than
    /// 64 scalar [`CombOracle::query`] calls.
    pub fn query64(&mut self, assigns: &[(rtlock_netlist::GateId, u64)]) -> Vec<u64> {
        for &g in self.netlist.inputs() {
            self.sim.set_input(g, 0);
        }
        self.sim.load_sweep(assigns);
        self.sim.eval_comb();
        self.sim.outputs()
    }
}

/// Sequential oracle: runs the unlocked netlist from reset over an input
/// trace and reports the outputs of every cycle.
#[derive(Debug, Clone)]
pub struct SeqOracle<'n> {
    netlist: &'n Netlist,
    input_index: HashMap<String, rtlock_netlist::GateId>,
}

impl<'n> SeqOracle<'n> {
    /// Wraps an unlocked sequential netlist.
    pub fn new(netlist: &'n Netlist) -> Self {
        let input_index = netlist
            .inputs()
            .iter()
            .filter_map(|&g| netlist.gate_name(g).map(|n| (n.to_owned(), g)))
            .collect();
        SeqOracle { netlist, input_index }
    }

    /// Runs the trace (one map of named input values per cycle) from reset
    /// and returns each cycle's named outputs.
    ///
    /// Outputs are sampled *before* the clock edge (Mealy convention:
    /// `out_t = λ(state_t, in_t)`), matching the time-frame expansion used
    /// by the BMC attack.
    ///
    /// Input names the oracle does not have (e.g. scan controls that exist
    /// only on the locked netlist) are ignored — the activated chip has no
    /// functional counterpart for them.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic.
    pub fn run(&self, trace: &[Vec<(String, bool)>]) -> Vec<Vec<(String, bool)>> {
        let mut sim = NetSim::new(self.netlist).expect("oracle netlist is acyclic");
        sim.reset();
        let mut out = Vec::with_capacity(trace.len());
        for cycle in trace {
            for &g in self.netlist.inputs() {
                sim.set_input(g, 0);
            }
            for (name, val) in cycle {
                if let Some(&g) = self.input_index.get(name) {
                    sim.set_input(g, if *val { u64::MAX } else { 0 });
                }
            }
            sim.eval_comb();
            out.push(
                self.netlist
                    .outputs()
                    .iter()
                    .map(|(n, g)| (n.clone(), sim.value(*g) & 1 == 1))
                    .collect(),
            );
            sim.step();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::{GateKind, Netlist};

    #[test]
    fn comb_oracle_answers_by_name() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output("y", g);
        let mut oracle = CombOracle::new(&n);
        let out = oracle.query(&[("a".into(), true), ("b".into(), false)]);
        assert_eq!(out, vec![("y".to_string(), true)]);
        let out = oracle.query(&[("b".into(), true), ("a".into(), true)]);
        assert!(!out[0].1);
    }

    #[test]
    fn unlisted_inputs_default_to_zero() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.add_output("y", a);
        let mut oracle = CombOracle::new(&n);
        assert!(!oracle.query(&[])[0].1);
    }

    #[test]
    fn query_bits_matches_named_query() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Xor, vec![a, b]);
        let h = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("y", g);
        n.add_output("z", h);
        let mut oracle = CombOracle::new(&n);
        let ia = oracle.input_id("a").unwrap();
        let ib = oracle.input_id("b").unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let named = oracle.query(&[("a".into(), va), ("b".into(), vb)]);
            let bits = oracle.query_bits(&[(ia, va), (ib, vb)]);
            for (i, (name, v)) in named.iter().enumerate() {
                assert_eq!(bits[i], *v);
                assert_eq!(oracle.output_position(name), Some(i));
            }
        }
    }

    #[test]
    fn query64_lanes_match_scalar_queries() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.add_gate(GateKind::Mux, vec![c, a, b]);
        n.add_output("y", x);
        let mut oracle = CombOracle::new(&n);
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|n| oracle.input_id(n).unwrap()).collect();
        let words = [0xDEAD_BEEF_0BAD_F00Du64, 0x0123_4567_89AB_CDEF, 0xAAAA_5555_FFFF_0000];
        let answers = oracle.query64(&[(ids[0], words[0]), (ids[1], words[1]), (ids[2], words[2])]);
        for lane in 0..64 {
            let assigns: Vec<_> =
                ids.iter().zip(&words).map(|(&g, &w)| (g, w >> lane & 1 == 1)).collect();
            let scalar = oracle.query_bits(&assigns);
            assert_eq!(answers[0] >> lane & 1 == 1, scalar[0], "lane {lane}");
        }
    }

    #[test]
    fn seq_oracle_runs_from_reset() {
        // 1-bit toggle when en=1.
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let q = n.add_gate(GateKind::Dff { init: false }, vec![en]);
        let x = n.add_gate(GateKind::Xor, vec![q, en]);
        n.gate_mut(q).fanin[0] = x;
        n.add_output("q", q);
        let oracle = SeqOracle::new(&n);
        let trace: Vec<Vec<(String, bool)>> =
            vec![vec![("en".into(), true)], vec![("en".into(), true)], vec![("en".into(), false)]];
        let outs = oracle.run(&trace);
        // Pre-edge sampling: q starts at 0, toggles after each en=1 cycle.
        assert!(!outs[0][0].1);
        assert!(outs[1][0].1);
        assert!(!outs[2][0].1);
    }
}
