//! Parallel DIP pipeline: bit-parallel oracle pre-filtering plus
//! multi-worker DIP mining with a deterministic merge.
//!
//! Three layers over the sequential [`crate::sat_attack`] loop:
//!
//! 1. **Bit-parallel pre-filter.** Before the first SAT call (and between
//!    rounds) the leader drives 64-lane [`NetSim`] sweeps — seeded random
//!    plus SCOAP-guided patterns biased into the fanin cones of the
//!    hardest-to-control nets — and batch-queries the oracle with
//!    [`CombOracle::query64`], 64 patterns per sweep. Only lanes on which
//!    some *surviving* candidate key disagrees with the oracle are
//!    encoded as I/O constraints; every accepted lane also kills the
//!    candidates it refutes, so later sweeps encode strictly new
//!    information.
//! 2. **Multi-worker DIP mining.** A fixed set of `miners` solvers share
//!    one clause stream and solve the same miter concurrently under
//!    diversified decision heuristics ([`Diversification`]: seeded phase
//!    polarity plus a small random-decision fraction; miner 0 stays
//!    undiversified). The leader merges proposals in canonical miner
//!    order: duplicates are rejected, fresh patterns are oracle-queried,
//!    blocked from re-proposal by an act-literal-guarded clause over the
//!    shared input variables, and queued for encoding.
//! 3. **Pipelining.** The I/O constraints accepted in round *i* are
//!    encoded into the shared CNF *while* the miners solve round *i+1* —
//!    the encode task and the solve tasks run in the same executor scope.
//!    Per-DIP circuit copies instantiate one cached [`CnfTemplate`]
//!    instead of re-walking the netlist.
//!
//! # Determinism contract
//!
//! The miner count is **determinism-bearing**: it shapes the clause
//! stream and the merge, so changing it changes the (still deterministic)
//! outcome. The executor's worker count is **not**: every task's result
//! is read back in canonical order, so [`AttackOutcome::canonical`] is
//! byte-identical at any thread count — the parallel-determinism suite
//! pins workers ∈ {1, 2, 8} × cache ∈ {off, warm}. As everywhere else in
//! the repo, determinism additionally requires iteration budgets, not
//! wall-clock timeouts.
//!
//! Soundness of the act-guarded blocking clauses: a blocked pattern's I/O
//! constraints are always queued before the clause is added, and the
//! pipeline only terminates once the pending queue has drained into every
//! miner, at which point each blocking clause is logically implied (a
//! pattern whose oracle answer constrains both key copies can no longer
//! satisfy the miter). The `-act` guard keeps the final key-extraction
//! solve, which drops the miter, satisfiable.

use crate::oracle::CombOracle;
use crate::sat_attack::{
    encode_dip_constraint, model_bits, AttackConfig, AttackOutcome, AttackProblem, AttackStats,
};
use rtlock_artifacts::cached_cnf_template;
use rtlock_exec::Executor;
use rtlock_netlist::{scoap, CnfBuilder, NetSim, Netlist, SweepRng};
use rtlock_sat::{Budget, Diversification, Lit, SatBackend, SolveResult, Solver};
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Instant;

/// Bit-parallel pre-filter configuration (layer 1).
#[derive(Debug, Clone)]
pub struct PrefilterConfig {
    /// 64-pattern sweeps run before the first SAT call.
    pub initial_sweeps: usize,
    /// Random candidate keys whose disagreements decide which lanes are
    /// worth encoding. `0` disables the pre-filter entirely.
    pub candidates: usize,
    /// Bias a subset of sweeps into the fanin cones of the
    /// hardest-to-control (highest SCOAP opacity) nets.
    pub scoap_guided: bool,
    /// Run one extra sweep after each mining round while candidates
    /// survive.
    pub between_rounds: bool,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        PrefilterConfig { initial_sweeps: 4, candidates: 32, scoap_guided: true, between_rounds: true }
    }
}

/// Parallel DIP pipeline configuration (layers 2 and 3).
#[derive(Debug, Clone)]
pub struct DipConfig {
    /// Executor threads for [`sat_attack_parallel`]. Scheduling only —
    /// never affects the outcome.
    pub workers: usize,
    /// Concurrent miner solvers. Determinism-bearing: part of the attack
    /// configuration, like a seed.
    pub miners: usize,
    /// Random-decision fraction (per mille) for diversified miners.
    /// Miner 0 always runs undiversified.
    pub random_decision_permille: u16,
    /// Seed for miner diversification and pre-filter sweeps.
    pub seed: u64,
    /// Bit-parallel pre-filter; `None` mines every DIP from SAT.
    pub prefilter: Option<PrefilterConfig>,
}

impl Default for DipConfig {
    fn default() -> Self {
        DipConfig {
            workers: 4,
            miners: 4,
            random_decision_permille: 20,
            seed: 0xD1B2_C3A4_5E6F_7081,
            prefilter: Some(PrefilterConfig::default()),
        }
    }
}

/// Runs the parallel DIP pipeline with the default solver on a fresh
/// executor of `dip.workers` threads. See [`sat_attack_parallel_with`].
pub fn sat_attack_parallel(
    locked: &Netlist,
    original: &Netlist,
    config: &AttackConfig,
    dip: &DipConfig,
) -> AttackOutcome {
    let executor = Executor::new(dip.workers);
    sat_attack_parallel_with::<Solver>(locked, original, config, dip, &executor)
}

/// [`sat_attack_parallel`] parameterized over the solver backend and run
/// on a caller-provided executor. Backends that ignore
/// [`SatBackend::set_diversification`] still converge: identical miners
/// propose identical patterns, the merge rejects the duplicates, and the
/// pipeline degrades to single-miner progress per round.
pub fn sat_attack_parallel_with<S: SatBackend + Send>(
    locked: &Netlist,
    original: &Netlist,
    config: &AttackConfig,
    dip: &DipConfig,
    executor: &Executor,
) -> AttackOutcome {
    let start = Instant::now();
    let mut oracle = CombOracle::new(original);
    let problem = match AttackProblem::build(locked, &oracle) {
        Ok(p) => p,
        Err(outcome) => return outcome,
    };
    let miners = dip.miners.max(1);
    let cache = config.cache.as_deref();
    let token = config.stop_token();
    let mut stats = AttackStats::default();

    // Shared clause stream: x variables, two key copies, the act-guarded
    // miter — identical structure to the sequential attack. Per-copy
    // encodes instantiate one template (cache-checked once) instead of
    // re-walking the netlist for every copy.
    let mut cnf = CnfBuilder::new();
    let x_vars: Vec<i32> = problem.data_inputs.iter().map(|_| cnf.fresh_var()).collect();
    let k1: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();
    let k2: Vec<i32> = locked.key_inputs.iter().map(|_| cnf.fresh_var()).collect();
    let tpl = cached_cnf_template(cache, locked, &token);
    let vars1 = tpl.instantiate(&mut cnf, &problem.assemble(&k1, &x_vars), &[]);
    let vars2 = tpl.instantiate(&mut cnf, &problem.assemble(&k2, &x_vars), &[]);
    let mut diffs = Vec::new();
    for (_, drv) in locked.outputs() {
        diffs.push(cnf.xor_lit(vars1[drv.index()], vars2[drv.index()]));
    }
    let any_diff = cnf.or_lit(&diffs);
    let act = cnf.fresh_var();
    cnf.add_clause(&[-act, any_diff]);

    // Patterns whose blocking clause is in the stream; the merge rejects
    // re-proposals from the same round before the clause propagates.
    let mut proposed: HashSet<Vec<bool>> = HashSet::new();
    // Accepted (pattern, oracle answer) pairs not yet encoded as I/O
    // constraints — drained by the overlapped encode task.
    let mut pending: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();

    // Layer 1: pre-filter ahead of the first SAT call. Accepted lanes are
    // encoded directly (there is no solve to overlap with yet).
    let mut prefilter = dip.prefilter.as_ref().and_then(|pf| {
        let mut filter = Prefilter::new(locked, &problem, dip, pf)?;
        for _ in 0..pf.initial_sweeps {
            if filter.alive() == 0 {
                break;
            }
            for (pat, answer) in filter.sweep(&problem, &mut oracle, &mut stats) {
                if !proposed.insert(pat.clone()) {
                    stats.dips_rejected += 1;
                    continue;
                }
                add_blocking_clause(&mut cnf, act, &x_vars, &pat);
                for keys in [&k1, &k2] {
                    encode_dip_constraint(&mut cnf, cache, &problem, keys, &pat, &answer, &token);
                }
                stats.dips_accepted += 1;
            }
        }
        Some(filter)
    });

    // Layer 2: the fixed miner fleet. Miner 0 is the canonical solver;
    // the rest explore under seeded phases and a random-decision probe.
    let mut solvers: Vec<S> = (0..miners)
        .map(|v| {
            let mut s = S::new();
            if v > 0 {
                s.set_diversification(Diversification {
                    seed: dip.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    random_decision_permille: dip.random_decision_permille,
                });
            }
            s
        })
        .collect();
    let mut drained = vec![0usize; miners];

    loop {
        // Synchronize every miner with the shared stream, then snapshot
        // the pending queue for the overlapped encode task.
        for (s, d) in solvers.iter_mut().zip(drained.iter_mut()) {
            sync_one(&cnf, s, d);
        }
        let pending_snapshot: Vec<(Vec<bool>, Vec<bool>)> = std::mem::take(&mut pending);
        let pending_was_empty = pending_snapshot.is_empty();
        let round_start = Instant::now();

        // Layer 3: one scope runs the V solve tasks and the encode task
        // of the previous round's constraints concurrently. The miners
        // never touch `cnf`; the encode task is its only writer.
        type MinerReport = (SolveResult, Option<Result<Vec<bool>, usize>>);
        let reports: Vec<Mutex<Option<MinerReport>>> =
            (0..miners).map(|_| Mutex::new(None)).collect();
        let ((), panics) = executor.scope(&token, |scope| {
            if !pending_was_empty {
                let cnf = &mut cnf;
                let (problem, k1, k2, token) = (&problem, &k1, &k2, &token);
                scope.spawn(move |_| {
                    for (pat, answer) in &pending_snapshot {
                        for keys in [k1, k2] {
                            encode_dip_constraint(cnf, cache, problem, keys, pat, answer, token);
                        }
                    }
                });
            }
            for (v, solver) in solvers.iter_mut().enumerate() {
                let (reports, x_vars) = (&reports, &x_vars);
                scope.spawn(move |tok| {
                    solver.set_budget(Budget::cancellable(tok));
                    let res = solver.solve(&[Lit::from_dimacs(act)]);
                    let dip = match res {
                        SolveResult::Sat => Some(model_bits(solver, x_vars)),
                        _ => None,
                    };
                    *reports[v].lock().expect("miner report lock") = Some((res, dip));
                });
            }
        });
        if let Some(p) = panics.into_iter().next() {
            return AttackOutcome::Error { reason: format!("miner panicked: {}", p.message) };
        }

        // Deterministic merge, canonical miner order. Every accepted
        // pattern is blocked immediately and queued for the next round's
        // encode task.
        let mut any_unsat = false;
        let mut any_unknown = false;
        let mut accepted_this_round = 0usize;
        for report in &reports {
            let (res, dip) = report
                .lock()
                .expect("miner report lock")
                .take()
                .expect("every miner reports");
            match res {
                SolveResult::Unknown => any_unknown = true,
                SolveResult::Unsat => any_unsat = true,
                SolveResult::Sat => {
                    let pat = match dip.expect("Sat reports carry a model") {
                        Ok(bits) => bits,
                        Err(missing) => {
                            return AttackOutcome::Error {
                                reason: format!(
                                    "SAT model lacks an assignment for DIP input {missing}; \
                                     refusing to fabricate a distinguishing pattern"
                                ),
                            }
                        }
                    };
                    if !proposed.insert(pat.clone()) {
                        stats.dips_rejected += 1;
                        continue;
                    }
                    let answer = oracle.query_bits(&problem.bind_pattern(&pat));
                    stats.oracle_queries += 1;
                    add_blocking_clause(&mut cnf, act, &x_vars, &pat);
                    if let Some(filter) = prefilter.as_mut() {
                        filter.kill_disagreeing(&problem, &pat, &answer, &mut stats);
                    }
                    pending.push((pat, answer));
                    stats.dips_accepted += 1;
                    accepted_this_round += 1;
                }
            }
        }
        stats.round_wall_clock.push(round_start.elapsed());
        if stats.dips_accepted > config.max_iterations {
            return AttackOutcome::TimedOut {
                iterations: stats.dips_accepted,
                elapsed: start.elapsed(),
                stats,
            };
        }

        // Between-round pre-filter: surviving candidates keep paying for
        // their lanes while they live.
        if let Some(filter) = prefilter.as_mut() {
            let run_between = dip
                .prefilter
                .as_ref()
                .is_some_and(|pf| pf.between_rounds && accepted_this_round > 0);
            if run_between && filter.alive() > 0 {
                for (pat, answer) in filter.sweep(&problem, &mut oracle, &mut stats) {
                    if !proposed.insert(pat.clone()) {
                        stats.dips_rejected += 1;
                        continue;
                    }
                    add_blocking_clause(&mut cnf, act, &x_vars, &pat);
                    pending.push((pat, answer));
                    stats.dips_accepted += 1;
                }
            }
        }

        // Terminate only when some miner proved the miter empty *and*
        // every accepted constraint has propagated: nothing was pending
        // at spawn, the merge accepted nothing, and no pre-filter lane
        // joined the queue afterwards.
        if any_unsat && pending_was_empty && accepted_this_round == 0 && pending.is_empty() {
            return extract_key(&mut solvers[0], &k1, stats, start, &token);
        }
        if any_unknown && !any_unsat && accepted_this_round == 0 {
            return AttackOutcome::TimedOut {
                iterations: stats.dips_accepted,
                elapsed: start.elapsed(),
                stats,
            };
        }
        if token.should_stop().is_some() {
            return AttackOutcome::TimedOut {
                iterations: stats.dips_accepted,
                elapsed: start.elapsed(),
                stats,
            };
        }
    }
}

/// Final key extraction, identical to the sequential attack: drop the
/// act assumption (disabling the miter and every blocking clause) and
/// read the key from any consistent model.
fn extract_key<S: SatBackend>(
    solver: &mut S,
    k1: &[i32],
    stats: AttackStats,
    start: Instant,
    token: &rtlock_governor::CancelToken,
) -> AttackOutcome {
    solver.set_budget(Budget::cancellable(token));
    match solver.solve(&[]) {
        SolveResult::Sat => {}
        SolveResult::Unknown => {
            return AttackOutcome::TimedOut {
                iterations: stats.dips_accepted,
                elapsed: start.elapsed(),
                stats,
            };
        }
        SolveResult::Unsat => {
            return AttackOutcome::Infeasible {
                reason: "I/O constraints inconsistent (oracle/netlist mismatch?)".into(),
            };
        }
    }
    match model_bits(solver, k1) {
        Ok(key) => AttackOutcome::KeyFound {
            key,
            iterations: stats.dips_accepted,
            elapsed: start.elapsed(),
            stats,
        },
        Err(missing) => AttackOutcome::Error {
            reason: format!(
                "SAT model lacks an assignment for key bit {missing}; \
                 refusing to fabricate key bits"
            ),
        },
    }
}

/// Blocks `pat` from re-proposal: under the act assumption, the shared
/// input variables must differ from `pat` in at least one position. The
/// `-act` guard keeps the clause inert for key extraction.
fn add_blocking_clause(cnf: &mut CnfBuilder, act: i32, x_vars: &[i32], pat: &[bool]) {
    let mut clause = Vec::with_capacity(x_vars.len() + 1);
    clause.push(-act);
    for (&x, &p) in x_vars.iter().zip(pat) {
        clause.push(if p { -x } else { x });
    }
    cnf.add_clause(&clause);
}

fn sync_one<S: SatBackend>(cnf: &CnfBuilder, solver: &mut S, drained: &mut usize) {
    solver.reserve_vars(cnf.num_vars());
    let clauses = cnf.clauses();
    for c in &clauses[*drained..] {
        solver.add_dimacs_clause(c);
    }
    *drained = clauses.len();
}

/// Layer-1 state: candidate keys, the bit-parallel simulator of the
/// locked netlist, and the sweep generator.
pub(crate) struct Prefilter<'n> {
    sim: NetSim<'n>,
    rng: SweepRng,
    /// Candidate keys, `key_inputs` order; killed candidates set to None.
    candidates: Vec<Option<Vec<bool>>>,
    /// Per data-input position: inside the fanin cone of a
    /// hardest-to-control net (SCOAP-guided sweeps bias these lanes).
    in_cone: Vec<bool>,
    scoap_guided: bool,
    sweep_index: usize,
}

impl<'n> Prefilter<'n> {
    pub(crate) fn new(
        locked: &'n Netlist,
        problem: &AttackProblem<'_>,
        dip: &DipConfig,
        pf: &PrefilterConfig,
    ) -> Option<Self> {
        if pf.candidates == 0 {
            return None;
        }
        let sim = NetSim::new(locked).ok()?;
        let mut rng = SweepRng::new(dip.seed ^ 0xCAFE_F00D_BAAD_5EED);
        let candidates = (0..pf.candidates)
            .map(|_| {
                Some(locked.key_inputs.iter().map(|_| rng.word() & 1 == 1).collect::<Vec<bool>>())
            })
            .collect();
        let in_cone = if pf.scoap_guided {
            hard_cone_inputs(locked, problem)
        } else {
            vec![false; problem.data_inputs.len()]
        };
        Some(Prefilter { sim, rng, candidates, in_cone, scoap_guided: pf.scoap_guided, sweep_index: 0 })
    }

    /// Surviving candidate count.
    pub(crate) fn alive(&self) -> usize {
        self.candidates.iter().filter(|c| c.is_some()).count()
    }

    /// Surviving candidate keys (test hook for the proptest contract).
    #[cfg(test)]
    pub(crate) fn survivors(&self) -> Vec<Vec<bool>> {
        self.candidates.iter().filter_map(|c| c.clone()).collect()
    }

    /// Runs one 64-lane sweep: generates patterns, batch-queries the
    /// oracle once, and greedily accepts lanes on which some surviving
    /// candidate disagrees with the oracle — killing the candidates each
    /// accepted lane refutes, so later lanes only pay for fresh
    /// disagreement. Returns accepted `(pattern, oracle answer)` pairs in
    /// lane order.
    pub(crate) fn sweep(
        &mut self,
        problem: &AttackProblem<'_>,
        oracle: &mut CombOracle<'_>,
        stats: &mut AttackStats,
    ) -> Vec<(Vec<bool>, Vec<bool>)> {
        let bias = if self.sweep_index % 2 == 0 { 2i8 } else { -2i8 };
        self.sweep_index += 1;
        let words: Vec<u64> = self
            .in_cone
            .iter()
            .map(|&cone| {
                if self.scoap_guided && cone {
                    self.rng.biased_word(bias)
                } else {
                    self.rng.word()
                }
            })
            .collect();
        let answers = oracle.query64(&problem.bind_sweep(&words));
        stats.oracle_queries += 1;

        // One disagreement mask per surviving candidate: bit l set iff
        // the candidate's locked netlist differs from the oracle on some
        // shared output in lane l.
        let mut masks: Vec<Option<u64>> = Vec::with_capacity(self.candidates.len());
        for i in 0..self.candidates.len() {
            let Some(cand) = self.candidates[i].clone() else {
                masks.push(None);
                continue;
            };
            stats.patterns_simulated += 64;
            masks.push(Some(self.disagreement_mask(problem, &cand, &words, &answers)));
        }

        let mut accepted = Vec::new();
        let mut killed: Vec<bool> = vec![false; self.candidates.len()];
        for lane in 0..64u32 {
            let bit = 1u64 << lane;
            let distinguishes = masks
                .iter()
                .zip(&killed)
                .any(|(m, &k)| !k && m.is_some_and(|m| m & bit != 0));
            if !distinguishes {
                stats.dips_rejected += 1;
                continue;
            }
            let pat: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
            let answer: Vec<bool> = answers.iter().map(|w| w >> lane & 1 == 1).collect();
            for (slot, m) in killed.iter_mut().zip(&masks) {
                if m.is_some_and(|m| m & bit != 0) {
                    *slot = true;
                }
            }
            accepted.push((pat, answer));
        }
        for (cand, &k) in self.candidates.iter_mut().zip(&killed) {
            if k {
                *cand = None;
            }
        }
        accepted
    }

    /// Kills every surviving candidate that disagrees with the oracle's
    /// answer on a freshly mined pattern — mined DIPs feed the candidate
    /// pool the same way accepted lanes do.
    pub(crate) fn kill_disagreeing(
        &mut self,
        problem: &AttackProblem<'_>,
        pat: &[bool],
        answer: &[bool],
        stats: &mut AttackStats,
    ) {
        let words: Vec<u64> = pat.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let answers: Vec<u64> = answer.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        for i in 0..self.candidates.len() {
            let Some(cand) = self.candidates[i].clone() else { continue };
            stats.patterns_simulated += 1;
            if self.disagreement_mask(problem, &cand, &words, &answers) != 0 {
                self.candidates[i] = None;
            }
        }
    }

    /// Lanes on which `cand` keyed into the locked netlist differs from
    /// the oracle answer words on some shared output.
    fn disagreement_mask(
        &mut self,
        problem: &AttackProblem<'_>,
        cand: &[bool],
        words: &[u64],
        answers: &[u64],
    ) -> u64 {
        for (&g, &w) in problem.data_inputs.iter().zip(words) {
            self.sim.set_input(g, w);
        }
        for (&g, &b) in problem.locked.key_inputs.iter().zip(cand) {
            self.sim.set_input(g, if b { u64::MAX } else { 0 });
        }
        self.sim.eval_comb();
        let mut mask = 0u64;
        for (oi, (_, drv)) in problem.locked.outputs().iter().enumerate() {
            if !problem.shared_outputs[oi] {
                continue;
            }
            let Some(ai) = problem.answer_pos[oi] else { continue };
            mask |= self.sim.value(*drv) ^ answers[ai];
        }
        mask
    }
}

/// Data-input positions inside the fanin cones of the hardest-to-control
/// nets: the top quartile of gates by SCOAP opacity seed a reverse BFS to
/// the inputs. Sweeps biased into these lanes exercise logic random
/// patterns rarely reach — the SCOAP analogue of the paper's
/// testability-guided locking-point selection, pointed at the attack.
fn hard_cone_inputs(locked: &Netlist, problem: &AttackProblem<'_>) -> Vec<bool> {
    let profile = scoap::analyze(locked);
    let mut ranked: Vec<(u64, usize)> = (0..locked.len())
        .map(|i| (profile.opacity(rtlock_netlist::GateId(i as u32)), i))
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    let seeds = ranked.len().div_ceil(4).max(1);
    let mut in_fanin = vec![false; locked.len()];
    let mut queue: Vec<usize> = ranked.iter().take(seeds).map(|&(_, i)| i).collect();
    for &i in &queue {
        in_fanin[i] = true;
    }
    while let Some(i) = queue.pop() {
        for &f in &locked.gate(rtlock_netlist::GateId(i as u32)).fanin {
            if !in_fanin[f.index()] {
                in_fanin[f.index()] = true;
                queue.push(f.index());
            }
        }
    }
    problem.data_inputs.iter().map(|g| in_fanin[g.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat_attack::{key_accuracy, sat_attack};
    use proptest::prelude::*;
    use rtlock_artifacts::ArtifactStore;
    use rtlock_netlist::GateKind;
    use std::sync::Arc;

    /// y = (a & b) ^ (c | d), locked with XOR/XNOR key gates.
    fn build_pair(key: &[bool]) -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let c = orig.add_input("c");
        let d = orig.add_input("d");
        let ab = orig.add_gate(GateKind::And, vec![a, b]);
        let cd = orig.add_gate(GateKind::Or, vec![c, d]);
        let y = orig.add_gate(GateKind::Xor, vec![ab, cd]);
        orig.add_output("y", y);

        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let c = locked.add_input("c");
        let d = locked.add_input("d");
        let mut keys = Vec::new();
        for i in 0..key.len() {
            let k = locked.add_input(format!("keyinput{i}"));
            locked.mark_key_input(k);
            keys.push(k);
        }
        let ab = locked.add_gate(GateKind::And, vec![a, b]);
        let kind0 = if key[0] { GateKind::Xnor } else { GateKind::Xor };
        let ab_l = locked.add_gate(kind0, vec![ab, keys[0]]);
        let cd = locked.add_gate(GateKind::Or, vec![c, d]);
        let cd_l = if key.len() > 1 {
            let kind1 = if key[1] { GateKind::Xnor } else { GateKind::Xor };
            locked.add_gate(kind1, vec![cd, keys[1]])
        } else {
            cd
        };
        let y = locked.add_gate(GateKind::Xor, vec![ab_l, cd_l]);
        locked.add_output("y", y);
        (locked, orig)
    }

    #[test]
    fn pipeline_recovers_every_two_bit_key() {
        for key in [[false, false], [false, true], [true, false], [true, true]] {
            let (locked, orig) = build_pair(&key);
            let out = sat_attack_parallel(
                &locked,
                &orig,
                &AttackConfig::default(),
                &DipConfig::default(),
            );
            match out {
                AttackOutcome::KeyFound { key: found, .. } => {
                    assert_eq!(
                        key_accuracy(&locked, &orig, &found, 64, 7),
                        1.0,
                        "key {key:?} -> {found:?}"
                    );
                }
                other => panic!("pipeline failed for {key:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn pipeline_without_prefilter_and_one_miner_recovers_keys() {
        let dip = DipConfig { miners: 1, prefilter: None, ..DipConfig::default() };
        let (locked, orig) = build_pair(&[true, false]);
        let out = sat_attack_parallel(&locked, &orig, &AttackConfig::default(), &dip);
        let found = out.key().expect("key recovered").to_vec();
        assert_eq!(key_accuracy(&locked, &orig, &found, 64, 7), 1.0);
    }

    #[test]
    fn canonical_outcome_is_identical_across_worker_counts_and_cache_modes() {
        let (locked, orig) = build_pair(&[true, true]);
        let dip = DipConfig::default();
        let reference = {
            let exec = Executor::new(1);
            sat_attack_parallel_with::<Solver>(
                &locked,
                &orig,
                &AttackConfig::default(),
                &dip,
                &exec,
            )
            .canonical()
        };
        assert!(reference.starts_with("key-found("), "{reference}");
        for workers in [2, 8] {
            let exec = Executor::new(workers);
            let out = sat_attack_parallel_with::<Solver>(
                &locked,
                &orig,
                &AttackConfig::default(),
                &dip,
                &exec,
            );
            assert_eq!(out.canonical(), reference, "workers={workers}");
        }
        // Cold and warm cache: same bytes again.
        let store = Arc::new(ArtifactStore::in_memory());
        let cfg = AttackConfig { cache: Some(store.clone()), ..AttackConfig::default() };
        for pass in ["cold", "warm"] {
            let exec = Executor::new(4);
            let out = sat_attack_parallel_with::<Solver>(&locked, &orig, &cfg, &dip, &exec);
            assert_eq!(out.canonical(), reference, "{pass} cache");
        }
        assert!(store.stats().hits > 0, "warm pass must hit the template cache");
    }

    #[test]
    fn miner_count_is_determinism_bearing_but_stable() {
        let (locked, orig) = build_pair(&[false, true]);
        for miners in [1, 2, 4] {
            let dip = DipConfig { miners, ..DipConfig::default() };
            let first =
                sat_attack_parallel(&locked, &orig, &AttackConfig::default(), &dip).canonical();
            let second =
                sat_attack_parallel(&locked, &orig, &AttackConfig::default(), &dip).canonical();
            assert_eq!(first, second, "miners={miners} must be reproducible");
        }
    }

    #[test]
    fn pipeline_refuses_what_the_sequential_attack_refuses() {
        let mut seq = Netlist::new("seq");
        let a = seq.add_input("a");
        let k = seq.add_input("keyinput0");
        seq.mark_key_input(k);
        let x = seq.add_gate(GateKind::Xor, vec![a, k]);
        let ff = seq.add_gate(GateKind::Dff { init: false }, vec![x]);
        seq.add_output("q", ff);
        let par = sat_attack_parallel(&seq, &seq, &AttackConfig::default(), &DipConfig::default());
        let sequential = sat_attack(&seq, &seq, &AttackConfig::default());
        assert_eq!(par.canonical(), sequential.canonical(), "same Infeasible reason");
    }

    #[test]
    fn pre_cancelled_token_times_the_pipeline_out() {
        let (locked, orig) = build_pair(&[true, false]);
        let token = rtlock_governor::CancelToken::unlimited();
        token.cancel();
        let cfg = AttackConfig { cancel: Some(token), ..AttackConfig::default() };
        let out = sat_attack_parallel(&locked, &orig, &cfg, &DipConfig::default());
        assert!(matches!(out, AttackOutcome::TimedOut { .. }), "{out:?}");
    }

    #[test]
    fn iteration_budget_bounds_accepted_dips() {
        let (locked, orig) = build_pair(&[true, false]);
        let cfg = AttackConfig { max_iterations: 0, ..AttackConfig::default() };
        let dip = DipConfig { prefilter: None, ..DipConfig::default() };
        let out = sat_attack_parallel(&locked, &orig, &cfg, &dip);
        assert!(
            matches!(out, AttackOutcome::TimedOut { .. } | AttackOutcome::KeyFound { .. }),
            "{out:?}"
        );
    }

    /// A wider mix circuit for the pre-filter property: 6 data inputs,
    /// `bits` key bits XOR/XNOR-spliced along two output cones.
    fn wide_pair(key: &[bool]) -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let ins: Vec<_> = (0..6).map(|i| orig.add_input(format!("i{i}"))).collect();
        let p = orig.add_gate(GateKind::And, vec![ins[0], ins[1]]);
        let q = orig.add_gate(GateKind::Or, vec![ins[2], ins[3]]);
        let r = orig.add_gate(GateKind::Xor, vec![ins[4], ins[5]]);
        let u = orig.add_gate(GateKind::Nand, vec![p, q]);
        let v = orig.add_gate(GateKind::Xor, vec![q, r]);
        orig.add_output("u", u);
        orig.add_output("v", v);

        let mut locked = Netlist::new("locked");
        let ins: Vec<_> = (0..6).map(|i| locked.add_input(format!("i{i}"))).collect();
        let keys: Vec<_> = (0..key.len())
            .map(|i| {
                let k = locked.add_input(format!("keyinput{i}"));
                locked.mark_key_input(k);
                k
            })
            .collect();
        let p = locked.add_gate(GateKind::And, vec![ins[0], ins[1]]);
        let q = locked.add_gate(GateKind::Or, vec![ins[2], ins[3]]);
        let r = locked.add_gate(GateKind::Xor, vec![ins[4], ins[5]]);
        let mut nets = vec![p, q, r];
        for (i, &k) in keys.iter().enumerate() {
            let target = nets[i % nets.len()];
            let kind = if key[i] { GateKind::Xnor } else { GateKind::Xor };
            let lockedg = locked.add_gate(kind, vec![target, k]);
            nets[i % 3] = lockedg;
        }
        let u = locked.add_gate(GateKind::Nand, vec![nets[0], nets[1]]);
        let v = locked.add_gate(GateKind::Xor, vec![nets[1], nets[2]]);
        locked.add_output("u", u);
        locked.add_output("v", v);
        (locked, orig)
    }

    proptest! {
        /// The pre-filter contract: a lane is rejected only when *no*
        /// surviving candidate disagrees with the oracle on it — so after
        /// any number of sweeps, every surviving candidate matches the
        /// oracle on every lane of every processed sweep. A violation
        /// would mean the filter discarded a pattern that still
        /// distinguished a candidate: a lost DIP.
        #[test]
        fn prefilter_never_discards_a_distinguishing_pattern(
            seed in any::<u64>(),
            candidates in 1usize..24,
            sweeps in 1usize..5,
            key_bits in proptest::collection::vec(any::<bool>(), 1..4),
        ) {
            let (locked, orig) = wide_pair(&key_bits);
            let mut oracle = CombOracle::new(&orig);
            let problem = AttackProblem::build(&locked, &oracle).expect("attackable");
            let dip = DipConfig { seed, ..DipConfig::default() };
            let pf = PrefilterConfig { candidates, ..PrefilterConfig::default() };
            let mut stats = AttackStats::default();
            let mut filter =
                Prefilter::new(&locked, &problem, &dip, &pf).expect("candidates > 0");

            let mut processed: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
            let mut accepted_count = 0usize;
            for _ in 0..sweeps {
                // Record the sweep's full 64 lanes by replaying the rng-
                // independent part: sweep() returns only accepted lanes,
                // so reconstruct coverage from the oracle instead — every
                // accepted lane must have distinguished, and surviving
                // candidates must now agree everywhere we can check.
                let accepted = filter.sweep(&problem, &mut oracle, &mut stats);
                accepted_count += accepted.len();
                processed.extend(accepted);
            }
            prop_assert_eq!(stats.dips_accepted, 0, "sweep() itself never mutates dip counters");
            prop_assert_eq!(stats.oracle_queries, sweeps);

            // Every accepted pattern distinguished at least one candidate
            // at acceptance time, and acceptance killed the disagreers:
            // no survivor may disagree with the oracle on any accepted
            // pattern now.
            let survivors = filter.survivors();
            let mut sim = NetSim::new(&locked).expect("acyclic");
            for (pat, answer) in &processed {
                for cand in &survivors {
                    for (&g, &b) in problem.data_inputs.iter().zip(pat) {
                        sim.set_input(g, if b { u64::MAX } else { 0 });
                    }
                    for (&g, &b) in locked.key_inputs.iter().zip(cand) {
                        sim.set_input(g, if b { u64::MAX } else { 0 });
                    }
                    sim.eval_comb();
                    for (oi, (_, drv)) in locked.outputs().iter().enumerate() {
                        if !problem.shared_outputs[oi] {
                            continue;
                        }
                        let Some(ai) = problem.answer_pos[oi] else { continue };
                        prop_assert_eq!(
                            sim.value(*drv) & 1 == 1,
                            answer[ai],
                            "survivor disagrees with the oracle on an accepted lane"
                        );
                    }
                }
            }
            // Rejected-lane accounting: every lane of every sweep is
            // either accepted or counted rejected.
            prop_assert_eq!(stats.dips_rejected + accepted_count, sweeps * 64);
        }
    }

    proptest! {
        /// End-to-end spot check at property scale: the pipeline's
        /// recovered key is always functionally correct, whatever the
        /// seed and miner count.
        #[test]
        fn pipeline_key_is_always_functionally_correct(
            seed in any::<u64>(),
            miners in 1usize..4,
            key0 in any::<bool>(),
            key1 in any::<bool>(),
        ) {
            let (locked, orig) = build_pair(&[key0, key1]);
            let dip = DipConfig { seed, miners, ..DipConfig::default() };
            let out = sat_attack_parallel(&locked, &orig, &AttackConfig::default(), &dip);
            let found = out.key().expect("breakable circuit").to_vec();
            prop_assert_eq!(key_accuracy(&locked, &orig, &found, 64, 11), 1.0);
        }
    }
}
