//! Signal-probability-skew (SPS) removal attack analysis (\[12\] in the
//! paper).
//!
//! Point-function defenses (SARLock/Anti-SAT style) hide the key behind a
//! comparator whose output is almost always 0 (or 1): its *signal
//! probability skew* gives it away, and cutting it out restores the
//! original circuit. The analysis estimates per-net signal probabilities by
//! bit-parallel random simulation, flags heavily skewed nets feeding
//! output-side XOR structures, and attempts the removal (replace candidate
//! by its dominant constant) checking functional recovery against the
//! oracle. RTLock introduces no point functions and keeps corruptibility
//! high, so the attack finds no viable candidate.

use crate::oracle::CombOracle;
use rtlock_netlist::{GateId, GateKind, NetSim, Netlist};

/// A candidate point-function net.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewCandidate {
    /// The skewed gate.
    pub gate: GateId,
    /// Estimated probability of the gate being 1.
    pub p_one: f64,
}

/// Outcome of the removal attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RemovalOutcome {
    /// Removing `gate` (stuck at its dominant value) recovered the original
    /// function on all sampled patterns.
    Recovered {
        /// The removed point-function gate.
        gate: GateId,
        /// Residual error rate on the validation sample.
        error_rate: f64,
    },
    /// No candidate removal restored the function.
    Foiled {
        /// Skew candidates that were tried.
        tried: usize,
        /// Best (lowest) error rate achieved.
        best_error_rate: f64,
    },
}

/// Estimates per-gate signal probabilities with `rounds * 64` random
/// patterns.
pub fn signal_probabilities(netlist: &Netlist, rounds: usize, seed: u64) -> Vec<f64> {
    let mut sim = NetSim::new(netlist).expect("acyclic");
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut ones = vec![0u64; netlist.len()];
    sim.reset();
    for _ in 0..rounds.max(1) {
        for &i in netlist.inputs() {
            let r = next();
            sim.set_input(i, r);
        }
        sim.step();
        for id in netlist.ids() {
            ones[id.index()] += sim.value(id).count_ones() as u64;
        }
    }
    let denom = (rounds.max(1) * 64) as f64;
    ones.into_iter().map(|c| c as f64 / denom).collect()
}

/// Finds nets with probability skew beyond `threshold` (distance from 0.5)
/// among internal logic gates, sorted most-skewed first.
pub fn find_skew_candidates(netlist: &Netlist, threshold: f64, rounds: usize, seed: u64) -> Vec<SkewCandidate> {
    let probs = signal_probabilities(netlist, rounds, seed);
    let mut out: Vec<SkewCandidate> = netlist
        .ids()
        .filter(|&id| netlist.gate(id).kind.is_logic())
        .map(|id| SkewCandidate { gate: id, p_one: probs[id.index()] })
        .filter(|c| (c.p_one - 0.5).abs() >= threshold)
        .collect();
    out.sort_by(|a, b| (b.p_one - 0.5).abs().total_cmp(&(a.p_one - 0.5).abs()));
    out
}

/// Attempts the removal attack: for each skew candidate (most skewed
/// first), stub it to its dominant constant and co-simulate against the
/// oracle on `samples * 64` random patterns. Success requires an error rate
/// below `tolerance`.
pub fn removal_attack(
    locked: &Netlist,
    original: &Netlist,
    threshold: f64,
    tolerance: f64,
    samples: usize,
    seed: u64,
) -> RemovalOutcome {
    let candidates = find_skew_candidates(locked, threshold, samples, seed);
    let mut best = 1.0f64;
    let mut tried = 0usize;
    for cand in candidates.iter().take(32) {
        tried += 1;
        let dominant = cand.p_one >= 0.5;
        let mut stubbed = locked.clone();
        let cgate = stubbed.add_gate(if dominant { GateKind::Const1 } else { GateKind::Const0 }, vec![]);
        stubbed.replace_uses(cand.gate, cgate, &[]);
        // Hardwire all keys to an arbitrary value — a successful removal
        // makes the key irrelevant.
        let keys = stubbed.key_inputs.clone();
        for k in keys {
            stubbed.convert_input_to_const(k, false);
        }
        let err = mismatch_rate(&stubbed, original, samples, seed ^ 0x5A5A);
        best = best.min(err);
        if err <= tolerance {
            return RemovalOutcome::Recovered { gate: cand.gate, error_rate: err };
        }
    }
    RemovalOutcome::Foiled { tried, best_error_rate: best }
}

/// Fraction of mismatching output bits between two combinational netlists
/// (matched by output name) over random patterns.
pub fn mismatch_rate(candidate: &Netlist, original: &Netlist, samples: usize, seed: u64) -> f64 {
    let mut oracle = CombOracle::new(original);
    let mut sim = match NetSim::new(candidate) {
        Ok(s) => s,
        Err(_) => return 1.0,
    };
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut total = 0usize;
    let mut bad = 0usize;
    for _ in 0..samples.max(1) {
        // 64 independent patterns per block: candidate side is simulated
        // bit-parallel; the oracle is queried lane by lane.
        let words: Vec<u64> = candidate.inputs().iter().map(|_| next()).collect();
        for (&g, &w) in candidate.inputs().iter().zip(&words) {
            sim.set_input(g, w);
        }
        sim.eval_comb();
        for lane in 0..64 {
            let named: Vec<(String, bool)> = candidate
                .inputs()
                .iter()
                .zip(&words)
                .map(|(&g, &w)| (candidate.gate_name(g).unwrap_or("").to_owned(), w >> lane & 1 == 1))
                .filter(|(n, _)| !n.is_empty())
                .collect();
            let expect = oracle.query(&named);
            for (name, drv) in candidate.outputs() {
                if let Some((_, e)) = expect.iter().find(|(n, _)| n == name) {
                    total += 1;
                    bad += usize::from((sim.value(*drv) >> lane & 1 == 1) != *e);
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SARLock-style lock: y = f(x) XOR (x == key), a one-point flip.
    fn point_function_locked(width: usize, key: u64) -> (Netlist, Netlist) {
        let mut orig = Netlist::new("orig");
        let ins: Vec<_> = (0..width).map(|i| orig.add_input(format!("x{i}"))).collect();
        let mut f = ins[0];
        for &i in &ins[1..] {
            f = orig.add_gate(GateKind::Xor, vec![f, i]);
        }
        orig.add_output("y", f);

        let mut locked = Netlist::new("locked");
        let ins: Vec<_> = (0..width).map(|i| locked.add_input(format!("x{i}"))).collect();
        let keys: Vec<_> = (0..width)
            .map(|i| {
                let k = locked.add_input(format!("keyinput{i}"));
                locked.mark_key_input(k);
                k
            })
            .collect();
        let mut f = ins[0];
        for &i in &ins[1..] {
            f = locked.add_gate(GateKind::Xor, vec![f, i]);
        }
        // Comparator x == key (the point function).
        let mut cmp = locked.add_gate(GateKind::Xnor, vec![ins[0], keys[0]]);
        for i in 1..width {
            let eq = locked.add_gate(GateKind::Xnor, vec![ins[i], keys[i]]);
            cmp = locked.add_gate(GateKind::And, vec![cmp, eq]);
        }
        let y = locked.add_gate(GateKind::Xor, vec![f, cmp]);
        locked.add_output("y", y);
        let _ = key;
        (locked, orig)
    }

    #[test]
    fn sarlock_style_point_function_is_removed() {
        let (locked, orig) = point_function_locked(6, 0b101010);
        let out = removal_attack(&locked, &orig, 0.35, 0.02, 32, 42);
        assert!(matches!(out, RemovalOutcome::Recovered { .. }), "got {out:?}");
    }

    #[test]
    fn high_corruption_locking_foils_removal() {
        // XOR key gate: wrong key flips *every* pattern — no skewed point
        // function to remove.
        let mut locked = Netlist::new("l");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_input("keyinput0");
        locked.mark_key_input(k);
        let g = locked.add_gate(GateKind::And, vec![a, b]);
        let y = locked.add_gate(GateKind::Xor, vec![g, k]);
        locked.add_output("y", y);
        let mut orig = Netlist::new("o");
        let a = orig.add_input("a");
        let b = orig.add_input("b");
        let g = orig.add_gate(GateKind::And, vec![a, b]);
        orig.add_output("y", g);
        let out = removal_attack(&locked, &orig, 0.35, 0.02, 32, 42);
        assert!(matches!(out, RemovalOutcome::Foiled { .. }), "got {out:?}");
    }

    #[test]
    fn signal_probabilities_reasonable() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let and = n.add_gate(GateKind::And, vec![a, b]);
        let xor = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output("y1", and);
        n.add_output("y2", xor);
        let p = signal_probabilities(&n, 64, 9);
        assert!((p[and.index()] - 0.25).abs() < 0.05, "AND ~ 0.25, got {}", p[and.index()]);
        assert!((p[xor.index()] - 0.5).abs() < 0.05, "XOR ~ 0.5, got {}", p[xor.index()]);
    }
}
