//! Canonical structural hashing of netlists.
//!
//! The cache key must be *stable across net renumbering*: two netlists
//! that differ only in the order gates were declared (and hence in their
//! `GateId` numbering) describe the same circuit and should map to the
//! same bucket. At the same time the hash must be *sensitive*: flipping a
//! single gate kind or constant must change it.
//!
//! The hasher runs a short Weisfeiler–Lehman-style refinement over the
//! gate graph:
//!
//! 1. every gate starts from a label derived from its kind, its optional
//!    name, and (for flip-flops) its reset value — nothing id-dependent;
//! 2. each round replaces a gate's label with a mix of its previous label
//!    and its fanin labels — sorted first for commutative kinds
//!    (AND/NAND/OR/NOR/XOR/XNOR), in pin order for MUX/BUF/NOT/DFF;
//! 3. the final digest folds an order-insensitive aggregate of all gate
//!    labels (so internal declaration order cannot matter) together with
//!    the ordered, named boundary: primary inputs, outputs, port groups,
//!    key bits and the scan chain.
//!
//! The round count is a function of renumbering-invariant quantities only
//! (flip-flop count), so isomorphic netlists always run the same number of
//! rounds. All mixing is SplitMix64/FNV-1a based — fully deterministic,
//! no `HashMap` iteration, no randomness.
//!
//! The hash is 128 bits to make accidental collisions irrelevant in
//! practice; the store additionally compares exact identity bytes on every
//! lookup (see [`crate::ArtifactStore`]), so even a collision — or an
//! isomorphic-but-renumbered twin, whose cached artifacts would be
//! expressed in the wrong gate ids — degrades to a cache miss, never to a
//! wrong answer.

use rtlock_netlist::{GateKind, Netlist};

/// SplitMix64 finalizer: the core bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-sensitive combination of two labels.
fn combine(a: u64, b: u64) -> u64 {
    mix(a ^ b.wrapping_mul(0x100_0000_01B3))
}

/// FNV-1a over a byte string (names, sources).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Two independent 64-bit accumulators folded into one 128-bit digest.
struct Acc {
    lo: u64,
    hi: u64,
}

impl Acc {
    fn new(domain: &str) -> Acc {
        Acc { lo: mix(fnv1a(domain.as_bytes())), hi: mix(fnv1a(domain.as_bytes()) ^ u64::MAX) }
    }

    fn fold(&mut self, v: u64) {
        self.lo = combine(self.lo, v);
        self.hi = combine(self.hi, mix(v ^ 0xA5A5_A5A5_A5A5_A5A5));
    }

    fn finish(self) -> u128 {
        ((mix(self.hi) as u128) << 64) | mix(self.lo) as u128
    }
}

fn kind_label(kind: GateKind) -> u64 {
    let tag: u64 = match kind {
        GateKind::Input => 1,
        GateKind::Const0 => 2,
        GateKind::Const1 => 3,
        GateKind::Buf => 4,
        GateKind::Not => 5,
        GateKind::And => 6,
        GateKind::Nand => 7,
        GateKind::Or => 8,
        GateKind::Nor => 9,
        GateKind::Xor => 10,
        GateKind::Xnor => 11,
        GateKind::Mux => 12,
        GateKind::Dff { init: false } => 13,
        GateKind::Dff { init: true } => 14,
    };
    mix(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor | GateKind::Xor | GateKind::Xnor
    )
}

/// Canonical structural hash of a netlist (see module docs for the
/// invariance/sensitivity contract).
pub fn structural_hash(n: &Netlist) -> u128 {
    let count = n.len();
    let mut labels: Vec<u64> = Vec::with_capacity(count);
    for id in n.ids() {
        let g = n.gate(id);
        let name_h = fnv1a(n.gate_name(id).unwrap_or("").as_bytes());
        labels.push(combine(kind_label(g.kind), name_h));
    }

    // Refinement rounds: enough to mix each gate with a deep neighborhood;
    // flip-flop feedback needs extra rounds to circulate. The count
    // depends only on renumbering-invariant quantities.
    let rounds = 3 + n.dffs().len().min(13);
    let mut next = labels.clone();
    for _ in 0..rounds {
        for id in n.ids() {
            let g = n.gate(id);
            let fold = match g.fanin.len() {
                0 => 0x5BF0_3635_DEAD_BEEF,
                1 => combine(1, labels[g.fanin[0].index()]),
                2 if commutative(g.kind) => {
                    let (a, b) = (labels[g.fanin[0].index()], labels[g.fanin[1].index()]);
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    combine(combine(2, lo), hi)
                }
                _ => {
                    let mut acc = 3u64;
                    for (pin, &f) in g.fanin.iter().enumerate() {
                        acc = combine(acc, combine(pin as u64, labels[f.index()]));
                    }
                    acc
                }
            };
            next[id.index()] = combine(labels[id.index()], fold);
        }
        std::mem::swap(&mut labels, &mut next);
    }

    let mut acc = Acc::new("rtlock-structural-hash-v1");
    acc.fold(fnv1a(n.name.as_bytes()));
    acc.fold(count as u64);

    // Order-insensitive aggregate over all gates: internal declaration
    // order cannot matter, while any single-gate mutation shifts the sum.
    let mut sum = 0u64;
    let mut xor = 0u64;
    for &l in &labels {
        sum = sum.wrapping_add(l);
        xor ^= l.rotate_left((l & 63) as u32);
    }
    acc.fold(sum);
    acc.fold(xor);

    // The boundary is ordered and named.
    acc.fold(n.inputs().len() as u64);
    for &g in n.inputs() {
        acc.fold(labels[g.index()]);
    }
    acc.fold(n.outputs().len() as u64);
    for (name, driver) in n.outputs() {
        acc.fold(fnv1a(name.as_bytes()));
        acc.fold(labels[driver.index()]);
    }
    for ports in [&n.input_ports, &n.output_ports] {
        acc.fold(ports.len() as u64);
        for p in ports {
            acc.fold(fnv1a(p.name.as_bytes()));
            acc.fold(p.bits.len() as u64);
            for &b in &p.bits {
                acc.fold(labels[b.index()]);
            }
        }
    }
    acc.fold(n.key_inputs.len() as u64);
    for &g in &n.key_inputs {
        acc.fold(labels[g.index()]);
    }
    acc.fold(n.scan_chain.len() as u64);
    for &g in &n.scan_chain {
        acc.fold(labels[g.index()]);
    }
    acc.finish()
}

/// Content hash of an opaque byte string (used to key artifacts whose
/// natural identity is a source text, e.g. elaboration keyed on the
/// printed RTL module).
pub fn bytes_hash(bytes: &[u8]) -> u128 {
    let mut acc = Acc::new("rtlock-bytes-hash-v1");
    acc.fold(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        acc.fold(u64::from_le_bytes(w));
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::GateKind;

    fn pair_netlist(swap_decl: bool) -> Netlist {
        // y = (a & b) | !(a ^ b); internal gates declared in either order.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let (g1, g2) = if swap_decl {
            let x = n.add_gate(GateKind::Xor, vec![a, b]);
            let t = n.add_gate(GateKind::And, vec![a, b]);
            (t, x)
        } else {
            let t = n.add_gate(GateKind::And, vec![a, b]);
            let x = n.add_gate(GateKind::Xor, vec![a, b]);
            (t, x)
        };
        let inv = n.add_gate(GateKind::Not, vec![g2]);
        let y = n.add_gate(GateKind::Or, vec![g1, inv]);
        n.add_output("y", y);
        n
    }

    #[test]
    fn stable_under_declaration_reorder() {
        assert_eq!(structural_hash(&pair_netlist(false)), structural_hash(&pair_netlist(true)));
    }

    #[test]
    fn commutative_fanin_order_irrelevant() {
        let build = |swap: bool| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a");
            let b = n.add_input("b");
            let g = if swap {
                n.add_gate(GateKind::And, vec![b, a])
            } else {
                n.add_gate(GateKind::And, vec![a, b])
            };
            n.add_output("y", g);
            n
        };
        assert_eq!(structural_hash(&build(false)), structural_hash(&build(true)));
    }

    #[test]
    fn mux_pin_order_matters() {
        let build = |swap: bool| {
            let mut n = Netlist::new("t");
            let s = n.add_input("s");
            let a = n.add_input("a");
            let b = n.add_input("b");
            let g = if swap {
                n.add_gate(GateKind::Mux, vec![s, b, a])
            } else {
                n.add_gate(GateKind::Mux, vec![s, a, b])
            };
            n.add_output("y", g);
            n
        };
        assert_ne!(structural_hash(&build(false)), structural_hash(&build(true)));
    }

    #[test]
    fn single_kind_mutation_changes_hash() {
        let mut n = pair_netlist(false);
        let h0 = structural_hash(&n);
        // Flip the AND (gate index 2) to OR.
        let id = n.ids().nth(2).unwrap();
        n.gate_mut(id).kind = GateKind::Or;
        assert_ne!(structural_hash(&n), h0);
    }

    #[test]
    fn dff_feedback_and_init_sensitivity() {
        let build = |init: bool| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a");
            let q = n.add_named_gate(GateKind::Dff { init }, vec![a], "q");
            let f = n.add_gate(GateKind::Xor, vec![q, a]);
            n.gate_mut(q).fanin[0] = f;
            n.add_output("y", f);
            n
        };
        assert_ne!(structural_hash(&build(false)), structural_hash(&build(true)));
        assert_eq!(structural_hash(&build(true)), structural_hash(&build(true)));
    }

    #[test]
    fn bytes_hash_differs_on_any_prefix() {
        let h = bytes_hash(b"module m; endmodule");
        assert_ne!(h, bytes_hash(b"module m; endmodul"));
        assert_ne!(h, bytes_hash(b""));
        assert_eq!(h, bytes_hash(b"module m; endmodule"));
    }
}
