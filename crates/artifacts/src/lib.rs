//! Content-addressed artifact cache for the RTLock flow.
//!
//! Every lock/attack/fuzz run used to re-elaborate, re-synthesize and
//! re-encode CNF from scratch even though the catalog, the attack
//! portfolio, and fuzz shards repeatedly process near-identical
//! structures. This crate amortizes those costs behind a content hash, in
//! three layers:
//!
//! * [`hash`] — a canonical structural hash of a netlist
//!   ([`structural_hash`]): Weisfeiler–Lehman-style refinement over the
//!   gate graph, stable across net renumbering and declaration reorder,
//!   sensitive to single-gate mutations, and fully deterministic (no
//!   `HashMap` iteration order anywhere).
//! * [`store`] — [`ArtifactStore`]: an in-memory tier (FIFO-capped,
//!   deterministic eviction) plus an optional on-disk tier that reuses
//!   `rtlock-store`'s `atomic_write` and CRC32 framing, so the crash-safety
//!   invariants of the campaign journal carry over: a torn or corrupted
//!   entry fails its checksum, is counted as poisoned, and is recomputed —
//!   never served.
//! * [`cached`] — typed get-or-compute wrappers for the four artifact
//!   kinds: elaborated netlists ([`cached_elaborate`]), optimized netlists
//!   ([`cached_optimize`]), SCOAP profiles ([`cached_scoap`]) and Tseitin
//!   CNF templates ([`cached_cnf_template`] / [`encode_comb_cached`]).
//!
//! # Determinism contract
//!
//! A cache hit returns byte-for-byte what the miss path would have
//! computed: payloads are canonical encodings, and every lookup compares
//! exact identity bytes (so hash collisions and isomorphic-but-renumbered
//! twins degrade to recomputation instead of producing artifacts in the
//! wrong gate numbering). Reports produced with the cache hot, cold,
//! shared, or disabled are therefore byte-identical; only the
//! [`CacheStats`] counters — which must never feed a canonical rendering —
//! differ. Lookups are [`CancelToken`](rtlock_governor::CancelToken)-bounded
//! and degrade to a miss when the budget is exhausted; partial artifacts
//! (e.g. an interrupted optimization) are never stored.
//!
//! ```
//! use rtlock_artifacts::{ArtifactStore, cached_optimize};
//! use rtlock_governor::CancelToken;
//! use rtlock_netlist::{GateKind, Netlist};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(GateKind::And, vec![a, b]);
//! n.add_output("y", g);
//!
//! let store = ArtifactStore::in_memory();
//! let token = CancelToken::unlimited();
//! let (cold, _) = cached_optimize(Some(&store), &n, &token);
//! let (warm, _) = cached_optimize(Some(&store), &n, &token);
//! assert_eq!(cold, warm);
//! assert_eq!(store.stats().hits, 1);
//! ```

#![warn(missing_docs)]

pub mod cached;
pub mod hash;
pub mod store;

pub use cached::{
    cached_cnf_template, cached_elaborate, cached_optimize, cached_scoap, encode_comb_cached,
    module_identity, CnfTemplate,
};
pub use hash::{bytes_hash, structural_hash};
pub use store::{ArtifactKind, ArtifactStore, CacheConfig, CacheStats};
