//! Typed get-or-compute helpers over the byte-level [`ArtifactStore`].
//!
//! Each helper takes `Option<&ArtifactStore>` so call sites stay a
//! one-line change from their uncached form: `None` is exactly the old
//! code path. Every helper upholds the determinism contract — a hit
//! returns precisely the value the miss path would compute (the payload
//! is the canonical encoding of that value, and the identity-bytes check
//! in the store rules out collisions), so cached and uncached runs are
//! byte-identical apart from the stats counters.

use crate::hash::{bytes_hash, structural_hash};
use crate::store::{ArtifactKind, ArtifactStore};
use rtlock_governor::CancelToken;
use rtlock_netlist::{codec, CnfBuilder, Netlist, Scoap};
use rtlock_rtl::Module;
use rtlock_synth::{elaborate, optimize, OptStats, SynthError};

/// Canonical identity bytes of an RTL module: its printed source.
pub fn module_identity(module: &Module) -> Vec<u8> {
    rtlock_rtl::printer::print(module).into_bytes()
}

/// Elaborates `module`, consulting the cache first. Only successful
/// elaborations are cached; errors always recompute.
pub fn cached_elaborate(
    store: Option<&ArtifactStore>,
    module: &Module,
    token: &CancelToken,
) -> Result<Netlist, SynthError> {
    let Some(store) = store else { return elaborate(module) };
    let identity = module_identity(module);
    let hash = bytes_hash(&identity);
    if let Some(bytes) = store.get(ArtifactKind::ElabNetlist, hash, &identity, token) {
        match codec::decode(&bytes) {
            Ok(n) => return Ok(n),
            Err(_) => store.note_poisoned(),
        }
    }
    let n = elaborate(module)?;
    store.put(ArtifactKind::ElabNetlist, hash, &identity, &codec::encode(&n));
    Ok(n)
}

fn encode_opt(netlist: &Netlist, stats: &OptStats) -> Vec<u8> {
    let mut out = codec::encode(netlist);
    out.extend_from_slice(&(stats.gates_removed as u64).to_le_bytes());
    out.extend_from_slice(&(stats.iterations as u64).to_le_bytes());
    out
}

fn decode_opt(bytes: &[u8]) -> Option<(Netlist, OptStats)> {
    if bytes.len() < 16 {
        return None;
    }
    let (net_bytes, tail) = bytes.split_at(bytes.len() - 16);
    let netlist = codec::decode(net_bytes).ok()?;
    let gates_removed = u64::from_le_bytes(tail[..8].try_into().ok()?) as usize;
    let iterations = u64::from_le_bytes(tail[8..].try_into().ok()?) as usize;
    Some((netlist, OptStats { gates_removed, iterations, interrupted: false }))
}

/// Returns an optimized copy of `netlist` (and the optimizer stats),
/// consulting the cache first. Interrupted (partially optimized) results
/// are returned but never cached — the store holds complete artifacts
/// only.
pub fn cached_optimize(
    store: Option<&ArtifactStore>,
    netlist: &Netlist,
    token: &CancelToken,
) -> (Netlist, OptStats) {
    let Some(store) = store else {
        let mut n = netlist.clone();
        let stats = optimize(&mut n);
        return (n, stats);
    };
    let identity = codec::encode(netlist);
    let hash = structural_hash(netlist);
    if let Some(bytes) = store.get(ArtifactKind::OptNetlist, hash, &identity, token) {
        match decode_opt(&bytes) {
            Some(hit) => return hit,
            None => store.note_poisoned(),
        }
    }
    let mut n = netlist.clone();
    let stats = optimize(&mut n);
    if !stats.interrupted {
        store.put(ArtifactKind::OptNetlist, hash, &identity, &encode_opt(&n, &stats));
    }
    (n, stats)
}

fn encode_scoap(s: &Scoap) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + s.co.len() * 12);
    for v in [&s.cc0, &s.cc1, &s.co] {
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        for &x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

fn decode_scoap(bytes: &[u8], expect_len: usize) -> Option<Scoap> {
    let mut cur = bytes;
    let mut vecs = Vec::with_capacity(3);
    for _ in 0..3 {
        if cur.len() < 4 {
            return None;
        }
        let (len, rest) = cur.split_at(4);
        let len = u32::from_le_bytes(len.try_into().ok()?) as usize;
        if len != expect_len || rest.len() < len * 4 {
            return None;
        }
        let (data, rest) = rest.split_at(len * 4);
        vecs.push(data.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect());
        cur = rest;
    }
    if !cur.is_empty() {
        return None;
    }
    let co = vecs.pop()?;
    let cc1 = vecs.pop()?;
    let cc0 = vecs.pop()?;
    Some(Scoap { cc0, cc1, co })
}

/// SCOAP profile of `netlist`, consulting the cache first.
pub fn cached_scoap(store: Option<&ArtifactStore>, netlist: &Netlist, token: &CancelToken) -> Scoap {
    let Some(store) = store else { return rtlock_netlist::scoap::analyze(netlist) };
    let identity = codec::encode(netlist);
    let hash = structural_hash(netlist);
    if let Some(bytes) = store.get(ArtifactKind::Scoap, hash, &identity, token) {
        match decode_scoap(&bytes, netlist.len()) {
            Some(s) => return s,
            None => store.note_poisoned(),
        }
    }
    let s = rtlock_netlist::scoap::analyze(netlist);
    store.put(ArtifactKind::Scoap, hash, &identity, &encode_scoap(&s));
    s
}

/// A reusable Tseitin encoding of a netlist's combinational function.
///
/// [`CnfBuilder::encode_comb`] takes caller-chosen input/state variables,
/// so the cacheable object is a *template* encoded against canonical
/// variables (inputs `1..=n_in`, states `n_in+1..=n_in+n_state`, internals
/// above). [`CnfTemplate::instantiate`] rewrites the template into a
/// target builder: external variables map to the caller's literals,
/// internal variables shift onto freshly allocated ones. Because
/// `encode_comb` allocates internals in deterministic topological order,
/// instantiation reproduces the exact clause list and variable numbering a
/// direct `encode_comb` call would have produced — cached and uncached
/// attacks solve literally the same CNF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfTemplate {
    n_in: u32,
    n_state: u32,
    /// Total variables in template numbering (externals + internals).
    num_vars: u32,
    /// Per-gate output literal, template numbering.
    gate_vars: Vec<i32>,
    clauses: Vec<Vec<i32>>,
}

impl CnfTemplate {
    /// Encodes `netlist` once against canonical variables.
    pub fn build(netlist: &Netlist) -> CnfTemplate {
        let mut cnf = CnfBuilder::new();
        let in_vars: Vec<i32> = netlist.inputs().iter().map(|_| cnf.fresh_var()).collect();
        let state_vars: Vec<i32> = netlist.dffs().iter().map(|_| cnf.fresh_var()).collect();
        let gate_vars = cnf.encode_comb(netlist, &in_vars, &state_vars);
        let n_in = in_vars.len() as u32;
        let n_state = state_vars.len() as u32;
        let (num_vars, clauses) = cnf.into_parts();
        CnfTemplate { n_in, n_state, num_vars: num_vars as u32, gate_vars, clauses }
    }

    /// Replays the template into `cnf` with the caller's external
    /// literals, returning the per-gate literal map (the exact value
    /// `encode_comb` would return).
    ///
    /// # Panics
    ///
    /// Panics if the literal counts do not match the template.
    pub fn instantiate(
        &self,
        cnf: &mut CnfBuilder,
        in_vars: &[i32],
        state_vars: &[i32],
    ) -> Vec<i32> {
        assert_eq!(in_vars.len(), self.n_in as usize, "wrong number of input vars");
        assert_eq!(state_vars.len(), self.n_state as usize, "wrong number of state vars");
        let ext = (self.n_in + self.n_state) as i32;
        let base = cnf.num_vars() as i32;
        for _ in ext..self.num_vars as i32 {
            cnf.fresh_var();
        }
        let map = |l: i32| -> i32 {
            let v = l.abs();
            let m = if v <= self.n_in as i32 {
                in_vars[(v - 1) as usize]
            } else if v <= ext {
                state_vars[(v - 1 - self.n_in as i32) as usize]
            } else {
                base + (v - ext)
            };
            if l < 0 {
                -m
            } else {
                m
            }
        };
        let mut mapped = Vec::with_capacity(8);
        for clause in &self.clauses {
            mapped.clear();
            mapped.extend(clause.iter().map(|&l| map(l)));
            cnf.add_clause(&mapped);
        }
        self.gate_vars.iter().map(|&l| map(l)).collect()
    }

    fn encode_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for v in [self.n_in, self.n_state, self.num_vars] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gate_vars.len() as u32).to_le_bytes());
        for &l in &self.gate_vars {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&(self.clauses.len() as u32).to_le_bytes());
        for clause in &self.clauses {
            out.extend_from_slice(&(clause.len() as u32).to_le_bytes());
            for &l in clause {
                out.extend_from_slice(&l.to_le_bytes());
            }
        }
        out
    }

    fn decode_bytes(bytes: &[u8]) -> Option<CnfTemplate> {
        struct R<'a>(&'a [u8]);
        impl R<'_> {
            fn u32(&mut self) -> Option<u32> {
                if self.0.len() < 4 {
                    return None;
                }
                let (w, rest) = self.0.split_at(4);
                self.0 = rest;
                Some(u32::from_le_bytes(w.try_into().ok()?))
            }
            fn i32s(&mut self, n: usize) -> Option<Vec<i32>> {
                if self.0.len() < n * 4 {
                    return None;
                }
                let (data, rest) = self.0.split_at(n * 4);
                self.0 = rest;
                Some(data.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect())
            }
        }
        let mut r = R(bytes);
        let n_in = r.u32()?;
        let n_state = r.u32()?;
        let num_vars = r.u32()?;
        let gv_len = r.u32()? as usize;
        let gate_vars = r.i32s(gv_len)?;
        let clause_count = r.u32()? as usize;
        let mut clauses = Vec::with_capacity(clause_count.min(bytes.len() / 4));
        for _ in 0..clause_count {
            let len = r.u32()? as usize;
            clauses.push(r.i32s(len)?);
        }
        if !r.0.is_empty() {
            return None;
        }
        // Sanity: every literal must reference a template variable.
        let in_range = |l: i32| l != 0 && l.unsigned_abs() <= num_vars;
        if !gate_vars.iter().chain(clauses.iter().flatten()).all(|&l| in_range(l)) {
            return None;
        }
        Some(CnfTemplate { n_in, n_state, num_vars, gate_vars, clauses })
    }
}

/// CNF template for `netlist`, consulting the cache first.
pub fn cached_cnf_template(
    store: Option<&ArtifactStore>,
    netlist: &Netlist,
    token: &CancelToken,
) -> CnfTemplate {
    let Some(store) = store else { return CnfTemplate::build(netlist) };
    let identity = codec::encode(netlist);
    let hash = structural_hash(netlist);
    if let Some(bytes) = store.get(ArtifactKind::Cnf, hash, &identity, token) {
        match CnfTemplate::decode_bytes(&bytes) {
            Some(t) => return t,
            None => store.note_poisoned(),
        }
    }
    let t = CnfTemplate::build(netlist);
    store.put(ArtifactKind::Cnf, hash, &identity, &t.encode_bytes());
    t
}

/// Drop-in cached replacement for [`CnfBuilder::encode_comb`].
pub fn encode_comb_cached(
    store: Option<&ArtifactStore>,
    cnf: &mut CnfBuilder,
    netlist: &Netlist,
    in_vars: &[i32],
    state_vars: &[i32],
    token: &CancelToken,
) -> Vec<i32> {
    match store {
        None => cnf.encode_comb(netlist, in_vars, state_vars),
        Some(_) => cached_cnf_template(store, netlist, token).instantiate(cnf, in_vars, state_vars),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::GateKind;

    fn sample() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        let m = n.add_gate(GateKind::Mux, vec![c, x, a]);
        let q = n.add_named_gate(GateKind::Dff { init: false }, vec![m], "q");
        let y = n.add_gate(GateKind::Nand, vec![q, x]);
        n.add_output("y", y);
        n
    }

    #[test]
    fn template_instantiation_matches_direct_encode() {
        let n = sample();
        // Direct encode into a builder with some pre-existing vars.
        let mut direct = CnfBuilder::new();
        let pre: Vec<i32> = (0..5).map(|_| direct.fresh_var()).collect();
        let in_vars = [pre[0], -pre[1], pre[2]];
        let state_vars = [pre[3]];
        let direct_vars = direct.encode_comb(&n, &in_vars, &state_vars);

        let mut via_tpl = CnfBuilder::new();
        let pre2: Vec<i32> = (0..5).map(|_| via_tpl.fresh_var()).collect();
        assert_eq!(pre, pre2);
        let tpl = CnfTemplate::build(&n);
        let tpl_vars = tpl.instantiate(&mut via_tpl, &in_vars, &state_vars);

        assert_eq!(direct_vars, tpl_vars);
        assert_eq!(direct.num_vars(), via_tpl.num_vars());
        assert_eq!(direct.clauses(), via_tpl.clauses());
    }

    #[test]
    fn template_bytes_roundtrip() {
        let tpl = CnfTemplate::build(&sample());
        let bytes = tpl.encode_bytes();
        assert_eq!(CnfTemplate::decode_bytes(&bytes).as_ref(), Some(&tpl));
        for len in 0..bytes.len() {
            let _ = CnfTemplate::decode_bytes(&bytes[..len]);
        }
    }

    #[test]
    fn cached_scoap_hits_return_exact_profile() {
        let n = sample();
        let store = ArtifactStore::in_memory();
        let t = CancelToken::unlimited();
        let cold = cached_scoap(Some(&store), &n, &t);
        let warm = cached_scoap(Some(&store), &n, &t);
        assert_eq!(cold, warm);
        assert_eq!(cold, rtlock_netlist::scoap::analyze(&n));
        let st = store.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
    }

    #[test]
    fn cached_optimize_hot_equals_cold() {
        let n = sample();
        let store = ArtifactStore::in_memory();
        let t = CancelToken::unlimited();
        let (cold, cold_stats) = cached_optimize(Some(&store), &n, &t);
        let (warm, warm_stats) = cached_optimize(Some(&store), &n, &t);
        assert_eq!(cold, warm);
        assert_eq!(cold_stats, warm_stats);
        let (plain, _) = cached_optimize(None, &n, &t);
        assert_eq!(cold, plain);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn cached_elaborate_hot_equals_cold() {
        let m = rtlock_rtl::parse(
            "module t(input a, input b, output y);\n  assign y = a & b;\nendmodule",
        )
        .expect("parse");
        let store = ArtifactStore::in_memory();
        let t = CancelToken::unlimited();
        let cold = cached_elaborate(Some(&store), &m, &t).expect("elab");
        let warm = cached_elaborate(Some(&store), &m, &t).expect("elab");
        assert_eq!(cold, warm);
        assert_eq!(cold, elaborate(&m).expect("elab"));
        assert_eq!(store.stats().hits, 1);
    }
}
