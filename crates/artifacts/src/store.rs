//! The two-tier content-addressed artifact store.
//!
//! **Memory tier** — a mutex-guarded map from `(kind, structural hash)`
//! to entries, FIFO-capped at [`CacheConfig::max_entries`] keys with
//! deterministic eviction order.
//!
//! **Disk tier** (optional) — one file per key under
//! [`CacheConfig::disk_dir`], written with `rtlock-store`'s
//! [`atomic_write`] (temp + fsync + rename) and framed as
//! `magic ‖ crc32 ‖ identity ‖ payload`, so a crash leaves either the old
//! bytes or the new bytes and any torn or bit-flipped entry fails its
//! checksum, is counted as *poisoned*, deleted, and recomputed — never
//! served.
//!
//! **Soundness rule**: the structural hash is renumbering-invariant, but
//! cached artifacts are expressed in concrete gate ids. Every entry
//! therefore carries the *exact identity bytes* of the input it was
//! computed from (the canonical netlist encoding), and [`ArtifactStore::get`]
//! compares them on every lookup. Hash collisions and isomorphic twins
//! miss and recompute; a hit always returns bytes that the cold
//! computation would have produced, which is what makes cached runs
//! byte-identical to uncached ones.
//!
//! Lookups are [`CancelToken`]-bounded: a store consulted past its budget
//! degrades to a miss (the caller recomputes under its own governor)
//! rather than blocking or returning partial artifacts.

use rtlock_governor::CancelToken;
use rtlock_store::atomic_write;
use rtlock_store::journal::crc32;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// On-disk entry magic, bumped on any framing change.
const DISK_MAGIC: &[u8; 5] = b"RART1";

/// What an artifact is — part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Elaborated netlist, keyed by the printed RTL module source.
    ElabNetlist,
    /// Optimized netlist (plus optimizer stats), keyed by the input netlist.
    OptNetlist,
    /// Tseitin CNF template, keyed by the encoded netlist.
    Cnf,
    /// SCOAP testability profile, keyed by the netlist.
    Scoap,
}

impl ArtifactKind {
    /// Stable short name (used in file names and stats lines).
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::ElabNetlist => "elab",
            ArtifactKind::OptNetlist => "opt",
            ArtifactKind::Cnf => "cnf",
            ArtifactKind::Scoap => "scoap",
        }
    }
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of keys held in the memory tier; the oldest key is
    /// evicted (deterministically, insertion order) beyond this.
    pub max_entries: usize,
    /// Directory of the optional disk tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_entries: 4096, disk_dir: None }
    }
}

/// Monotonic counters, snapshotted by [`ArtifactStore::stats`].
///
/// These are observability data only — they must never feed into any
/// canonical report rendering, because hot and cold runs differ here by
/// construction while their reports must stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to recomputation (including identity
    /// mismatches and cancel-bounded lookups).
    pub misses: u64,
    /// Keys evicted from the memory tier.
    pub evictions: u64,
    /// Corrupt or undecodable entries detected (checksum/codec) and
    /// discarded instead of served.
    pub poisoned: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary.
    pub fn line(&self) -> String {
        format!(
            "hits={} misses={} evictions={} poisoned={} hit_rate={:.3}",
            self.hits,
            self.misses,
            self.evictions,
            self.poisoned,
            self.hit_rate()
        )
    }
}

struct Entry {
    identity: Vec<u8>,
    payload: Vec<u8>,
}

#[derive(Default)]
struct MemTier {
    map: HashMap<(ArtifactKind, u128), Vec<Entry>>,
    order: VecDeque<(ArtifactKind, u128)>,
}

/// Crash-injection hook for the CI kill-mid-write job: after N disk puts
/// the store writes a deliberately torn entry (half a frame, bypassing
/// `atomic_write`) and aborts the process. The resumed run must detect the
/// torn entry via its checksum, recompute, and produce byte-identical
/// reports.
fn crash_after_puts() -> Option<u64> {
    static ARMED: OnceLock<Option<u64>> = OnceLock::new();
    *ARMED.get_or_init(|| {
        std::env::var("RTLOCK_CACHE_CRASH_AFTER_PUTS").ok().and_then(|v| v.parse().ok())
    })
}

/// The content-addressed artifact store (see module docs).
pub struct ArtifactStore {
    cfg: CacheConfig,
    mem: Mutex<MemTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poisoned: AtomicU64,
    disk_puts: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ArtifactStore {
    /// Creates a store with the given configuration.
    pub fn new(cfg: CacheConfig) -> ArtifactStore {
        ArtifactStore {
            cfg,
            mem: Mutex::new(MemTier::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            disk_puts: AtomicU64::new(0),
        }
    }

    /// Memory-only store with default capacity.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore::new(CacheConfig::default())
    }

    /// Store with both tiers; the directory is created on first put.
    pub fn on_disk(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore::new(CacheConfig { disk_dir: Some(dir.into()), ..CacheConfig::default() })
    }

    /// Snapshot of the hit/miss/evict/poison counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Records that a typed decoder rejected a frame the store served
    /// (counted as poisoned; the caller recomputes).
    pub fn note_poisoned(&self) {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
    }

    fn disk_path(&self, kind: ArtifactKind, hash: u128) -> Option<PathBuf> {
        self.cfg.disk_dir.as_ref().map(|d| d.join(format!("{}-{hash:032x}.art", kind.as_str())))
    }

    /// Looks up an artifact. Returns the payload only when the stored
    /// identity bytes equal `identity` exactly; anything else — absence,
    /// identity mismatch, checksum failure, or an exhausted `token` — is a
    /// miss and the caller recomputes.
    pub fn get(
        &self,
        kind: ArtifactKind,
        hash: u128,
        identity: &[u8],
        token: &CancelToken,
    ) -> Option<Vec<u8>> {
        if token.should_stop().is_some() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        {
            let mem = self.mem.lock().expect("artifact store poisoned lock");
            if let Some(entries) = mem.map.get(&(kind, hash)) {
                if let Some(e) = entries.iter().find(|e| e.identity == identity) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(e.payload.clone());
                }
            }
        }
        if let Some(path) = self.disk_path(kind, hash) {
            if let Ok(bytes) = std::fs::read(&path) {
                match parse_frame(&bytes) {
                    Some((id, payload)) if id == identity => {
                        self.insert_mem(kind, hash, identity.to_vec(), payload.to_vec());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(payload.to_vec());
                    }
                    Some(_) => {
                        // Valid frame for a different identity (hash
                        // collision or renumbered twin): plain miss.
                    }
                    None => {
                        // Torn or corrupted entry: poisoned, self-heal by
                        // deleting so the recomputed artifact replaces it.
                        self.poisoned.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a *complete* artifact. Callers must never put partial
    /// results (e.g. an interrupted optimization).
    pub fn put(&self, kind: ArtifactKind, hash: u128, identity: &[u8], payload: &[u8]) {
        self.insert_mem(kind, hash, identity.to_vec(), payload.to_vec());
        if let Some(path) = self.disk_path(kind, hash) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let frame = build_frame(identity, payload);
            let n = self.disk_puts.fetch_add(1, Ordering::Relaxed) + 1;
            if crash_after_puts() == Some(n) {
                // Simulate dying mid-write: leave a torn frame at the
                // final path (no atomic rename) and abort the process.
                let _ = std::fs::write(&path, &frame[..frame.len() / 2]);
                std::process::abort();
            }
            let _ = atomic_write(&path, &frame);
        }
    }

    fn insert_mem(&self, kind: ArtifactKind, hash: u128, identity: Vec<u8>, payload: Vec<u8>) {
        let mut mem = self.mem.lock().expect("artifact store poisoned lock");
        let key = (kind, hash);
        match mem.map.get_mut(&key) {
            Some(entries) => {
                if entries.iter().any(|e| e.identity == identity) {
                    return;
                }
                entries.push(Entry { identity, payload });
            }
            None => {
                while mem.order.len() >= self.cfg.max_entries {
                    if let Some(old) = mem.order.pop_front() {
                        mem.map.remove(&old);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                mem.map.insert(key, vec![Entry { identity, payload }]);
                mem.order.push_back(key);
            }
        }
    }
}

fn build_frame(identity: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + identity.len() + payload.len());
    body.extend_from_slice(&(identity.len() as u32).to_le_bytes());
    body.extend_from_slice(identity);
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(payload);
    let mut frame = Vec::with_capacity(body.len() + 9);
    frame.extend_from_slice(DISK_MAGIC);
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn parse_frame(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let rest = bytes.strip_prefix(DISK_MAGIC)?;
    if rest.len() < 4 {
        return None;
    }
    let (crc_bytes, body) = rest.split_at(4);
    let expect = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != expect {
        return None;
    }
    let take = |b: &mut &[u8]| -> Option<usize> {
        if b.len() < 4 {
            return None;
        }
        let (len, rest) = b.split_at(4);
        *b = rest;
        Some(u32::from_le_bytes(len.try_into().ok()?) as usize)
    };
    let mut cur = body;
    let id_len = take(&mut cur)?;
    if cur.len() < id_len {
        return None;
    }
    let (identity, mut cur) = cur.split_at(id_len);
    let pay_len = take(&mut cur)?;
    if cur.len() != pay_len {
        return None;
    }
    Some((identity, cur))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rtlock_artifacts_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let s = ArtifactStore::in_memory();
        let t = CancelToken::unlimited();
        assert!(s.get(ArtifactKind::Scoap, 7, b"id", &t).is_none());
        s.put(ArtifactKind::Scoap, 7, b"id", b"payload");
        assert_eq!(s.get(ArtifactKind::Scoap, 7, b"id", &t).as_deref(), Some(&b"payload"[..]));
        // Identity mismatch on the same hash is a miss, not a wrong hit.
        assert!(s.get(ArtifactKind::Scoap, 7, b"other", &t).is_none());
        let st = s.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
    }

    #[test]
    fn cancelled_lookup_degrades_to_miss() {
        let s = ArtifactStore::in_memory();
        s.put(ArtifactKind::Cnf, 1, b"x", b"y");
        let t = CancelToken::unlimited();
        t.cancel();
        assert!(s.get(ArtifactKind::Cnf, 1, b"x", &t).is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let s = ArtifactStore::new(CacheConfig { max_entries: 2, disk_dir: None });
        let t = CancelToken::unlimited();
        s.put(ArtifactKind::Scoap, 1, b"a", b"1");
        s.put(ArtifactKind::Scoap, 2, b"b", b"2");
        s.put(ArtifactKind::Scoap, 3, b"c", b"3");
        assert!(s.get(ArtifactKind::Scoap, 1, b"a", &t).is_none(), "oldest evicted");
        assert!(s.get(ArtifactKind::Scoap, 3, b"c", &t).is_some());
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn disk_tier_survives_store_instances() {
        let dir = tmpdir("disk");
        let t = CancelToken::unlimited();
        {
            let s = ArtifactStore::on_disk(&dir);
            s.put(ArtifactKind::OptNetlist, 42, b"net", b"opt-bytes");
        }
        let s2 = ArtifactStore::on_disk(&dir);
        assert_eq!(
            s2.get(ArtifactKind::OptNetlist, 42, b"net", &t).as_deref(),
            Some(&b"opt-bytes"[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_is_poisoned_and_healed() {
        let dir = tmpdir("poison");
        let t = CancelToken::unlimited();
        let s = ArtifactStore::on_disk(&dir);
        s.put(ArtifactKind::Cnf, 9, b"ident", b"cnf-bytes");
        let path = dir.join(format!("cnf-{:032x}.art", 9u128));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let fresh = ArtifactStore::on_disk(&dir);
        assert!(fresh.get(ArtifactKind::Cnf, 9, b"ident", &t).is_none(), "corrupt entry not served");
        let st = fresh.stats();
        assert_eq!((st.poisoned, st.misses), (1, 1));
        assert!(!path.exists(), "poisoned entry deleted for self-heal");
        // Recompute-and-put heals the slot.
        fresh.put(ArtifactKind::Cnf, 9, b"ident", b"cnf-bytes");
        let again = ArtifactStore::on_disk(&dir);
        assert!(again.get(ArtifactKind::Cnf, 9, b"ident", &t).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_frame_rejected_at_every_truncation() {
        let frame = build_frame(b"identity-bytes", b"payload-bytes");
        assert!(parse_frame(&frame).is_some());
        for len in 0..frame.len() {
            assert!(parse_frame(&frame[..len]).is_none(), "truncation at {len} accepted");
        }
    }
}
