//! Fixture-backed coverage of the rule catalog: every rule must flag its
//! known-bad snippet and stay silent on the clean twin, linting must be
//! deterministic across runs, and parser/bench errors must share the
//! diagnostic format.

use proptest::prelude::*;
use rtlock_designs::{lint_fixtures, FixtureKind, LintFixture};
use rtlock_lint::{lint, rule_catalog, Diagnostic, LintReport, LintTarget};
use rtlock_netlist::{from_bench, Netlist};
use rtlock_rtl::{parse, Module};

enum Parsed {
    Rtl(Module),
    Gates(Netlist),
}

fn parse_fixture(f: &LintFixture, src: &str) -> Parsed {
    match f.kind {
        FixtureKind::Verilog => {
            Parsed::Rtl(parse(src).unwrap_or_else(|e| panic!("{} ({}): {e}", f.rule, f.name)))
        }
        FixtureKind::Bench => {
            let mut n =
                from_bench(src).unwrap_or_else(|e| panic!("{} ({}): {e}", f.rule, f.name));
            if f.full_scan {
                n.scan_chain = n.dffs();
            }
            Parsed::Gates(n)
        }
    }
}

fn lint_parsed(p: &Parsed) -> LintReport {
    match p {
        Parsed::Rtl(m) => lint(&LintTarget::rtl(m)),
        Parsed::Gates(n) => lint(&LintTarget::gates(n)),
    }
}

fn fired(report: &LintReport, rule: &str) -> bool {
    report.diagnostics.iter().any(|d| d.rule == rule)
}

#[test]
fn every_rule_has_a_fixture_pair() {
    let fixtures = lint_fixtures();
    for (id, _, _) in rule_catalog() {
        assert!(
            fixtures.iter().any(|f| f.rule == id),
            "rule {id} has no fixture pair"
        );
    }
}

#[test]
fn every_rule_flags_its_bad_fixture() {
    for f in lint_fixtures() {
        let report = lint_parsed(&parse_fixture(&f, f.bad));
        assert!(
            fired(&report, f.rule),
            "{} ({}) silent on the bad fixture; report:\n{}",
            f.rule,
            f.name,
            report.to_text()
        );
    }
}

#[test]
fn every_rule_stays_silent_on_the_clean_twin() {
    for f in lint_fixtures() {
        let report = lint_parsed(&parse_fixture(&f, f.good));
        assert!(
            !fired(&report, f.rule),
            "{} ({}) fired on the clean twin; report:\n{}",
            f.rule,
            f.name,
            report.to_text()
        );
    }
}

#[test]
fn duplicate_bench_input_is_a_multi_driver_error() {
    let err = from_bench("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap_err();
    let d = Diagnostic::from(&err);
    assert_eq!(d.rule, "S002", "duplicate INPUT maps onto the multi-driver rule: {d}");
    assert_eq!(d.span.line, Some(2));
    // Duplicate gate definitions keep reporting under the same rule.
    let err = from_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\ny = NOT(a)\n").unwrap_err();
    assert_eq!(Diagnostic::from(&err).rule, "S002");
    // Plain syntax errors stay distinct.
    let err = from_bench("INPUT(a)\ny = FROB(a)\n").unwrap_err();
    assert_eq!(Diagnostic::from(&err).rule, "P002");
}

#[test]
fn parse_errors_share_the_diagnostic_format() {
    let e = parse("module t(input a, output y);\n  assign y = $$;\nendmodule").unwrap_err();
    let d = Diagnostic::from(&e);
    assert_eq!(d.rule, "P001");
    assert_eq!(d.span.line, Some(2));
    assert!(d.span.col.is_some(), "parse diagnostics carry a column: {d}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn linting_is_deterministic(idx in any::<u8>(), runs in 2usize..4) {
        let fixtures = lint_fixtures();
        let f = &fixtures[idx as usize % fixtures.len()];
        for src in [f.bad, f.good] {
            let parsed = parse_fixture(f, src);
            let first = lint_parsed(&parsed);
            for _ in 1..runs {
                prop_assert_eq!(&lint_parsed(&parsed), &first);
            }
            // A fresh parse must not change the verdict either.
            let reparsed = lint_parsed(&parse_fixture(f, src));
            prop_assert_eq!(&reparsed, &first);
        }
    }
}
