//! What a lint run looks at: an RTL module, a gate netlist, or both,
//! plus the phase and scan-lock context rules use to scale severity.

use crate::diag::LintPhase;
use rtlock_dataflow::{NetAnalysis, RtlAnalysis};
use rtlock_netlist::scoap::{self, Scoap};
use rtlock_netlist::{GateId, Netlist};
use rtlock_rtl::cdfg::Cdfg;
use rtlock_rtl::fsm::{self, Fsm};
use rtlock_rtl::{Dir, Module, NetId};
use std::cell::OnceCell;

/// Key ports added by the locking transforms follow this prefix (kept in
/// sync with `rtlock::transforms::KEY_PORT_PREFIX`; the flow's post-lock
/// gate asserts the two agree).
pub const KEY_PORT_PREFIX: &str = "lock_key_";

/// The subject of one lint run.
///
/// Rules see whichever layers are present: RTL-level rules check
/// [`LintTarget::module`], netlist-level rules check
/// [`LintTarget::netlist`], and rules that exist at both layers prefer
/// the RTL view when both are given (it has source locations). Derived
/// analyses (CDFG, FSMs, SCOAP) are computed once on first use and shared
/// across rules.
pub struct LintTarget<'a> {
    /// The RTL view, when linting source or a locked module.
    pub module: Option<&'a Module>,
    /// The gate-level view, when linting a netlist.
    pub netlist: Option<&'a Netlist>,
    /// Which flow gate (or standalone use) this run serves.
    pub phase: LintPhase,
    /// `true` when scan locking protects test-mode access; scan-leak
    /// findings downgrade from `Deny` to `Warn` under this mitigation.
    pub scan_locked: bool,
    cdfg: OnceCell<Cdfg>,
    fsms: OnceCell<Vec<Fsm>>,
    scoap: OnceCell<Scoap>,
    dataflow: OnceCell<NetAnalysis>,
    rtl_dataflow: OnceCell<RtlAnalysis>,
}

impl<'a> LintTarget<'a> {
    /// A target over RTL only.
    pub fn rtl(module: &'a Module) -> LintTarget<'a> {
        LintTarget { module: Some(module), ..LintTarget::rtl_none() }
    }

    /// A target over a gate netlist only.
    pub fn gates(netlist: &'a Netlist) -> LintTarget<'a> {
        LintTarget { netlist: Some(netlist), ..LintTarget::rtl_none() }
    }

    /// A target over both layers of the same design.
    pub fn full(module: &'a Module, netlist: &'a Netlist) -> LintTarget<'a> {
        LintTarget { module: Some(module), netlist: Some(netlist), ..LintTarget::rtl_none() }
    }

    fn rtl_none() -> LintTarget<'a> {
        LintTarget {
            module: None,
            netlist: None,
            phase: LintPhase::Standalone,
            scan_locked: false,
            cdfg: OnceCell::new(),
            fsms: OnceCell::new(),
            scoap: OnceCell::new(),
            dataflow: OnceCell::new(),
            rtl_dataflow: OnceCell::new(),
        }
    }

    /// Sets the phase (builder-style).
    #[must_use]
    pub fn with_phase(mut self, phase: LintPhase) -> LintTarget<'a> {
        self.phase = phase;
        self
    }

    /// Marks test-mode access as protected by scan locking.
    #[must_use]
    pub fn with_scan_locked(mut self, locked: bool) -> LintTarget<'a> {
        self.scan_locked = locked;
        self
    }

    /// Pre-seeds the SCOAP profile (builder-style), e.g. from the flow's
    /// content-addressed artifact cache, so rules sharing this target never
    /// recompute it. The caller must supply the profile of *this* target's
    /// netlist; it is ignored when the target has no netlist layer.
    #[must_use]
    pub fn with_scoap(self, profile: Scoap) -> LintTarget<'a> {
        if self.netlist.is_some() {
            let _ = self.scoap.set(profile);
        }
        self
    }

    /// The CDFG of the module, built once (`None` without a module).
    pub fn cdfg(&self) -> Option<&Cdfg> {
        let m = self.module?;
        Some(self.cdfg.get_or_init(|| Cdfg::build(m)))
    }

    /// Extracted FSMs of the module (empty without a module).
    pub fn fsms(&self) -> &[Fsm] {
        match self.module {
            Some(m) => self.fsms.get_or_init(|| fsm::extract(m)),
            None => &[],
        }
    }

    /// SCOAP testability numbers of the netlist (`None` without one).
    pub fn scoap(&self) -> Option<&Scoap> {
        let n = self.netlist?;
        Some(self.scoap.get_or_init(|| scoap::analyze(n)))
    }

    /// Key input ports of the module (nets named `lock_key_*`).
    pub fn key_nets(&self) -> Vec<NetId> {
        let Some(m) = self.module else { return Vec::new() };
        m.ports
            .iter()
            .copied()
            .filter(|&p| {
                m.net(p).dir == Some(Dir::Input) && m.net(p).name.starts_with(KEY_PORT_PREFIX)
            })
            .collect()
    }

    /// Key inputs of the netlist (marked via `Netlist::key_inputs`).
    pub fn key_gates(&self) -> &[GateId] {
        self.netlist.map(|n| n.key_inputs.as_slice()).unwrap_or(&[])
    }

    /// Whole-netlist dataflow (key taint, ternary constants, scan
    /// reachability), computed once on first use (`None` without a
    /// netlist).
    pub fn dataflow(&self) -> Option<&NetAnalysis> {
        let n = self.netlist?;
        Some(self.dataflow.get_or_init(|| rtlock_dataflow::analyze_netlist(n)))
    }

    /// Whole-module RTL dataflow (constant nets, CDFG key taint), computed
    /// once on first use (`None` without a module).
    pub fn rtl_dataflow(&self) -> Option<&RtlAnalysis> {
        let m = self.module?;
        Some(
            self.rtl_dataflow
                .get_or_init(|| rtlock_dataflow::analyze_module(m, &self.key_nets())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::parse;

    #[test]
    fn key_nets_follow_the_port_prefix() {
        let m = parse(
            "module t(input a, input lock_key_0, output y);\n assign y = a ^ lock_key_0;\nendmodule",
        )
        .unwrap();
        let t = LintTarget::rtl(&m);
        assert_eq!(t.key_nets().len(), 1);
        assert!(t.cdfg().is_some());
        assert!(t.scoap().is_none(), "no netlist layer");
    }
}
