//! Structural RTL/netlist rules: combinational loops, driver conflicts,
//! floating and unused nets, width mismatches, unreachable FSM states.

use crate::diag::{Diagnostic, Severity, Span};
use crate::engine::Rule;
use crate::target::LintTarget;
use rtlock_rtl::{Expr, Lvalue, Module, NetId, ProcessKind, Stmt};
use std::collections::HashSet;

fn expr_refs(e: &Expr) -> Vec<NetId> {
    let mut out = Vec::new();
    e.collect_refs(&mut out);
    out
}

/// Data-dependency edges of the *combinational* part of a module:
/// continuous assigns plus `always @(*)` processes. Clocked processes are
/// excluded (a register legally closes a feedback path). Within a comb
/// process, blocking semantics apply: a read of a net assigned by an
/// earlier statement refers to that statement, not to the net's previous
/// value, so it is not a dependency edge.
fn comb_edges(m: &Module) -> Vec<(NetId, NetId)> {
    let mut edges = Vec::new();
    for a in &m.assigns {
        for r in expr_refs(&a.rhs) {
            edges.push((r, a.lhs.net));
        }
    }
    for p in &m.procs {
        if p.kind != ProcessKind::Comb {
            continue;
        }
        let mut ctx = Vec::new();
        let mut assigned = HashSet::new();
        walk_comb(&p.body, &mut ctx, &mut assigned, &mut edges);
    }
    edges
}

fn walk_comb(
    stmts: &[Stmt],
    ctx: &mut Vec<NetId>,
    assigned: &mut HashSet<NetId>,
    edges: &mut Vec<(NetId, NetId)>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                for r in expr_refs(rhs) {
                    if !assigned.contains(&r) {
                        edges.push((r, lhs.net));
                    }
                }
                for &c in ctx.iter() {
                    edges.push((c, lhs.net));
                }
                assigned.insert(lhs.net);
            }
            Stmt::If { cond, then_, else_ } => {
                let depth = ctx.len();
                ctx.extend(expr_refs(cond).into_iter().filter(|r| !assigned.contains(r)));
                walk_comb(then_, ctx, assigned, edges);
                walk_comb(else_, ctx, assigned, edges);
                ctx.truncate(depth);
            }
            Stmt::Case { subject, arms, default } => {
                let depth = ctx.len();
                ctx.extend(expr_refs(subject).into_iter().filter(|r| !assigned.contains(r)));
                for arm in arms {
                    walk_comb(&arm.body, ctx, assigned, edges);
                }
                walk_comb(default, ctx, assigned, edges);
                ctx.truncate(depth);
            }
        }
    }
}

/// Finds one net on a cycle of `edges`, if any (iterative 3-color DFS).
fn find_cycle(n_nets: usize, edges: &[(NetId, NetId)]) -> Option<NetId> {
    let mut adj = vec![Vec::new(); n_nets];
    for &(from, to) in edges {
        adj[from.index()].push(to.index());
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n_nets];
    for start in 0..n_nets {
        if color[start] != 0 {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < adj[node].len() {
                let next = adj[node][*child];
                *child += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => return Some(NetId(next as u32)),
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// `S001`: combinational feedback loop.
pub struct CombLoop;

impl Rule for CombLoop {
    fn id(&self) -> &'static str {
        "S001"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "combinational feedback loop (unsimulatable, unsynthesizable timing)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(m) = t.module {
            if let Some(net) = find_cycle(m.nets.len(), &comb_edges(m)) {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&m.net(net).name),
                    message: format!(
                        "combinational loop through net `{}` (no register on the feedback path)",
                        m.net(net).name
                    ),
                });
            }
        } else if let Some(n) = t.netlist {
            if let Err(e) = n.levelize() {
                let name = n.gate_name(e.gate).unwrap_or("<unnamed>").to_string();
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&name),
                    message: format!("combinational cycle through gate `{name}` ({})", e.gate),
                });
            }
        }
    }
}

/// One driver of a net: which construct writes it and which bit range.
struct Driver {
    net: NetId,
    lo: usize,
    hi: usize,
    desc: String,
}

fn collect_drivers(m: &Module) -> Vec<Driver> {
    let full = |lhs: &Lvalue| -> (usize, usize) {
        match lhs.range {
            Some((hi, lo)) => (lo, hi),
            None => (0, m.width(lhs.net).saturating_sub(1)),
        }
    };
    let mut drivers = Vec::new();
    for (i, a) in m.assigns.iter().enumerate() {
        let (lo, hi) = full(&a.lhs);
        drivers.push(Driver { net: a.lhs.net, lo, hi, desc: format!("continuous assign #{i}") });
    }
    for (pi, p) in m.procs.iter().enumerate() {
        // Per process, one driver entry per net covering the union of the
        // written ranges: arms of one process may legally overlap.
        let mut written: Vec<(NetId, usize, usize)> = Vec::new();
        let mut record = |lhs: &Lvalue| {
            let (lo, hi) = full(lhs);
            if let Some(w) = written.iter_mut().find(|w| w.0 == lhs.net) {
                w.1 = w.1.min(lo);
                w.2 = w.2.max(hi);
            } else {
                written.push((lhs.net, lo, hi));
            }
        };
        visit_stmt_lvalues(&p.body, &mut record);
        visit_stmt_lvalues(&p.reset_body, &mut record);
        for (net, lo, hi) in written {
            drivers.push(Driver { net, lo, hi, desc: format!("always process #{pi}") });
        }
    }
    drivers
}

fn visit_stmt_lvalues(stmts: &[Stmt], f: &mut impl FnMut(&Lvalue)) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, .. } => f(lhs),
            Stmt::If { then_, else_, .. } => {
                visit_stmt_lvalues(then_, f);
                visit_stmt_lvalues(else_, f);
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    visit_stmt_lvalues(&arm.body, f);
                }
                visit_stmt_lvalues(default, f);
            }
        }
    }
}

/// `S002`: one net, several drivers.
pub struct MultiDriven;

impl Rule for MultiDriven {
    fn id(&self) -> &'static str {
        "S002"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "net with conflicting drivers (overlapping assigns/processes)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(m) = t.module else { return };
        let drivers = collect_drivers(m);
        let mut flagged: HashSet<NetId> = HashSet::new();
        for (i, a) in drivers.iter().enumerate() {
            for b in drivers.iter().skip(i + 1) {
                if a.net == b.net && a.lo <= b.hi && b.lo <= a.hi && flagged.insert(a.net) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Deny,
                        span: Span::object(&m.net(a.net).name),
                        message: format!(
                            "net `{}` has conflicting drivers: {} and {} write overlapping bits",
                            m.net(a.net).name,
                            a.desc,
                            b.desc
                        ),
                    });
                }
            }
        }
    }
}

/// All nets a module reads anywhere: expression operands, branch/case
/// conditions, and process clock/reset wires.
fn read_set(m: &Module) -> HashSet<NetId> {
    let mut reads = HashSet::new();
    for a in &m.assigns {
        reads.extend(expr_refs(&a.rhs));
    }
    for p in &m.procs {
        let mut seen = Vec::new();
        let mut take = |e: &Expr| seen.push(expr_refs(e));
        rtlock_rtl::ast::visit_stmt_exprs(&p.body, &mut take);
        rtlock_rtl::ast::visit_stmt_exprs(&p.reset_body, &mut take);
        reads.extend(seen.into_iter().flatten());
        if let ProcessKind::Seq { clock, reset } = &p.kind {
            reads.insert(*clock);
            if let Some(r) = reset {
                reads.insert(r.net);
            }
        }
    }
    reads
}

fn driven_set(m: &Module) -> HashSet<NetId> {
    let mut driven: HashSet<NetId> = m.inputs().into_iter().collect();
    for a in &m.assigns {
        driven.insert(a.lhs.net);
    }
    for p in &m.procs {
        visit_stmt_lvalues(&p.body, &mut |lhs| {
            driven.insert(lhs.net);
        });
        visit_stmt_lvalues(&p.reset_body, &mut |lhs| {
            driven.insert(lhs.net);
        });
    }
    driven
}

/// `S003`: a net is read but nothing drives it (floating input).
pub struct Undriven;

impl Rule for Undriven {
    fn id(&self) -> &'static str {
        "S003"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn summary(&self) -> &'static str {
        "net read but never driven (floating input to downstream logic)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(m) = t.module {
            let reads = read_set(m);
            let driven = driven_set(m);
            for id in (0..m.nets.len()).map(|i| NetId(i as u32)) {
                if reads.contains(&id) && !driven.contains(&id) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Warn,
                        span: Span::object(&m.net(id).name),
                        message: format!(
                            "net `{}` is read but never driven (floats at 0 in two-state sim)",
                            m.net(id).name
                        ),
                    });
                }
            }
        } else if let Some(n) = t.netlist {
            for g in n.ids() {
                let gate = n.gate(g);
                let arity = gate.kind.arity();
                if arity > 0 && gate.fanin.len() < arity {
                    let name = n.gate_name(g).unwrap_or("<unnamed>").to_string();
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Warn,
                        span: Span::object(&name),
                        message: format!(
                            "gate `{name}` ({}) has {} of {arity} input pins connected",
                            gate.kind.cell_name(),
                            gate.fanin.len()
                        ),
                    });
                }
            }
        }
    }
}

/// `S004`: assignment width mismatch.
pub struct WidthMismatch;

impl WidthMismatch {
    fn check_assign(m: &Module, lhs: &Lvalue, rhs: &Expr, out: &mut Vec<Diagnostic>) {
        let lhs_w = match lhs.range {
            Some((hi, lo)) => hi - lo + 1,
            None => m.width(lhs.net),
        };
        let rhs_w = m.expr_width(rhs);
        if lhs_w != rhs_w {
            out.push(Diagnostic {
                rule: "S004",
                severity: Severity::Warn,
                span: Span::object(&m.net(lhs.net).name),
                message: format!(
                    "width mismatch assigning `{}`: lhs is {lhs_w} bits, rhs is {rhs_w} bits \
                     (implicit truncation/zero-extension)",
                    m.net(lhs.net).name
                ),
            });
        }
    }
}

impl Rule for WidthMismatch {
    fn id(&self) -> &'static str {
        "S004"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn summary(&self) -> &'static str {
        "assignment width mismatch (silent truncation or zero-extension)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(m) = t.module else { return };
        for a in &m.assigns {
            WidthMismatch::check_assign(m, &a.lhs, &a.rhs, out);
        }
        for p in &m.procs {
            let mut walk = |stmts: &[Stmt]| {
                visit_stmt_assigns(stmts, &mut |lhs, rhs| {
                    WidthMismatch::check_assign(m, lhs, rhs, out)
                });
            };
            walk(&p.body);
            walk(&p.reset_body);
        }
    }
}

fn visit_stmt_assigns(stmts: &[Stmt], f: &mut impl FnMut(&Lvalue, &Expr)) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => f(lhs, rhs),
            Stmt::If { then_, else_, .. } => {
                visit_stmt_assigns(then_, f);
                visit_stmt_assigns(else_, f);
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    visit_stmt_assigns(&arm.body, f);
                }
                visit_stmt_assigns(default, f);
            }
        }
    }
}

/// `S005`: dead net — never read, not an output.
pub struct UnusedNet;

impl Rule for UnusedNet {
    fn id(&self) -> &'static str {
        "S005"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn summary(&self) -> &'static str {
        "net never read and not an output (dead logic)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(m) = t.module else { return };
        let reads = read_set(m);
        for id in (0..m.nets.len()).map(|i| NetId(i as u32)) {
            let net = m.net(id);
            if net.dir == Some(rtlock_rtl::Dir::Output) || reads.contains(&id) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Info,
                span: Span::object(&net.name),
                message: format!("net `{}` is never read and is not an output", net.name),
            });
        }
    }
}

/// `S006`: FSM state unreachable from the reset state.
pub struct UnreachableFsmState;

impl Rule for UnreachableFsmState {
    fn id(&self) -> &'static str {
        "S006"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn summary(&self) -> &'static str {
        "FSM state unreachable from the initial state (dead control logic)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(m) = t.module else { return };
        for fsm in t.fsms() {
            if fsm.initial.is_none() {
                continue;
            }
            let reg = &m.net(fsm.state_reg).name;
            for (state, depth) in fsm.depth_from_initial() {
                if depth.is_none() {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Warn,
                        span: Span::object(reg),
                        message: format!(
                            "FSM on register `{reg}`: state {state} is unreachable from the \
                             initial state"
                        ),
                    });
                }
            }
        }
    }
}
