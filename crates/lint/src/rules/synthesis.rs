//! Synthesis-soundness rules: key gates that a resynthesis pass would
//! remove (the Almeida-style "does it survive the tools" check) and key
//! inputs with no observable fanout.
//!
//! The removability checks run a *shadow pass* of `synth::opt` on the
//! extracted cone of each key input — never on the shared netlist — so
//! linting cannot perturb the design under analysis.

use crate::diag::{Diagnostic, Severity, Span};
use crate::engine::Rule;
use crate::target::LintTarget;
use rtlock_netlist::scoap::SCOAP_INF;
use rtlock_netlist::{to_bench, GateId, GateKind, Netlist};
use rtlock_synth::optimize;
use std::collections::{HashMap, HashSet};

/// The combinational cone a key input feeds, extracted as a standalone
/// netlist. `key` is the key input's id *inside* `sub`.
pub(crate) struct KeyCone {
    pub sub: Netlist,
    pub key: GateId,
}

/// Combinational forward closure of `k`: logic gates only (flip-flops and
/// primary outputs are cone sinks). Returns gates in deterministic BFS
/// order.
fn forward_cone(n: &Netlist, k: GateId, fanouts: &[Vec<GateId>]) -> Vec<GateId> {
    let mut cone: Vec<GateId> = Vec::new();
    let mut seen: HashSet<GateId> = HashSet::new();
    let mut queue: Vec<GateId> = fanouts[k.index()].clone();
    let mut qi = 0;
    while qi < queue.len() {
        let g = queue[qi];
        qi += 1;
        if !seen.insert(g) {
            continue;
        }
        let kind = n.gate(g).kind;
        if kind.is_dff() || kind == GateKind::Input {
            continue;
        }
        cone.push(g);
        queue.extend(fanouts[g.index()].iter().copied());
    }
    cone
}

/// Extracts the cone of `k` as a standalone netlist: external fanins
/// become fresh inputs (constants are reproduced as constants), cone
/// gates that feed a flip-flop, a primary output, or logic outside the
/// cone become outputs. Returns `None` when `k` feeds no logic at all
/// (that case is `Y002`'s, not a cone problem).
pub(crate) fn key_cone(n: &Netlist, k: GateId, fanouts: &[Vec<GateId>]) -> Option<KeyCone> {
    let cone = forward_cone(n, k, fanouts);
    if cone.is_empty() {
        return None;
    }
    let in_cone: HashSet<GateId> = cone.iter().copied().collect();

    let mut sub = Netlist::new("key_cone");
    let mut map: HashMap<GateId, GateId> = HashMap::new();
    let sub_key = sub.add_input("k");
    sub.mark_key_input(sub_key);
    map.insert(k, sub_key);

    // Iterative post-order creation so deep cones cannot overflow the
    // stack. Leaves (anything outside the cone) become inputs/constants.
    // A combinational cycle inside the cone (an `S001` defect) is cut at
    // a fresh input so extraction always terminates.
    let mut visiting: HashSet<GateId> = HashSet::new();
    for &root in &cone {
        if map.contains_key(&root) {
            continue;
        }
        let mut stack = vec![root];
        visiting.insert(root);
        while let Some(&g) = stack.last() {
            if map.contains_key(&g) {
                visiting.remove(&g);
                stack.pop();
                continue;
            }
            if !in_cone.contains(&g) {
                let kind = n.gate(g).kind;
                let sid = match kind {
                    GateKind::Const0 | GateKind::Const1 => sub.add_gate(kind, vec![]),
                    _ => sub.add_input(format!("i{}", g.0)),
                };
                map.insert(g, sid);
                visiting.remove(&g);
                stack.pop();
                continue;
            }
            let mut pending: Vec<GateId> = Vec::new();
            for &f in &n.gate(g).fanin {
                if map.contains_key(&f) {
                    continue;
                }
                if visiting.contains(&f) {
                    let sid = sub.add_input(format!("cyc{}", f.0));
                    map.insert(f, sid);
                } else {
                    pending.push(f);
                }
            }
            if pending.is_empty() {
                let fanin: Vec<GateId> = n.gate(g).fanin.iter().map(|f| map[f]).collect();
                let sid = sub.add_gate(n.gate(g).kind, fanin);
                map.insert(g, sid);
                visiting.remove(&g);
                stack.pop();
            } else {
                visiting.extend(pending.iter().copied());
                stack.extend(pending);
            }
        }
    }

    let po_drivers: HashSet<GateId> = n.outputs().iter().map(|(_, d)| *d).collect();
    for &g in &cone {
        let is_sink = po_drivers.contains(&g)
            || fanouts[g.index()].iter().any(|f| {
                !in_cone.contains(f) && (n.gate(*f).kind.is_dff() || n.gate(*f).kind.is_logic())
            });
        if is_sink {
            sub.add_output(format!("o{}", g.0), map[&g]);
        }
    }
    Some(KeyCone { sub, key: sub_key })
}

fn key_name(n: &Netlist, k: GateId) -> String {
    n.gate_name(k).unwrap_or("<unnamed>").to_string()
}

/// `Y001`: a key gate the optimizer removes.
pub struct KeyRemovable;

impl Rule for KeyRemovable {
    fn id(&self) -> &'static str {
        "Y001"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key input whose cone melts under constant propagation / structural hashing"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let fanouts = n.fanouts();
        for &k in &n.key_inputs {
            let Some(cone) = key_cone(n, k, &fanouts) else { continue };
            let mut sub = cone.sub;
            optimize(&mut sub);
            let sub_fanouts = sub.fanouts();
            let alive = !sub_fanouts[cone.key.index()].is_empty()
                || sub.outputs().iter().any(|(_, d)| *d == cone.key);
            if !alive {
                let name = key_name(n, k);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` is removed by a shadow `synth::opt` pass over its \
                         cone (constant propagation / structural hashing melts the key gate)"
                    ),
                });
            }
        }
    }
}

/// `Y002`: a key input no output observes.
pub struct KeyUnobservable;

impl Rule for KeyUnobservable {
    fn id(&self) -> &'static str {
        "Y002"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key input with zero observability fanout (SCOAP CO is infinite)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(scoap) = t.scoap() else { return };
        for &k in &n.key_inputs {
            if scoap.co[k.index()] >= SCOAP_INF {
                let name = key_name(n, k);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` has no observable fanout (SCOAP CO = ∞): wrong keys \
                         cannot corrupt any output"
                    ),
                });
            }
        }
    }
}

/// `Y003`: a key bit whose 0/1 hardwirings synthesize identically.
pub struct KeyIndifferent;

impl Rule for KeyIndifferent {
    fn id(&self) -> &'static str {
        "Y003"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key bit indifferent to its value (0/1 hardwirings synthesize identically)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let fanouts = n.fanouts();
        for &k in &n.key_inputs {
            let Some(cone) = key_cone(n, k, &fanouts) else { continue };
            let mut zero = cone.sub.clone();
            zero.convert_input_to_const(cone.key, false);
            optimize(&mut zero);
            let mut one = cone.sub;
            one.convert_input_to_const(cone.key, true);
            optimize(&mut one);
            if to_bench(&zero) == to_bench(&one) {
                let name = key_name(n, k);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` is value-indifferent: hardwiring it to 0 and to 1 \
                         resynthesizes to the same cone (SAT/resynthesis attacks learn it free)"
                    ),
                });
            }
        }
    }
}
