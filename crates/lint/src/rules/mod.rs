//! The rule catalog: structural (`S…`), synthesis-soundness (`Y…`),
//! scan-/lock-security (`C…`), and whole-design dataflow (`K…`) groups.

pub mod keyflow;
pub mod scan;
pub mod structural;
pub mod synthesis;

use crate::engine::Rule;

/// All rules in catalog order.
pub(crate) fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(structural::CombLoop),
        Box::new(structural::MultiDriven),
        Box::new(structural::Undriven),
        Box::new(structural::WidthMismatch),
        Box::new(structural::UnusedNet),
        Box::new(structural::UnreachableFsmState),
        Box::new(synthesis::KeyRemovable),
        Box::new(synthesis::KeyUnobservable),
        Box::new(synthesis::KeyIndifferent),
        Box::new(scan::KeyToScanPath),
        Box::new(scan::LockPointConstant),
        Box::new(scan::KeyConeSingleSegment),
        Box::new(scan::LockPointDead),
        Box::new(keyflow::KeyUnreachable),
        Box::new(keyflow::KeyGateConstant),
        Box::new(keyflow::KeyConeBypassed),
        Box::new(keyflow::KeyExposedAtOutput),
        Box::new(keyflow::DeadLockedLogic),
        Box::new(keyflow::KeyPartitioned),
    ]
}
