//! K-series: whole-design dataflow rules built on `rtlock-dataflow`.
//!
//! Where the S/Y/C groups are rule-local pattern checks, these rules ask
//! global questions — can key bit `k` influence any scan-observable point,
//! is a key gate provably constant under *all* valuations, do the key bits
//! split into independently attackable cones — answered from the key-taint,
//! ternary constant/X, and scan-reachability fixpoints.

use crate::diag::{Diagnostic, Severity, Span};
use crate::engine::Rule;
use crate::target::LintTarget;
use rtlock_netlist::{GateId, Netlist};
use rtlock_rtl::Expr;
use std::collections::{HashMap, HashSet};

fn key_name(n: &Netlist, k: GateId) -> String {
    n.gate_name(k).unwrap_or("<unnamed>").to_string()
}

/// `K001`: a key bit whose taint reaches no observation point.
///
/// The scan-aware counterpart of `C004`: observability here includes scan
/// cells, so a key bit that only reaches a *scanned* flop is fine, while
/// one confined to an unscanned, output-dead cone is provably
/// removal-prunable — an attacker deletes the cone and the key bit with no
/// observable effect.
pub struct KeyUnreachable;

impl Rule for KeyUnreachable {
    fn id(&self) -> &'static str {
        "K001"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key bit taints no output- or scan-observable net (removal-prunable)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        for &bit in &a.prunable_keys {
            let name = key_name(n, a.keys[bit]);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Deny,
                span: Span::object(&name),
                message: format!(
                    "key input `{name}` taints no primary output or scan-observable cell: \
                     the whole cone (and the key bit) is removal-prunable"
                ),
            });
        }
    }
}

/// `K002`: a key gate the ternary/cofactor analysis proves degenerate.
///
/// Three escalating per-gate proofs: the gate's output is constant under
/// all valuations; the gate's other operand is provably constant (the
/// gate folds to a wire/inverter of the key); or the two cofactors of the
/// output with the key bit pinned are both constants (the output *is* the
/// key wire, or independent of it). A key bit is only denied when *every*
/// logic gate it feeds is degenerate — synthesis routinely plants
/// harmless constant artifacts (the `k | ~k` carry term of a subtractor)
/// next to healthy lock points, and one healthy gate means the bit still
/// locks something. At RTL the same check runs semantically over
/// continuous-assign chains, so constant-masked lock points planted in
/// source are caught before elaboration folds them into innocent-looking
/// key gates.
pub struct KeyGateConstant;

impl Rule for KeyGateConstant {
    fn id(&self) -> &'static str {
        "K002"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key gate provably constant or reducible to the bare key wire (SAT-trivial)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        self.check_rtl(t, out);
        self.check_netlist(t, out);
    }
}

impl KeyGateConstant {
    fn check_rtl(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(m) = t.module else { return };
        let keys: HashSet<_> = t.key_nets().into_iter().collect();
        if keys.is_empty() {
            return;
        }
        let Some(a) = t.rtl_dataflow() else { return };
        let mut flagged = HashSet::new();
        let mut visit = |e: &Expr| {
            if let Expr::Binary { lhs, rhs, .. } = e {
                for (x, y) in [(lhs, rhs), (rhs, lhs)] {
                    let mut x_refs = Vec::new();
                    x.collect_refs(&mut x_refs);
                    let mut y_refs = Vec::new();
                    y.collect_refs(&mut y_refs);
                    let x_is_key = !x_refs.is_empty() && x_refs.iter().all(|r| keys.contains(r));
                    let y_is_const = !y_refs.is_empty() && y_refs.iter().all(|&r| a.is_const(r));
                    if x_is_key && y_is_const && flagged.insert(x_refs[0]) {
                        out.push(Diagnostic {
                            rule: "K002",
                            severity: Severity::Deny,
                            span: Span::object(&m.net(x_refs[0]).name),
                            message: format!(
                                "key port `{}` gates a net the dataflow analysis proves \
                                 constant: the lock point is SAT-trivial and folds to the \
                                 bare key wire in resynthesis",
                                m.net(x_refs[0]).name
                            ),
                        });
                    }
                }
            }
        };
        for assign in &m.assigns {
            assign.rhs.visit(&mut visit);
        }
        for p in &m.procs {
            rtlock_rtl::ast::visit_stmt_exprs(&p.body, &mut |e| e.visit(&mut visit));
            rtlock_rtl::ast::visit_stmt_exprs(&p.reset_body, &mut |e| e.visit(&mut visit));
        }
    }

    fn check_netlist(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        let keys: HashSet<GateId> = n.key_inputs.iter().copied().collect();
        // A key bit is SAT-trivial only when *every* logic gate it feeds
        // is degenerate: one healthy lock point redeems incidental
        // artifacts — e.g. the `k | ~k` carry term an elaborated
        // subtractor plants next to a perfectly good `k ^ state` gate.
        let mut fed: HashMap<GateId, (usize, Vec<&'static str>)> = HashMap::new();
        for g in n.ids() {
            let gate = n.gate(g);
            if !gate.kind.is_logic() || gate.fanin.len() < 2 {
                continue;
            }
            let Some(&k) = gate.fanin.iter().find(|f| keys.contains(f)) else { continue };
            let bit = a.key_bit_of(k).expect("key inputs are indexed");
            let proof = if a.value_of(g).constant().is_some() {
                Some("output is provably constant under all key and input valuations")
            } else if gate
                .fanin
                .iter()
                .any(|&f| f != k && a.value_of(f).constant().is_some())
            {
                Some("other operand is provably constant (gate folds to a wire/inverter)")
            } else {
                let (c0, c1) = a.cofactor_values(bit, g);
                match (c0.constant(), c1.constant()) {
                    (Some(x), Some(y)) if x != y => {
                        Some("the key-bit cofactors are opposite constants (output is the bare key wire)")
                    }
                    (Some(_), Some(_)) => Some(
                        "both key-bit cofactors agree on one constant (the gate carries no key function)",
                    ),
                    _ => None,
                }
            };
            let entry = fed.entry(k).or_default();
            entry.0 += 1;
            if let Some(p) = proof {
                entry.1.push(p);
            }
        }
        // Iterate in key-input order so diagnostics stay deterministic.
        for &k in &n.key_inputs {
            let Some((total, proofs)) = fed.get(&k) else { continue };
            if proofs.len() < *total {
                continue;
            }
            let name = key_name(n, k);
            out.push(Diagnostic {
                rule: "K002",
                severity: Severity::Deny,
                span: Span::object(&name),
                message: format!(
                    "key input `{name}` feeds only degenerate key gates ({} of {}): {}; the \
                     bit is SAT-trivial",
                    proofs.len(),
                    total,
                    proofs[0]
                ),
            });
        }
    }
}

/// `K003`: a key-tainted mux branch that is provably never selected.
pub struct KeyConeBypassed;

impl Rule for KeyConeBypassed {
    fn id(&self) -> &'static str {
        "K003"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key cone bypassable: mux select provably constant, key-tainted branch dead"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        for g in n.ids() {
            let gate = n.gate(g);
            if gate.kind != rtlock_netlist::GateKind::Mux {
                continue;
            }
            let Some(sel) = a.value_of(gate.fanin[0]).constant() else { continue };
            let dead = if sel { gate.fanin[1] } else { gate.fanin[2] };
            let bits = a.taint_bits(dead);
            let Some(&first) = bits.first() else { continue };
            let name = key_name(n, a.keys[first]);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Deny,
                span: Span::object(&name),
                message: format!(
                    "mux `{}` has a provably constant select ({}): the unselected branch \
                     carries the cone of key bit(s) {:?} — the lock is bypassed wholesale",
                    n.gate_name(g).unwrap_or("<unnamed>"),
                    u8::from(sel),
                    bits
                ),
            });
        }
    }
}

/// `K004`: a terminal key gate sitting directly on an otherwise
/// key-independent primary output.
pub struct KeyExposedAtOutput;

impl Rule for KeyExposedAtOutput {
    fn id(&self) -> &'static str {
        "K004"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn summary(&self) -> &'static str {
        "terminal key gate on an otherwise unobfuscated primary output (peelable)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        let keys: HashSet<GateId> = n.key_inputs.iter().copied().collect();
        let mut flagged: HashSet<GateId> = HashSet::new();
        for (po, drv) in n.outputs() {
            let gate = n.gate(*drv);
            if !gate.kind.is_logic() {
                continue;
            }
            let Some(&k) = gate.fanin.iter().find(|f| keys.contains(f)) else { continue };
            // The rest of the output cone must be key-free: the key gate is
            // then the *entire* obfuscation at this output and peels off.
            if gate.fanin.iter().all(|&f| f == k || a.taint_is_empty(f)) && flagged.insert(*drv) {
                let name = key_name(n, k);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Warn,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` feeds the last gate before primary output `{po}` \
                         and the rest of that cone is key-free: the obfuscation is one \
                         peelable gate"
                    ),
                });
            }
        }
    }
}

/// `K005`: key-tainted logic outside the live set.
pub struct DeadLockedLogic;

impl Rule for DeadLockedLogic {
    fn id(&self) -> &'static str {
        "K005"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "dead locked logic: key-tainted gates outside the live set (swept in resynthesis)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.is_empty() {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        let live = n.live_set();
        let mut dead_gates_per_bit = vec![0usize; a.keys.len()];
        for g in n.ids() {
            if !live[g.index()] && n.gate(g).kind.is_logic() {
                for bit in a.taint_bits(g) {
                    dead_gates_per_bit[bit] += 1;
                }
            }
        }
        for (bit, &count) in dead_gates_per_bit.iter().enumerate() {
            if count > 0 {
                let name = key_name(n, a.keys[bit]);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Deny,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` taints {count} dead gate(s): the locked cone is \
                         outside the live set and any resynthesis sweeps it (and the key \
                         bit) away"
                    ),
                });
            }
        }
    }
}

/// `K006`: key bits split into taint-disjoint, independently attackable
/// partitions.
pub struct KeyPartitioned;

impl Rule for KeyPartitioned {
    fn id(&self) -> &'static str {
        "K006"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn summary(&self) -> &'static str {
        "taint-disjoint key partitions enable divide-and-conquer attacks"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.key_inputs.len() < 2 {
            return;
        }
        let Some(a) = t.dataflow() else { return };
        // Count only partitions with at least one observable bit;
        // unobservable bits are K001's finding, not a usable partition.
        let live_parts: Vec<&Vec<usize>> = a
            .partitions
            .iter()
            .filter(|p| p.iter().any(|&b| a.key_observable(b)))
            .collect();
        if live_parts.len() < 2 {
            return;
        }
        let sizes: Vec<usize> = live_parts.iter().map(|p| p.len()).collect();
        let name = key_name(n, a.keys[live_parts[0][0]]);
        out.push(Diagnostic {
            rule: self.id(),
            severity: Severity::Info,
            span: Span::object(&name),
            message: format!(
                "the {} key bits split into {} taint-disjoint partitions (sizes {:?}): each \
                 partition is attackable independently, reducing brute force from 2^{} to {}",
                n.key_inputs.len(),
                live_parts.len(),
                sizes,
                n.key_inputs.len(),
                sizes.iter().map(|s| format!("2^{s}")).collect::<Vec<_>>().join(" + "),
            ),
        });
    }
}
