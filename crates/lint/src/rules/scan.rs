//! Scan-/lock-security rules: test-mode key leakage into scan cells,
//! degenerate lock points (constant or dead CDFG nodes), and key cones an
//! oracle-guided attacker can slice out with one scan segment.

use crate::diag::{Diagnostic, Severity, Span};
use crate::engine::Rule;
use crate::target::LintTarget;
use rtlock_netlist::{GateId, Netlist};
use rtlock_rtl::{Expr, Module, NetId};
use std::collections::{HashMap, HashSet};

/// Flip-flops whose next-state cone contains `k`, found by a forward
/// combinational walk (flip-flops are sinks: a key bit that only reaches
/// a flop *through* another flop is not capturable in one test cycle).
fn captured_dffs(n: &Netlist, k: GateId, fanouts: &[Vec<GateId>]) -> Vec<GateId> {
    let mut dffs = Vec::new();
    let mut seen: HashSet<GateId> = HashSet::new();
    let mut queue: Vec<GateId> = fanouts[k.index()].clone();
    let mut qi = 0;
    while qi < queue.len() {
        let g = queue[qi];
        qi += 1;
        if !seen.insert(g) {
            continue;
        }
        if n.gate(g).kind.is_dff() {
            dffs.push(g);
            continue;
        }
        queue.extend(fanouts[g.index()].iter().copied());
    }
    dffs
}

fn key_name(n: &Netlist, k: GateId) -> String {
    n.gate_name(k).unwrap_or("<unnamed>").to_string()
}

/// `C001`: a key bit combinationally capturable into a scan cell.
pub struct KeyToScanPath;

impl Rule for KeyToScanPath {
    fn id(&self) -> &'static str {
        "C001"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "combinational path from a key input into a scan cell (test-mode key leak)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.scan_chain.is_empty() || n.key_inputs.is_empty() {
            return;
        }
        let in_chain: HashSet<GateId> = n.scan_chain.iter().copied().collect();
        let fanouts = n.fanouts();
        for &k in &n.key_inputs {
            let leaked: Vec<GateId> = captured_dffs(n, k, &fanouts)
                .into_iter()
                .filter(|d| in_chain.contains(d))
                .collect();
            if let Some(&first) = leaked.first() {
                let name = key_name(n, k);
                let cell = n.gate_name(first).unwrap_or("<unnamed>");
                let (severity, mitigation) = if t.scan_locked {
                    (Severity::Warn, "; mitigated: scan access is locked")
                } else {
                    (Severity::Deny, "")
                };
                out.push(Diagnostic {
                    rule: self.id(),
                    severity,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}` reaches {} scan cell(s) combinationally (first: \
                         `{cell}`): one capture + shift-out in test mode exposes key material\
                         {mitigation}",
                        leaked.len()
                    ),
                });
            }
        }
    }
}

/// Nets whose value is a compile-time constant: driven only by continuous
/// assigns whose operands are themselves constant (fixpoint), and written
/// by no process.
fn const_driven_nets(m: &Module) -> HashSet<NetId> {
    let mut proc_written: HashSet<NetId> = HashSet::new();
    for p in &m.procs {
        collect_proc_lvalues(&p.body, &mut proc_written);
        collect_proc_lvalues(&p.reset_body, &mut proc_written);
    }
    let mut drivers: HashMap<NetId, Vec<&Expr>> = HashMap::new();
    for a in &m.assigns {
        drivers.entry(a.lhs.net).or_default().push(&a.rhs);
    }
    let mut consts: HashSet<NetId> = HashSet::new();
    loop {
        let mut changed = false;
        for (&net, rhss) in &drivers {
            if consts.contains(&net) || proc_written.contains(&net) {
                continue;
            }
            let all_const = rhss.iter().all(|rhs| {
                let mut refs = Vec::new();
                rhs.collect_refs(&mut refs);
                refs.iter().all(|r| consts.contains(r))
            });
            if all_const {
                consts.insert(net);
                changed = true;
            }
        }
        if !changed {
            return consts;
        }
    }
}

fn collect_proc_lvalues(stmts: &[rtlock_rtl::Stmt], out: &mut HashSet<NetId>) {
    for s in stmts {
        match s {
            rtlock_rtl::Stmt::Assign { lhs, .. } => {
                out.insert(lhs.net);
            }
            rtlock_rtl::Stmt::If { then_, else_, .. } => {
                collect_proc_lvalues(then_, out);
                collect_proc_lvalues(else_, out);
            }
            rtlock_rtl::Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    collect_proc_lvalues(&arm.body, out);
                }
                collect_proc_lvalues(default, out);
            }
        }
    }
}

/// `true` when `e` references exactly the nets in `only` and nothing else
/// (and references at least one net).
fn refs_only(e: &Expr, only: &HashSet<NetId>) -> bool {
    let mut refs = Vec::new();
    e.collect_refs(&mut refs);
    !refs.is_empty() && refs.iter().all(|r| only.contains(r))
}

/// `C002`: a key gate whose other operand is a constant *net*.
///
/// A literal constant mask next to a key is the legitimate `XorMask` /
/// `Substitute` encoding idiom and is not flagged; a key combined with a
/// net the design drives to a constant is a degenerate lock point — the
/// net folds away in resynthesis and the key wire is exposed directly.
pub struct LockPointConstant;

impl Rule for LockPointConstant {
    fn id(&self) -> &'static str {
        "C002"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "key gate on a constant net (lock point folds away in resynthesis)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(m) = t.module {
            let keys: HashSet<NetId> = t.key_nets().into_iter().collect();
            if keys.is_empty() {
                return;
            }
            let consts = const_driven_nets(m);
            if consts.is_empty() {
                return;
            }
            let mut flagged: HashSet<NetId> = HashSet::new();
            let mut visit = |e: &Expr| {
                if let Expr::Binary { lhs, rhs, .. } = e {
                    for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                        if refs_only(a, &keys) && refs_only(b, &consts) {
                            let mut key_refs = Vec::new();
                            a.collect_refs(&mut key_refs);
                            let key = key_refs[0];
                            if flagged.insert(key) {
                                out.push(Diagnostic {
                                    rule: "C002",
                                    severity: Severity::Deny,
                                    span: Span::object(&m.net(key).name),
                                    message: format!(
                                        "key port `{}` gates a constant-driven net: the lock \
                                         point carries no function and resynthesis exposes the \
                                         key wire directly",
                                        m.net(key).name
                                    ),
                                });
                            }
                        }
                    }
                }
            };
            for a in &m.assigns {
                a.rhs.visit(&mut visit);
            }
            for p in &m.procs {
                rtlock_rtl::ast::visit_stmt_exprs(&p.body, &mut |e| e.visit(&mut visit));
                rtlock_rtl::ast::visit_stmt_exprs(&p.reset_body, &mut |e| e.visit(&mut visit));
            }
        } else if let Some(n) = t.netlist {
            let keys: HashSet<GateId> = n.key_inputs.iter().copied().collect();
            if keys.is_empty() {
                return;
            }
            let mut flagged: HashSet<GateId> = HashSet::new();
            for g in n.ids() {
                let gate = n.gate(g);
                if !gate.kind.is_logic() {
                    continue;
                }
                let key_pin = gate.fanin.iter().copied().find(|f| keys.contains(f));
                let const_pin = gate.fanin.iter().any(|&f| {
                    matches!(
                        n.gate(f).kind,
                        rtlock_netlist::GateKind::Const0 | rtlock_netlist::GateKind::Const1
                    )
                });
                if let (Some(k), true) = (key_pin, const_pin) {
                    if flagged.insert(k) {
                        let name = key_name(n, k);
                        out.push(Diagnostic {
                            rule: "C002",
                            severity: Severity::Deny,
                            span: Span::object(&name),
                            message: format!(
                                "key input `{name}` feeds a gate with a constant operand: the \
                                 key gate folds to a wire/inverter under constant propagation"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `C003`: a key cone confined to one contiguous scan segment.
pub struct KeyConeSingleSegment;

impl Rule for KeyConeSingleSegment {
    fn id(&self) -> &'static str {
        "C003"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn summary(&self) -> &'static str {
        "key cone contained in one contiguous scan segment (oracle-guided slicing risk)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(n) = t.netlist else { return };
        if n.scan_chain.len() < 2 || n.key_inputs.is_empty() {
            return;
        }
        let pos: HashMap<GateId, usize> =
            n.scan_chain.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let fanouts = n.fanouts();
        for &k in &n.key_inputs {
            let mut idx: Vec<usize> = captured_dffs(n, k, &fanouts)
                .into_iter()
                .filter_map(|d| pos.get(&d).copied())
                .collect();
            if idx.is_empty() {
                continue;
            }
            idx.sort_unstable();
            idx.dedup();
            let contiguous = idx[idx.len() - 1] - idx[0] + 1 == idx.len();
            if contiguous && idx.len() < n.scan_chain.len() {
                let name = key_name(n, k);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: Severity::Warn,
                    span: Span::object(&name),
                    message: format!(
                        "key input `{name}`'s cone touches only scan cells {}..{} of {} (one \
                         contiguous segment): an attacker can slice the cone with a single \
                         partial-chain observation",
                        idx[0],
                        idx[idx.len() - 1],
                        n.scan_chain.len()
                    ),
                });
            }
        }
    }
}

/// `C004`: a key port that cannot influence any output.
pub struct LockPointDead;

impl Rule for LockPointDead {
    fn id(&self) -> &'static str {
        "C004"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "lock point on a dead CDFG node (key cannot influence any output)"
    }
    fn check(&self, t: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(m) = t.module {
            let keys = t.key_nets();
            if keys.is_empty() {
                return;
            }
            let Some(cdfg) = t.cdfg() else { return };
            for k in keys {
                if cdfg.seq_depth_to_output(m, k).is_none() {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Deny,
                        span: Span::object(&m.net(k).name),
                        message: format!(
                            "key port `{}` reaches no output on any path (dead lock point: \
                             wrong keys are unobservable)",
                            m.net(k).name
                        ),
                    });
                }
            }
        } else if let Some(n) = t.netlist {
            if n.key_inputs.is_empty() {
                return;
            }
            let po: HashSet<GateId> = n.outputs().iter().map(|(_, d)| *d).collect();
            let fanouts = n.fanouts();
            for &k in &n.key_inputs {
                // Full forward reach, flip-flops included (sequential
                // observability counts).
                let mut seen: HashSet<GateId> = HashSet::new();
                let mut queue = vec![k];
                let mut qi = 0;
                let mut observable = po.contains(&k);
                while qi < queue.len() && !observable {
                    let g = queue[qi];
                    qi += 1;
                    for &f in &fanouts[g.index()] {
                        if seen.insert(f) {
                            if po.contains(&f) {
                                observable = true;
                                break;
                            }
                            queue.push(f);
                        }
                    }
                }
                if !observable {
                    let name = key_name(n, k);
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: Severity::Deny,
                        span: Span::object(&name),
                        message: format!(
                            "key input `{name}` reaches no primary output (dead lock point)"
                        ),
                    });
                }
            }
        }
    }
}
