//! The diagnostic model shared by every lint rule, the RTL parser, and
//! the `.bench` reader: severities, spans, findings, and the two report
//! renderers (human-readable text and machine-readable JSON).

use rtlock_netlist::bench_format::{BenchErrorKind, ParseBenchError};
use rtlock_rtl::ParseError;
use std::fmt;

/// How serious a finding is.
///
/// Ordering is by escalation: `Info < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation; never gates a flow.
    Info,
    /// Suspicious but tolerable; reported, never fatal.
    Warn,
    /// Structural defect that breaks the locking security argument; a
    /// flow gate aborts with `LockError::LintRejected` on any of these.
    Deny,
}

impl Severity {
    /// Stable lowercase name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a finding points. Either coordinate may be absent: RTL findings
/// carry a source line, netlist findings carry a net/gate name, parse
/// errors carry line and column.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based source line, when the finding maps to source text.
    pub line: Option<usize>,
    /// 1-based source column, when known (parse diagnostics).
    pub col: Option<usize>,
    /// The net, port, or gate the finding is about.
    pub object: Option<String>,
}

impl Span {
    /// A span that names an object (net, port, or gate) only.
    pub fn object(name: impl Into<String>) -> Span {
        Span { line: None, col: None, object: Some(name.into()) }
    }

    /// A span that points at a source line only.
    pub fn line(line: usize) -> Span {
        Span { line: Some(line), col: None, object: None }
    }

    /// A span that points at a source line and column.
    pub fn line_col(line: usize, col: usize) -> Span {
        Span { line: Some(line), col: Some(col), object: None }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col, &self.object) {
            (Some(l), Some(c), _) => write!(f, "line {l}:{c}"),
            (Some(l), None, Some(o)) => write!(f, "line {l} `{o}`"),
            (Some(l), None, None) => write!(f, "line {l}"),
            (None, _, Some(o)) => write!(f, "`{o}`"),
            (None, _, None) => write!(f, "-"),
        }
    }
}

/// One finding: a rule, a severity, a location, and a message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// Rule identifier (`S…` structural, `Y…` synthesis-soundness, `C…`
    /// scan/lock security, `P…` parse, `E…` elaboration).
    pub rule: &'static str,
    /// Severity of this particular finding (a rule may emit below its
    /// default severity when a mitigation is in place).
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {}", self.severity, self.rule, self.span, self.message)
    }
}

/// Parser errors share the lint report format: a spanned `Deny` finding
/// under the `P001` rule.
impl From<&ParseError> for Diagnostic {
    fn from(e: &ParseError) -> Diagnostic {
        Diagnostic {
            rule: "P001",
            severity: Severity::Deny,
            span: Span::line_col(e.line, e.col),
            message: e.message.clone(),
        }
    }
}

/// `.bench` reader errors share the report format too. Multi-driver
/// errors (duplicate definitions for one net) surface under the same rule
/// id as the RTL multi-driven-net rule, `S002`.
impl From<&ParseBenchError> for Diagnostic {
    fn from(e: &ParseBenchError) -> Diagnostic {
        Diagnostic {
            rule: match e.kind {
                BenchErrorKind::MultiDriver => "S002",
                BenchErrorKind::Syntax => "P002",
            },
            severity: Severity::Deny,
            span: Span::line(e.line),
            message: e.message.clone(),
        }
    }
}

/// Which flow gate (if any) produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintPhase {
    /// Gate on the input module before any locking work.
    PreLock,
    /// Gate on the locked design after scan locking.
    PostLock,
    /// Whole-design dataflow gate (the `K` rules) after the lock/post-lint
    /// gates.
    Analyze,
    /// CLI or library use outside the flow.
    Standalone,
}

impl LintPhase {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LintPhase::PreLock => "pre_lock",
            LintPhase::PostLock => "post_lock",
            LintPhase::Analyze => "analyze",
            LintPhase::Standalone => "standalone",
        }
    }
}

impl fmt::Display for LintPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one lint run: findings plus the rules the budget forced
/// the engine to skip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Which gate produced this report.
    pub phase: LintPhase,
    /// All findings, sorted by (rule, span, message) for determinism.
    pub diagnostics: Vec<Diagnostic>,
    /// Rules skipped because the budget expired before they ran.
    pub skipped: Vec<&'static str>,
}

impl LintReport {
    /// An empty report for `phase`.
    pub fn new(phase: LintPhase) -> LintReport {
        LintReport { phase, diagnostics: Vec::new(), skipped: Vec::new() }
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// `Deny` findings (the gate-aborting ones).
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// All `Deny` findings, cloned (what `LockError::LintRejected` carries).
    pub fn denials(&self) -> Vec<Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).cloned().collect()
    }

    /// `true` when nothing gate-aborting was found.
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Drops findings already present in `earlier` reports, matching by
    /// `(rule, span, message)` — severity is deliberately excluded so a
    /// mitigation downgrade still counts as the same finding.
    ///
    /// Flow gates run the same rules on the pre-lock module and again on
    /// the locked design; a finding the lock did not introduce would
    /// otherwise appear twice on `FlowReport`.
    pub fn dedup_against(&mut self, earlier: &[&LintReport]) {
        use std::collections::HashSet;
        let seen: HashSet<(&str, &Span, &str)> = earlier
            .iter()
            .flat_map(|r| r.diagnostics.iter())
            .map(|d| (d.rule, &d.span, d.message.as_str()))
            .collect();
        self.diagnostics.retain(|d| !seen.contains(&(d.rule, &d.span, d.message.as_str())));
    }

    /// Human-readable rendering, one finding per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if !self.skipped.is_empty() {
            out.push_str(&format!("skipped (budget): {}\n", self.skipped.join(", ")));
        }
        out.push_str(&format!(
            "{} deny, {} warn, {} info\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// Machine-readable JSON rendering (no external dependencies; the
    /// grammar is plain RFC 8259).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"phase\":\"{}\",", self.phase));
        out.push_str(&format!(
            "\"deny\":{},\"warn\":{},\"info\":{},",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out.push_str("\"skipped\":[");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{s}\""));
        }
        out.push_str("],\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"message\":{}",
                d.rule,
                d.severity,
                json_string(&d.message)
            ));
            if let Some(l) = d.span.line {
                out.push_str(&format!(",\"line\":{l}"));
            }
            if let Some(c) = d.span.col {
                out.push_str(&format!(",\"col\":{c}"));
            }
            if let Some(o) = &d.span.object {
                out.push_str(&format!(",\"object\":{}", json_string(o)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders one or more lint runs as a SARIF 2.1.0 log.
///
/// `inputs` pairs each linted artifact's name (file path or design name)
/// with its report; findings become `results` in one SARIF `run` whose
/// tool driver lists every rule referenced, sorted by id. Output is fully
/// deterministic: artifacts keep their given order, findings keep their
/// report order (already sorted), and no timestamps or absolute paths are
/// embedded. Severities map `deny → error`, `warn → warning`,
/// `info → note`.
pub fn to_sarif(inputs: &[(String, LintReport)]) -> String {
    let mut rule_ids: Vec<&str> = Vec::new();
    for (_, report) in inputs {
        for d in &report.diagnostics {
            if !rule_ids.contains(&d.rule) {
                rule_ids.push(d.rule);
            }
        }
    }
    rule_ids.sort_unstable();

    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"rtlock-lint\",\"rules\":[",
    );
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":\"{id}\"}}"));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for (name, report) in inputs {
        for d in &report.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            let level = match d.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
                Severity::Info => "note",
            };
            out.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":{}}}",
                d.rule,
                json_string(&d.message)
            ));
            out.push_str(&format!(
                ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}}",
                json_string(name)
            ));
            if let Some(l) = d.span.line {
                out.push_str(&format!(",\"region\":{{\"startLine\":{l}"));
                if let Some(c) = d.span.col {
                    out.push_str(&format!(",\"startColumn\":{c}"));
                }
                out.push('}');
            }
            out.push('}');
            if let Some(o) = &d.span.object {
                out.push_str(&format!(
                    ",\"logicalLocations\":[{{\"name\":{}}}]",
                    json_string(o)
                ));
            }
            out.push_str("}]}");
        }
    }
    out.push_str("]}]}");
    out
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_escalates() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = LintReport::new(LintPhase::Standalone);
        r.diagnostics.push(Diagnostic {
            rule: "S002",
            severity: Severity::Deny,
            span: Span::object("a\"b"),
            message: "multi\ndriven".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"deny\":1"), "{j}");
        assert!(j.contains("multi\\ndriven"), "{j}");
        assert!(j.contains("a\\\"b"), "{j}");
    }

    #[test]
    fn text_summarizes() {
        let mut r = LintReport::new(LintPhase::PreLock);
        r.diagnostics.push(Diagnostic {
            rule: "S005",
            severity: Severity::Info,
            span: Span::line(3),
            message: "unused".into(),
        });
        let t = r.to_text();
        assert!(t.contains("[S005]"), "{t}");
        assert!(t.contains("0 deny, 0 warn, 1 info"), "{t}");
    }
}
