//! `rtlock-lint` — scan-/lock-aware static analysis over RTL, CDFG, and
//! gate netlists.
//!
//! The engine runs a catalog of rules in three groups against a
//! [`LintTarget`] (an RTL [`Module`](rtlock_rtl::Module), a gate
//! [`Netlist`](rtlock_netlist::Netlist), or both views of one design):
//!
//! * **Structural** (`S…`): combinational loops, multi-driven nets,
//!   undriven reads, width mismatches, unused nets, unreachable FSM
//!   states.
//! * **Synthesis-soundness** (`Y…`): key gates a resynthesis pass melts,
//!   key inputs with no SCOAP-observable fanout, key bits whose 0/1
//!   hardwirings are indistinguishable.
//! * **Scan-/lock-security** (`C…`): key-to-scan-cell leak paths, lock
//!   points on constant or dead nodes, key cones confined to one scan
//!   segment.
//! * **Whole-design dataflow** (`K…`): global questions answered from the
//!   `rtlock-dataflow` fixpoints — key bits with no output- or
//!   scan-observable taint, key gates provably constant under all
//!   valuations, bypassable key cones, peelable terminal key gates, dead
//!   locked logic, and taint-disjoint key partitions.
//!
//! Findings are [`Diagnostic`]s with a stable rule id, a severity, and a
//! span; [`LintReport`] renders them as text or JSON. `core::flow` runs
//! the engine as a pre-lock gate (on the input module) and a post-lock
//! gate (on the locked netlist); [`Severity::Deny`] findings abort the
//! flow. [`lint_bounded`] polls a governor
//! [`CancelToken`](rtlock_governor::CancelToken) between rules so a gate
//! degrades instead of blowing the flow's budget.
//!
//! ```
//! use rtlock_lint::{lint, LintTarget};
//!
//! let m = rtlock_rtl::parse("module t(input a, output y);\n assign y = a;\nendmodule")
//!     .expect("parse");
//! let report = lint(&LintTarget::rtl(&m));
//! assert!(report.is_clean(), "{}", report.to_text());
//! ```

pub mod diag;
pub mod engine;
pub mod rules;
pub mod target;

pub use diag::{to_sarif, Diagnostic, LintPhase, LintReport, Severity, Span};
pub use engine::{lint, lint_bounded, lint_selected_bounded, registry, rule_catalog, Rule};
pub use target::{LintTarget, KEY_PORT_PREFIX};
