//! The rule registry and the budget-aware lint driver.

use crate::diag::{Diagnostic, LintReport, Severity};
use crate::rules;
use crate::target::LintTarget;
use rtlock_governor::CancelToken;

/// One analysis rule.
///
/// Rules are pure: `check` reads the target (and its cached analyses) and
/// appends findings. A rule that needs a layer the target lacks appends
/// nothing.
pub trait Rule {
    /// Stable identifier (`S001`…, `Y001`…, `C001`…).
    fn id(&self) -> &'static str;
    /// Default severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description of what the rule detects.
    fn summary(&self) -> &'static str;
    /// Runs the rule, appending findings to `out`.
    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>);
}

/// All rules, in catalog order (structural, synthesis-soundness,
/// scan/lock security).
pub fn registry() -> Vec<Box<dyn Rule>> {
    rules::all()
}

/// The `(id, severity, summary)` catalog, for `--list-rules` and docs.
pub fn rule_catalog() -> Vec<(&'static str, Severity, &'static str)> {
    registry().iter().map(|r| (r.id(), r.severity(), r.summary())).collect()
}

/// Lints `target` under a cancel token.
///
/// The token is polled between rules: once it fires, remaining rules are
/// recorded in [`LintReport::skipped`] instead of running, so a flow gate
/// degrades (reporting what it could not check) rather than hanging.
/// Findings are sorted for run-to-run determinism.
pub fn lint_bounded(target: &LintTarget<'_>, token: &CancelToken) -> LintReport {
    lint_selected_bounded(target, token, |_| true)
}

/// Lints `target` with only the rules `select` accepts (by rule id).
///
/// Deselected rules neither run nor count as skipped. This backs the CLI's
/// `--rule` filter and the flow's stage split, where the `K` dataflow
/// rules run in their own governed `analyze` stage.
pub fn lint_selected_bounded(
    target: &LintTarget<'_>,
    token: &CancelToken,
    select: impl Fn(&str) -> bool,
) -> LintReport {
    let mut report = LintReport::new(target.phase);
    for rule in registry() {
        if !select(rule.id()) {
            continue;
        }
        if token.should_stop().is_some() {
            report.skipped.push(rule.id());
            continue;
        }
        rule.check(target, &mut report.diagnostics);
    }
    report.diagnostics.sort();
    report.diagnostics.dedup();
    report
}

/// Lints `target` with no budget.
pub fn lint(target: &LintTarget<'_>) -> LintReport {
    lint_bounded(target, &CancelToken::unlimited())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_governor::{CancelToken, Deadline};
    use rtlock_rtl::parse;
    use std::time::Duration;

    #[test]
    fn registry_has_at_least_ten_rules_across_three_groups() {
        let cat = rule_catalog();
        assert!(cat.len() >= 10, "{} rules", cat.len());
        for prefix in ["S", "Y", "C", "K"] {
            assert!(
                cat.iter().any(|(id, _, _)| id.starts_with(prefix)),
                "no `{prefix}` rules in the catalog"
            );
        }
        let mut ids: Vec<_> = cat.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.len(), "duplicate rule ids");
    }

    #[test]
    fn expired_token_skips_every_rule() {
        let m = parse("module t(input a, output y);\n assign y = a;\nendmodule").unwrap();
        let t = LintTarget::rtl(&m);
        let token = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        let report = lint_bounded(&t, &token);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.skipped.len(), registry().len());
    }

    #[test]
    fn clean_design_is_clean() {
        let m = parse("module t(input a, output y);\n assign y = a;\nendmodule").unwrap();
        let report = lint(&LintTarget::rtl(&m));
        assert!(report.is_clean(), "{}", report.to_text());
    }
}
