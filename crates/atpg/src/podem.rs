//! PODEM deterministic test generation with support for fixed (key-
//! constrained) inputs.
//!
//! Five-valued D-calculus: `0`, `1`, `X`, `D` (good 1 / faulty 0) and `D̄`.
//! Key inputs carry pre-assigned constant values (the dummy key of
//! post-test activation \[41\] or one of the valet keys of LL-ATPG \[42\]) and
//! are never branched on — which is how locking constrains ATPG in Table V.

use crate::faults::Fault;
use rtlock_netlist::{GateId, GateKind, Netlist};

/// Five-valued signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V5 {
    /// Constant 0 in both machines.
    Zero,
    /// Constant 1 in both machines.
    One,
    /// Unassigned.
    X,
    /// Good 1, faulty 0.
    D,
    /// Good 0, faulty 1.
    Dbar,
}

impl V5 {
    fn from_bool(b: bool) -> V5 {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Good-machine component (`None` for X).
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Dbar => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// Faulty-machine component (`None` for X).
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Dbar => Some(true),
            V5::X => None,
        }
    }

    fn from_pair(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(true)) => V5::One,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Dbar,
            _ => V5::X,
        }
    }
}

/// PODEM resource limits.
#[derive(Debug, Clone, Copy)]
pub struct PodemConfig {
    /// Backtrack limit before aborting a fault.
    pub max_backtracks: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig { max_backtracks: 2_000 }
    }
}

/// Result for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A test was found; the vector covers all primary inputs in input
    /// order (don't-cares filled with 0, fixed inputs with their values).
    Test(Vec<bool>),
    /// Proven untestable under the given fixed inputs.
    Untestable,
    /// Backtrack limit exceeded.
    Aborted,
}

/// PODEM engine bound to one netlist.
#[derive(Debug, Clone)]
pub struct Podem<'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    /// Fixed input values (e.g. key constraints), by gate.
    fixed: Vec<Option<bool>>,
    config: PodemConfig,
}

impl<'n> Podem<'n> {
    /// Creates an engine. `fixed` maps input gates to pinned values.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has flip-flops or cycles.
    pub fn new(netlist: &'n Netlist, fixed: &[(GateId, bool)], config: PodemConfig) -> Self {
        assert!(netlist.dffs().is_empty(), "PODEM expects a combinational (scan-view) netlist");
        let order = netlist.topo_order().expect("acyclic");
        let mut fx = vec![None; netlist.len()];
        for &(g, v) in fixed {
            assert_eq!(netlist.gate(g).kind, GateKind::Input, "fixed gate {g} must be an input");
            fx[g.index()] = Some(v);
        }
        Podem { netlist, order, fixed: fx, config }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: &Fault) -> PodemResult {
        let free_inputs: Vec<GateId> = self
            .netlist
            .inputs()
            .iter()
            .copied()
            .filter(|g| self.fixed[g.index()].is_none())
            .collect();
        let mut pi_values: Vec<Option<bool>> = vec![None; self.netlist.len()];
        for (i, fx) in self.fixed.iter().enumerate() {
            pi_values[i] = *fx;
        }
        // Decision stack: (input, value, tried_other).
        let mut stack: Vec<(GateId, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let values = self.imply(fault, &pi_values);
            if self.detected(&values) {
                let vector: Vec<bool> = self
                    .netlist
                    .inputs()
                    .iter()
                    .map(|g| pi_values[g.index()].unwrap_or(false))
                    .collect();
                return PodemResult::Test(vector);
            }
            let alive = self.test_possible(fault, &values);
            if alive {
                if let Some((pi, v)) = self.find_assignment(fault, &values, &free_inputs) {
                    pi_values[pi.index()] = Some(v);
                    stack.push((pi, v, false));
                    continue;
                }
            }
            // Backtrack.
            loop {
                match stack.pop() {
                    None => return PodemResult::Untestable,
                    Some((pi, v, tried_other)) => {
                        pi_values[pi.index()] = None;
                        if !tried_other {
                            backtracks += 1;
                            if backtracks > self.config.max_backtracks {
                                return PodemResult::Aborted;
                            }
                            pi_values[pi.index()] = Some(!v);
                            stack.push((pi, !v, true));
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Five-valued implication with the fault inserted.
    fn imply(&self, fault: &Fault, pi_values: &[Option<bool>]) -> Vec<V5> {
        let mut values = vec![V5::X; self.netlist.len()];
        for &id in &self.order {
            let g = self.netlist.gate(id);
            let mut v = match g.kind {
                GateKind::Input => pi_values[id.index()].map(V5::from_bool).unwrap_or(V5::X),
                GateKind::Const0 => V5::Zero,
                GateKind::Const1 => V5::One,
                GateKind::Dff { .. } => unreachable!("no flops in scan view"),
                _ => {
                    let ins: Vec<V5> = g.fanin.iter().map(|f| values[f.index()]).collect();
                    eval5(g.kind, &ins)
                }
            };
            if id == fault.gate {
                // Faulty machine is pinned to the stuck value.
                let faulty = Some(fault.stuck_at);
                v = V5::from_pair(v.good(), faulty);
            }
            values[id.index()] = v;
        }
        values
    }

    fn detected(&self, values: &[V5]) -> bool {
        self.netlist
            .outputs()
            .iter()
            .any(|&(_, drv)| matches!(values[drv.index()], V5::D | V5::Dbar))
    }

    /// Checks whether a test may still exist: the fault site must be
    /// excitable (good value X or opposite of stuck-at), and if excited,
    /// a D-frontier must exist.
    fn test_possible(&self, fault: &Fault, values: &[V5]) -> bool {
        let site = values[fault.gate.index()];
        match site.good() {
            Some(v) if v == fault.stuck_at => return false, // not excitable
            None => return true,                            // still free
            _ => {}
        }
        // Site carries D/D̄: need a frontier gate (some gate with a D input
        // and X output) or an already-detected output (handled earlier).
        if matches!(site, V5::D | V5::Dbar) {
            return !self.d_frontier(values).is_empty();
        }
        true
    }

    fn d_frontier(&self, values: &[V5]) -> Vec<GateId> {
        self.netlist
            .ids()
            .filter(|&id| {
                let g = self.netlist.gate(id);
                g.kind.is_logic()
                    && values[id.index()] == V5::X
                    && g.fanin.iter().any(|f| matches!(values[f.index()], V5::D | V5::Dbar))
            })
            .collect()
    }

    /// Chooses the next PI assignment by trying the excitation objective
    /// first, then every D-frontier gate, backtracing each candidate
    /// objective until one reaches a free input.
    fn find_assignment(
        &self,
        fault: &Fault,
        values: &[V5],
        free_inputs: &[GateId],
    ) -> Option<(GateId, bool)> {
        // 1. Excite the fault.
        if values[fault.gate.index()].good().is_none() {
            if let Some(a) = self.backtrace((fault.gate, !fault.stuck_at), values, free_inputs) {
                return Some(a);
            }
        }
        // 2. Propagate: for each D-frontier gate, set an X side input to
        //    its non-controlling value.
        for gate in self.d_frontier(values) {
            let g = self.netlist.gate(gate);
            if g.kind == GateKind::Mux {
                // Steer the select toward the D-carrying data pin.
                let sel = g.fanin[0];
                if values[sel.index()] == V5::X {
                    let through_b = matches!(values[g.fanin[2].index()], V5::D | V5::Dbar);
                    if let Some(a) = self.backtrace((sel, through_b), values, free_inputs) {
                        return Some(a);
                    }
                }
            }
            let noncontrol = match g.kind {
                GateKind::And | GateKind::Nand => true,
                GateKind::Or | GateKind::Nor => false,
                _ => false, // XOR/XNOR/MUX-data: any value propagates; try 0
            };
            for &f in &g.fanin {
                if values[f.index()] == V5::X {
                    if let Some(a) = self.backtrace((f, noncontrol), values, free_inputs) {
                        return Some(a);
                    }
                }
            }
        }
        None
    }

    /// Backtraces an objective to a free primary input assignment.
    fn backtrace(
        &self,
        objective: (GateId, bool),
        values: &[V5],
        _free_inputs: &[GateId],
    ) -> Option<(GateId, bool)> {
        let (mut net, mut value) = objective;
        loop {
            let g = self.netlist.gate(net);
            match g.kind {
                GateKind::Input => {
                    if self.fixed[net.index()].is_some() || values[net.index()] != V5::X {
                        return None; // cannot control a fixed/assigned input
                    }
                    return Some((net, value));
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Buf => net = g.fanin[0],
                GateKind::Not => {
                    value = !value;
                    net = g.fanin[0];
                }
                GateKind::Nand | GateKind::Nor => {
                    let inner = match g.kind {
                        GateKind::Nand => !value,
                        _ => !value,
                    };
                    // Choose an X input to steer.
                    let pick = g.fanin.iter().find(|f| values[f.index()] == V5::X)?;
                    value = match g.kind {
                        GateKind::Nand => inner, // need AND(in) == !value
                        _ => inner,
                    };
                    net = *pick;
                }
                GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Xnor => {
                    let pick = g.fanin.iter().find(|f| values[f.index()] == V5::X)?;
                    net = *pick;
                    // Keep `value` as-is: for AND/OR this drives toward the
                    // requested output; for XOR either polarity can work.
                }
                GateKind::Mux => {
                    // Prefer steering the select if free, else a data pin.
                    let sel = g.fanin[0];
                    if values[sel.index()] == V5::X {
                        net = sel;
                        value = false;
                    } else {
                        let pick = g.fanin[1..].iter().find(|f| values[f.index()] == V5::X)?;
                        net = *pick;
                    }
                }
                GateKind::Dff { .. } => return None,
            }
        }
    }
}

/// Five-valued gate evaluation (componentwise over good/faulty machines).
fn eval5(kind: GateKind, ins: &[V5]) -> V5 {
    let good: Vec<Option<bool>> = ins.iter().map(|v| v.good()).collect();
    let faulty: Vec<Option<bool>> = ins.iter().map(|v| v.faulty()).collect();
    V5::from_pair(eval3(kind, &good), eval3(kind, &faulty))
}

/// Three-valued (0/1/X) gate evaluation with controlling-value shortcuts.
fn eval3(kind: GateKind, ins: &[Option<bool>]) -> Option<bool> {
    let all_known = ins.iter().all(|v| v.is_some());
    match kind {
        GateKind::And | GateKind::Nand => {
            let any0 = ins.contains(&Some(false));
            let base = if any0 {
                Some(false)
            } else if all_known {
                Some(true)
            } else {
                None
            };
            base.map(|b| if kind == GateKind::Nand { !b } else { b })
        }
        GateKind::Or | GateKind::Nor => {
            let any1 = ins.contains(&Some(true));
            let base = if any1 {
                Some(true)
            } else if all_known {
                Some(false)
            } else {
                None
            };
            base.map(|b| if kind == GateKind::Nor { !b } else { b })
        }
        GateKind::Xor | GateKind::Xnor => {
            if !all_known {
                return None;
            }
            let parity = ins.iter().filter(|v| **v == Some(true)).count() % 2 == 1;
            Some(if kind == GateKind::Xnor { !parity } else { parity })
        }
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].map(|b| !b),
        GateKind::Mux => match ins[0] {
            Some(false) => ins[1],
            Some(true) => ins[2],
            None => {
                if ins[1].is_some() && ins[1] == ins[2] {
                    ins[1]
                } else {
                    None
                }
            }
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::enumerate_faults;
    use crate::fault_sim::FaultSim;

    fn check_test_detects(netlist: &Netlist, fault: &Fault, vector: &[bool]) {
        let fs = FaultSim::new(netlist);
        let inputs: Vec<u64> = vector.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let good = fs.good_sim(&inputs);
        assert_eq!(fs.detect_lanes(fault, &good) & 1, 1, "vector {vector:?} fails for {fault:?}");
    }

    #[test]
    fn generates_tests_for_all_testable_faults() {
        // y = (a & b) ^ (c | d)
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let d = n.add_input("d");
        let ab = n.add_gate(GateKind::And, vec![a, b]);
        let cd = n.add_gate(GateKind::Or, vec![c, d]);
        let y = n.add_gate(GateKind::Xor, vec![ab, cd]);
        n.add_output("y", y);
        let podem = Podem::new(&n, &[], PodemConfig::default());
        for f in enumerate_faults(&n) {
            match podem.generate(&f) {
                PodemResult::Test(vec) => check_test_detects(&n, &f, &vec),
                other => panic!("fault {f:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = a | (a & b): AND output SA0 is redundant.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let and = n.add_gate(GateKind::And, vec![a, b]);
        let or = n.add_gate(GateKind::Or, vec![a, and]);
        n.add_output("y", or);
        let podem = Podem::new(&n, &[], PodemConfig::default());
        let res = podem.generate(&Fault { gate: and, stuck_at: false });
        assert_eq!(res, PodemResult::Untestable);
    }

    #[test]
    fn fixed_inputs_block_some_faults() {
        // y = a & k. With k fixed to 0, faults below the AND are untestable.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let k = n.add_input("k");
        let g = n.add_gate(GateKind::And, vec![a, k]);
        n.add_output("y", g);
        let free = Podem::new(&n, &[], PodemConfig::default());
        assert!(matches!(free.generate(&Fault { gate: a, stuck_at: false }), PodemResult::Test(_)));
        let pinned = Podem::new(&n, &[(k, false)], PodemConfig::default());
        assert_eq!(pinned.generate(&Fault { gate: a, stuck_at: false }), PodemResult::Untestable);
        // With k = 1 it works again, and the vector respects the pin.
        let pinned1 = Podem::new(&n, &[(k, true)], PodemConfig::default());
        match pinned1.generate(&Fault { gate: a, stuck_at: false }) {
            PodemResult::Test(v) => {
                assert!(v[1], "fixed key value must appear in the vector");
                check_test_detects(&n, &Fault { gate: a, stuck_at: false }, &v);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn propagates_through_mux() {
        let mut n = Netlist::new("t");
        let s = n.add_input("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m = n.add_gate(GateKind::Mux, vec![s, a, b]);
        n.add_output("y", m);
        let podem = Podem::new(&n, &[], PodemConfig::default());
        for f in [Fault { gate: a, stuck_at: false }, Fault { gate: b, stuck_at: true }] {
            match podem.generate(&f) {
                PodemResult::Test(vec) => check_test_detects(&n, &f, &vec),
                other => panic!("{f:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn five_valued_algebra() {
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::One]), V5::D);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Zero]), V5::Zero);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Dbar]), V5::Zero);
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::One]), V5::Dbar);
        assert_eq!(eval5(GateKind::Or, &[V5::X, V5::One]), V5::One);
        assert_eq!(eval5(GateKind::Or, &[V5::X, V5::Zero]), V5::X);
        assert_eq!(eval5(GateKind::Not, &[V5::D]), V5::Dbar);
    }
}
