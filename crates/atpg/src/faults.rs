//! Single stuck-at fault model with structural collapsing.

use rtlock_netlist::{GateId, GateKind, Netlist};

/// A single stuck-at fault on a gate's output net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulty net (gate output).
    pub gate: GateId,
    /// Stuck-at value (`true` = s-a-1).
    pub stuck_at: bool,
}

impl Fault {
    /// Readable label like `g12/SA0`.
    pub fn label(&self, netlist: &Netlist) -> String {
        let name = netlist.gate_name(self.gate).map(str::to_owned).unwrap_or_else(|| self.gate.to_string());
        format!("{name}/SA{}", u8::from(self.stuck_at))
    }
}

/// Enumerates collapsed stuck-at faults.
///
/// Every primary input and logic-gate output contributes both polarities,
/// except:
/// * buffer and inverter outputs (equivalent to their input faults),
/// * constant gates (untestable by construction),
/// * flip-flop outputs in a scan view do not exist (they were cut to
///   inputs); in a sequential netlist flop outputs are included.
pub fn enumerate_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut out = Vec::new();
    for id in netlist.ids() {
        let kind = netlist.gate(id).kind;
        match kind {
            GateKind::Const0 | GateKind::Const1 => {}
            GateKind::Buf | GateKind::Not => {} // collapsed onto fanin
            _ => {
                out.push(Fault { gate: id, stuck_at: false });
                out.push(Fault { gate: id, stuck_at: true });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::Netlist;

    #[test]
    fn collapsing_drops_inverter_chains() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let i1 = n.add_gate(GateKind::Not, vec![a]);
        let i2 = n.add_gate(GateKind::Not, vec![i1]);
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, vec![i2, b]);
        n.add_output("y", g);
        let faults = enumerate_faults(&n);
        // a, b, g each contribute 2 faults; inverters collapsed.
        assert_eq!(faults.len(), 6);
        assert!(!faults.iter().any(|f| f.gate == i1 || f.gate == i2));
    }

    #[test]
    fn labels_use_names() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.add_output("y", a);
        let f = Fault { gate: a, stuck_at: true };
        assert_eq!(f.label(&n), "a/SA1");
    }
}
