//! Bit-parallel stuck-at fault simulation.
//!
//! Simulates 64 test patterns at a time. For each fault, only the fault's
//! fanout cone is re-evaluated with the fault site forced, and outputs
//! inside the cone are compared against the good machine.

use crate::faults::Fault;
use rtlock_netlist::{GateId, GateKind, Netlist};
use std::collections::HashSet;

/// Precomputed structures for repeated fault simulation on one netlist.
#[derive(Debug, Clone)]
pub struct FaultSim<'n> {
    netlist: &'n Netlist,
    order: Vec<GateId>,
    fanouts: Vec<Vec<GateId>>,
}

impl<'n> FaultSim<'n> {
    /// Builds the simulator (topological order + fanout lists).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is cyclic or contains flip-flops (fault
    /// simulation runs on the scan view).
    pub fn new(netlist: &'n Netlist) -> Self {
        assert!(netlist.dffs().is_empty(), "fault simulation expects a combinational (scan-view) netlist");
        let order = netlist.topo_order().expect("acyclic");
        FaultSim { netlist, order, fanouts: netlist.fanouts() }
    }

    /// The netlist under test.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Good-machine simulation of one 64-pattern block.
    /// `inputs[i]` holds the 64 values of input `i` (in input order).
    pub fn good_sim(&self, inputs: &[u64]) -> Vec<u64> {
        let ins = self.netlist.inputs();
        assert_eq!(inputs.len(), ins.len(), "input vector count mismatch");
        let mut values = vec![0u64; self.netlist.len()];
        for (&g, &v) in ins.iter().zip(inputs) {
            values[g.index()] = v;
        }
        for &id in &self.order {
            let g = self.netlist.gate(id);
            if g.kind.is_logic() {
                let vals: Vec<u64> = g.fanin.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = g.kind.eval64(&vals);
            } else if g.kind == GateKind::Const1 {
                values[id.index()] = u64::MAX;
            }
        }
        values
    }

    /// Returns the lanes (bitmask) in which `fault` is detected by the
    /// block whose good values are `good`.
    pub fn detect_lanes(&self, fault: &Fault, good: &[u64]) -> u64 {
        let forced = if fault.stuck_at { u64::MAX } else { 0 };
        // Lanes where the fault is excited at its site.
        let excited = good[fault.gate.index()] ^ forced;
        if excited == 0 {
            return 0;
        }
        // Event-driven cone re-simulation.
        let mut faulty: Vec<u64> = good.to_vec();
        faulty[fault.gate.index()] = forced;
        let mut cone: HashSet<GateId> = HashSet::new();
        let mut frontier = vec![fault.gate];
        while let Some(g) = frontier.pop() {
            for &f in &self.fanouts[g.index()] {
                if cone.insert(f) {
                    frontier.push(f);
                }
            }
        }
        for &id in &self.order {
            if !cone.contains(&id) {
                continue;
            }
            let g = self.netlist.gate(id);
            if g.kind.is_logic() {
                let vals: Vec<u64> = g.fanin.iter().map(|f| faulty[f.index()]).collect();
                faulty[id.index()] = g.kind.eval64(&vals);
            }
        }
        let mut detected = 0u64;
        for &(_, drv) in self.netlist.outputs() {
            detected |= good[drv.index()] ^ faulty[drv.index()];
        }
        detected
    }

    /// Simulates a block against a fault list, returning the indices of
    /// faults detected by at least one lane.
    pub fn detect_block(&self, faults: &[Fault], alive: &[bool], inputs: &[u64]) -> Vec<usize> {
        let good = self.good_sim(inputs);
        faults
            .iter()
            .enumerate()
            .filter(|(i, f)| alive[*i] && self.detect_lanes(f, &good) != 0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::enumerate_faults;
    use rtlock_netlist::Netlist;

    fn and_gate() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn detects_sa0_with_11_pattern() {
        let n = and_gate();
        let fs = FaultSim::new(&n);
        let good = fs.good_sim(&[0b1, 0b1]);
        let g = n.outputs()[0].1;
        let lanes = fs.detect_lanes(&Fault { gate: g, stuck_at: false }, &good);
        assert_eq!(lanes & 1, 1, "AND output SA0 detected by a=b=1");
        // SA1 not detected by the same pattern (good output already 1).
        let lanes = fs.detect_lanes(&Fault { gate: g, stuck_at: true }, &good);
        assert_eq!(lanes & 1, 0);
    }

    #[test]
    fn input_faults_need_propagation() {
        let n = and_gate();
        let fs = FaultSim::new(&n);
        let a = n.inputs()[0];
        // a SA0 with pattern a=1,b=0: excited but blocked by the AND.
        let good = fs.good_sim(&[1, 0]);
        assert_eq!(fs.detect_lanes(&Fault { gate: a, stuck_at: false }, &good) & 1, 0);
        // With b=1 it propagates.
        let good = fs.good_sim(&[1, 1]);
        assert_eq!(fs.detect_lanes(&Fault { gate: a, stuck_at: false }, &good) & 1, 1);
    }

    #[test]
    fn exhaustive_patterns_detect_all_and_faults() {
        let n = and_gate();
        let fs = FaultSim::new(&n);
        let faults = enumerate_faults(&n);
        let alive = vec![true; faults.len()];
        // All four input combinations in 4 lanes.
        let detected = fs.detect_block(&faults, &alive, &[0b1010, 0b1100]);
        assert_eq!(detected.len(), faults.len(), "AND is fully testable exhaustively");
    }

    #[test]
    fn redundant_fault_never_detected() {
        // y = a | (a & b): the AND is redundant; its SA0 is untestable.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let and = n.add_gate(GateKind::And, vec![a, b]);
        let or = n.add_gate(GateKind::Or, vec![a, and]);
        n.add_output("y", or);
        let fs = FaultSim::new(&n);
        let good = fs.good_sim(&[0b1010, 0b1100]);
        assert_eq!(fs.detect_lanes(&Fault { gate: and, stuck_at: false }, &good), 0);
    }
}
