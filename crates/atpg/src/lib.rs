//! Stuck-at ATPG and fault simulation for the RTLock reproduction
//! (the Table V testability study).
//!
//! * [`faults`] — collapsed single stuck-at fault enumeration;
//! * [`fault_sim`] — 64-way bit-parallel fault simulation;
//! * [`podem`] — PODEM deterministic test generation honoring fixed
//!   (key-constrained) inputs;
//! * [`engine`] — the full flow: random patterns + PODEM top-off + fault
//!   dropping, under one or several key-constraint sets.
//!
//! # Examples
//!
//! ```
//! use rtlock_netlist::{Netlist, GateKind};
//! use rtlock_atpg::{run_atpg, AtpgConfig};
//!
//! let mut n = Netlist::new("t");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(GateKind::Nand, vec![a, b]);
//! n.add_output("y", g);
//!
//! let report = run_atpg(&n, &[], &AtpgConfig::default());
//! assert_eq!(report.fault_coverage(), 1.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault_sim;
pub mod faults;
pub mod podem;

pub use engine::{run_atpg, AtpgConfig, AtpgReport};
pub use fault_sim::FaultSim;
pub use faults::{enumerate_faults, Fault};
pub use podem::{Podem, PodemConfig, PodemResult};
