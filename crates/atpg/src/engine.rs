//! The ATPG engine: random-pattern phase + PODEM top-off, with key
//! constraints and pattern compaction by fault dropping.
//!
//! Reproduces the Table V methodology: test generation for a locked,
//! scanned design under (i) one dummy-key constraint set (post-test
//! activation \[41\]) or (ii) multiple valet-key sets (LL-ATPG \[42\]), which
//! let the ATPG tool reach faults a single constraint blocks.

use crate::fault_sim::FaultSim;
use crate::faults::enumerate_faults;
use crate::podem::{Podem, PodemConfig, PodemResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlock_governor::CancelToken;
use rtlock_netlist::{GateId, Netlist};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Random-pattern blocks per key-constraint set (64 patterns each).
    pub random_blocks: usize,
    /// PODEM backtrack limit per fault.
    pub max_backtracks: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Cooperative stop signal, polled between pattern blocks and between
    /// PODEM faults. When it fires the engine returns the coverage
    /// achieved so far with [`AtpgReport::aborted_early`] set; undetected
    /// faults count as aborted, never silently as untestable.
    pub cancel: CancelToken,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_blocks: 16,
            max_backtracks: 2_000,
            seed: 0xA7B6,
            cancel: CancelToken::unlimited(),
        }
    }
}

/// Coverage report (the Table V row contents).
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgReport {
    /// Generated test patterns (full input vectors, input order).
    pub patterns: Vec<Vec<bool>>,
    /// Total collapsed faults.
    pub total_faults: usize,
    /// Faults detected by at least one pattern under some key set.
    pub detected: usize,
    /// Faults proven untestable under *every* key-constraint set.
    pub untestable: usize,
    /// Faults aborted (backtrack limit) and not otherwise detected.
    pub aborted: usize,
    /// `true` when the engine stopped early on its [`AtpgConfig::cancel`]
    /// token. Coverage numbers then reflect only the work completed;
    /// callers should treat them as a lower bound (and may fall back to
    /// SCOAP testability estimates).
    pub aborted_early: bool,
}

impl AtpgReport {
    /// Fault coverage: `detected / total`.
    pub fn fault_coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Test coverage: `detected / (total − untestable)`.
    pub fn test_coverage(&self) -> f64 {
        let denom = self.total_faults - self.untestable;
        if denom == 0 {
            return 1.0;
        }
        self.detected as f64 / denom as f64
    }
}

/// Runs ATPG on a combinational (scan-view) netlist.
///
/// `key_constraint_sets` pins the key inputs to one or more value sets; an
/// empty slice means unconstrained keys. A fault counts as detected if any
/// set detects it; untestable only if proven so under every set.
///
/// # Panics
///
/// Panics if the netlist has flip-flops, or if a key set's length differs
/// from the number of key inputs.
pub fn run_atpg(netlist: &Netlist, key_constraint_sets: &[Vec<bool>], config: &AtpgConfig) -> AtpgReport {
    let faults = enumerate_faults(netlist);
    let total = faults.len();
    let sim = FaultSim::new(netlist);
    let keys: Vec<GateId> = netlist.key_inputs.clone();
    for set in key_constraint_sets {
        assert_eq!(set.len(), keys.len(), "key constraint length mismatch");
    }
    let sets: Vec<Option<&Vec<bool>>> = if key_constraint_sets.is_empty() {
        vec![None]
    } else {
        key_constraint_sets.iter().map(Some).collect()
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut alive = vec![true; total]; // not yet detected
    let mut untestable_votes = vec![0usize; total];
    let mut aborted_any = vec![false; total];
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let inputs = netlist.inputs().to_vec();

    let mut aborted_early = false;
    'sets: for set in &sets {
        let fixed: Vec<(GateId, bool)> = match set {
            Some(values) => keys.iter().copied().zip(values.iter().copied()).collect(),
            None => Vec::new(),
        };
        // Random phase.
        for _ in 0..config.random_blocks {
            if config.cancel.should_stop().is_some() {
                aborted_early = true;
                break 'sets;
            }
            if alive.iter().all(|a| !a) {
                break;
            }
            let block: Vec<u64> = inputs
                .iter()
                .map(|g| match fixed.iter().find(|(k, _)| k == g) {
                    Some((_, true)) => u64::MAX,
                    Some((_, false)) => 0,
                    None => rng.gen(),
                })
                .collect();
            let good = sim.good_sim(&block);
            // For each newly detected fault, keep the first detecting lane
            // as a pattern.
            let mut lane_used = 0u64;
            for (fi, f) in faults.iter().enumerate() {
                if !alive[fi] {
                    continue;
                }
                let lanes = sim.detect_lanes(f, &good);
                if lanes != 0 {
                    alive[fi] = false;
                    // Reuse an already-kept lane when possible (compaction).
                    let lane = if lanes & lane_used != 0 {
                        (lanes & lane_used).trailing_zeros()
                    } else {
                        let l = lanes.trailing_zeros();
                        lane_used |= 1 << l;
                        patterns.push(block.iter().map(|w| w >> l & 1 == 1).collect());
                        l
                    };
                    let _ = lane;
                }
            }
        }
        // Deterministic phase.
        let podem = Podem::new(netlist, &fixed, PodemConfig { max_backtracks: config.max_backtracks });
        for fi in 0..total {
            if config.cancel.should_stop().is_some() {
                aborted_early = true;
                break 'sets;
            }
            if !alive[fi] {
                continue;
            }
            match podem.generate(&faults[fi]) {
                PodemResult::Test(vector) => {
                    alive[fi] = false;
                    // Fault-drop with the new pattern.
                    let block: Vec<u64> = vector.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                    let good = sim.good_sim(&block);
                    for (fj, fault_j) in faults.iter().enumerate() {
                        if alive[fj] && sim.detect_lanes(fault_j, &good) != 0 {
                            alive[fj] = false;
                        }
                    }
                    patterns.push(vector);
                }
                PodemResult::Untestable => untestable_votes[fi] += 1,
                PodemResult::Aborted => aborted_any[fi] = true,
            }
        }
    }

    let detected = alive.iter().filter(|a| !**a).count();
    let untestable = (0..total)
        .filter(|&fi| alive[fi] && untestable_votes[fi] == sets.len())
        .count();
    let aborted = (0..total)
        .filter(|&fi| alive[fi] && untestable_votes[fi] < sets.len())
        .count();
    AtpgReport { patterns, total_faults: total, detected, untestable, aborted, aborted_early }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_netlist::GateKind;

    /// 4-bit ripple-carry adder netlist built by hand.
    fn adder() -> Netlist {
        let mut n = Netlist::new("add4");
        let a: Vec<_> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        // Half adder first (a constant carry-in would create a genuinely
        // untestable fault).
        let s0 = n.add_gate(GateKind::Xor, vec![a[0], b[0]]);
        let mut carry = n.add_gate(GateKind::And, vec![a[0], b[0]]);
        n.add_output("s0", s0);
        for i in 1..4 {
            let axb = n.add_gate(GateKind::Xor, vec![a[i], b[i]]);
            let s = n.add_gate(GateKind::Xor, vec![axb, carry]);
            let c1 = n.add_gate(GateKind::And, vec![a[i], b[i]]);
            let c2 = n.add_gate(GateKind::And, vec![axb, carry]);
            carry = n.add_gate(GateKind::Or, vec![c1, c2]);
            n.add_output(format!("s{i}"), s);
        }
        n.add_output("cout", carry);
        n
    }

    #[test]
    fn adder_is_fully_testable() {
        let n = adder();
        let report = run_atpg(&n, &[], &AtpgConfig::default());
        assert_eq!(report.untestable, 0, "adders have no redundant logic");
        assert_eq!(report.aborted, 0);
        assert!(report.fault_coverage() > 0.999, "coverage {}", report.fault_coverage());
        assert!(!report.patterns.is_empty());
    }

    #[test]
    fn patterns_actually_detect_claimed_faults() {
        let n = adder();
        let report = run_atpg(&n, &[], &AtpgConfig::default());
        // Re-simulate all patterns and count detected faults independently.
        let sim = FaultSim::new(&n);
        let faults = enumerate_faults(&n);
        let mut detected = vec![false; faults.len()];
        for p in &report.patterns {
            let block: Vec<u64> = p.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let good = sim.good_sim(&block);
            for (fi, f) in faults.iter().enumerate() {
                if sim.detect_lanes(f, &good) & 1 == 1 {
                    detected[fi] = true;
                }
            }
        }
        assert_eq!(detected.iter().filter(|d| **d).count(), report.detected);
    }

    #[test]
    fn key_constraints_reduce_coverage_then_multiple_sets_recover() {
        // y = (a XOR k0) & (b XOR k1): one key set blocks some faults,
        // an opposite set recovers them.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k0 = n.add_input("keyinput0");
        let k1 = n.add_input("keyinput1");
        n.mark_key_input(k0);
        n.mark_key_input(k1);
        let x0 = n.add_gate(GateKind::Xor, vec![a, k0]);
        let x1 = n.add_gate(GateKind::Xor, vec![b, k1]);
        let g = n.add_gate(GateKind::And, vec![x0, x1]);
        n.add_output("y", g);

        let one = run_atpg(&n, &[vec![false, false]], &AtpgConfig::default());
        let multi = run_atpg(
            &n,
            &[vec![false, false], vec![true, true]],
            &AtpgConfig::default(),
        );
        assert!(multi.fault_coverage() >= one.fault_coverage());
        // Key-input faults themselves are untestable when keys are pinned
        // one way but become testable with complementary sets.
        assert!(multi.untestable <= one.untestable);
    }

    #[test]
    fn coverage_metrics_consistent() {
        let r = AtpgReport {
            patterns: vec![],
            total_faults: 10,
            detected: 8,
            untestable: 2,
            aborted: 0,
            aborted_early: false,
        };
        assert!((r.fault_coverage() - 0.8).abs() < 1e-12);
        assert!((r.test_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expired_deadline_aborts_with_structured_report() {
        use rtlock_governor::{CancelToken, Deadline};
        let n = adder();
        let cfg = AtpgConfig {
            cancel: CancelToken::with_deadline(Deadline::after(std::time::Duration::ZERO)),
            ..AtpgConfig::default()
        };
        let report = run_atpg(&n, &[], &cfg);
        assert!(report.aborted_early);
        assert_eq!(report.detected, 0);
        assert_eq!(report.untestable, 0, "no fault may be called untestable on an aborted run");
        assert_eq!(report.aborted, report.total_faults);
        // Same netlist, unlimited budget: full coverage (sanity link).
        let full = run_atpg(&n, &[], &AtpgConfig::default());
        assert!(!full.aborted_early);
        assert!(full.fault_coverage() > report.fault_coverage());
    }
}
