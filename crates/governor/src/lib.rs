//! Resource-governing primitives shared by every RTLock engine.
//!
//! Long-running kernels (the SAT solver, ILP branch-and-bound, ATPG,
//! synthesis fixpoint loops, co-simulation) must never run away from the
//! caller. This crate provides the two cooperative building blocks they all
//! poll:
//!
//! * [`Deadline`] — an optional wall-clock cut-off. `Deadline::none()` is
//!   free to check and never expires, so unbounded callers pay nothing.
//! * [`CancelToken`] — a cheaply clonable flag combining an explicit
//!   cancel request (e.g. from another thread or a fault-injection harness)
//!   with a deadline. Engines poll [`CancelToken::should_stop`] at loop
//!   boundaries and unwind gracefully with partial results.
//!
//! The crate is dependency-free on purpose: it sits below `rtlock-sat`,
//! `rtlock-ilp`, `rtlock-synth` and `rtlock-atpg` in the dependency graph,
//! none of which may depend on each other.
//!
//! ```
//! use rtlock_governor::CancelToken;
//!
//! let token = CancelToken::unlimited();
//! assert!(token.should_stop().is_none());
//! token.cancel();
//! assert!(token.should_stop().is_some());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An optional wall-clock cut-off.
///
/// Copyable and cheap: `expired()` on a `Deadline::none()` is a single
/// `Option` check with no syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// A deadline `timeout` from now; `None` means unbounded.
    ///
    /// This is the shape attack configs use (`Option<Duration>` timeout
    /// fields), so they can forward directly.
    pub fn within(timeout: Option<Duration>) -> Self {
        Deadline { at: timeout.map(|t| Instant::now() + t) }
    }

    /// A deadline exactly `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline { at: Some(Instant::now() + timeout) }
    }

    /// Whether the cut-off has passed.
    pub fn expired(&self) -> bool {
        matches!(self.at, Some(d) if Instant::now() >= d)
    }

    /// The underlying instant, if bounded.
    pub fn as_instant(&self) -> Option<Instant> {
        self.at
    }

    /// Time left until the cut-off: `None` if unbounded, zero if passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines (an unbounded side never wins).
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }

    /// True if this deadline has a cut-off at all.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

/// Why a cooperative check asked the engine to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// Someone called [`CancelToken::cancel`].
    Cancelled,
}

/// A cheaply clonable cooperative-cancellation handle.
///
/// Combines an explicit cancel flag (shared across clones via an
/// `Arc<AtomicBool>`) with a [`Deadline`]. Engines poll
/// [`should_stop`](CancelToken::should_stop) at natural loop boundaries —
/// solver restarts, branch-and-bound nodes, pattern blocks — and return
/// partial results when asked to stop.
#[derive(Debug, Clone)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Deadline,
    /// Cancel flags of every ancestor (see [`CancelToken::child`]): a
    /// cancelled ancestor cancels this token, but not vice versa.
    ancestors: Vec<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never fires.
    pub fn unlimited() -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Deadline::none(),
            ancestors: Vec::new(),
        }
    }

    /// A token firing at `deadline` (or on explicit cancel).
    pub fn with_deadline(deadline: Deadline) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline,
            ancestors: Vec::new(),
        }
    }

    /// This token's clone, tightened to the earlier of its own deadline and
    /// `deadline`. The cancel flag stays shared with the parent.
    pub fn tightened(&self, deadline: Deadline) -> Self {
        CancelToken {
            cancelled: Arc::clone(&self.cancelled),
            deadline: self.deadline.min(deadline),
            ancestors: self.ancestors.clone(),
        }
    }

    /// A child token with its *own* cancel flag: cancelling the child does
    /// not touch this token, while cancelling this token (or any ancestor)
    /// still fires the child. The child inherits the deadline.
    ///
    /// This is the shape a portfolio executor needs — each racing worker
    /// gets a child it can be individually cancelled through, under one
    /// run-wide parent.
    pub fn child(&self) -> Self {
        let mut ancestors = self.ancestors.clone();
        ancestors.push(Arc::clone(&self.cancelled));
        CancelToken { cancelled: Arc::new(AtomicBool::new(false)), deadline: self.deadline, ancestors }
    }

    /// Requests cancellation; every clone (and child) observes it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was explicitly requested on this token or an
    /// ancestor (deadline ignored).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self.ancestors.iter().any(|a| a.load(Ordering::Acquire))
    }

    /// Polls the token: `Some(reason)` if the engine should unwind.
    ///
    /// The explicit flag is checked first so a cancelled token reports
    /// [`StopReason::Cancelled`] even after its deadline also passed.
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline.expired() {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }

    /// The deadline component of this token.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(!d.is_bounded());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.as_instant(), None);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn within_none_is_unbounded() {
        assert!(!Deadline::within(None).is_bounded());
        assert!(Deadline::within(Some(Duration::ZERO)).expired());
    }

    #[test]
    fn min_picks_earlier_bound() {
        let near = Deadline::after(Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(near.min(far).expired());
        assert!(far.min(near).expired());
        assert!(!far.min(Deadline::none()).expired());
        assert!(Deadline::none().min(near).expired());
    }

    #[test]
    fn cancel_propagates_across_clones() {
        let t = CancelToken::unlimited();
        let c = t.clone();
        assert_eq!(t.should_stop(), None);
        c.cancel();
        assert_eq!(t.should_stop(), Some(StopReason::Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_token_reports_expiry() {
        let t = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(t.should_stop(), Some(StopReason::DeadlineExpired));
        // Explicit cancel takes precedence over expiry in the report.
        t.cancel();
        assert_eq!(t.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn child_cancellation_is_one_way() {
        let parent = CancelToken::unlimited();
        let child = parent.child();
        let grandchild = child.child();
        // Child cancel leaves the parent alive.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled(), "child flag reaches grandchild");
        assert!(!parent.is_cancelled());
        assert_eq!(parent.should_stop(), None);
        // Parent cancel reaches every descendant.
        let child2 = parent.child();
        let grandchild2 = child2.child();
        parent.cancel();
        assert_eq!(child2.should_stop(), Some(StopReason::Cancelled));
        assert_eq!(grandchild2.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn child_inherits_deadline() {
        let parent = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        let child = parent.child();
        assert_eq!(child.should_stop(), Some(StopReason::DeadlineExpired));
    }

    #[test]
    fn tightened_shares_flag_and_narrows_deadline() {
        let parent = CancelToken::unlimited();
        let child = parent.tightened(Deadline::after(Duration::ZERO));
        assert_eq!(parent.should_stop(), None);
        assert_eq!(child.should_stop(), Some(StopReason::DeadlineExpired));
        parent.cancel();
        assert_eq!(child.should_stop(), Some(StopReason::Cancelled));
    }
}
