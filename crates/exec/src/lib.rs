//! A dependency-free work-stealing executor for the RTLock workspace.
//!
//! Every heavy RTLock workload — locking the design catalog, racing a
//! portfolio of attacks, sharding a fuzzing campaign — is embarrassingly
//! parallel at the task level but must stay *deterministic*: parallel
//! results are required to be byte-identical to sequential ones. This
//! crate provides the substrate those consumers share:
//!
//! * [`Executor::scope`] — scoped spawning onto per-worker deques with
//!   work stealing; worker threads are joined before the scope returns, so
//!   tasks may borrow from the caller's stack and no thread ever leaks;
//! * per-task **panic capture** — a panicking task is caught with
//!   [`catch_unwind`] (the same isolation the flow governor uses at stage
//!   boundaries) and surfaces as a [`TaskError::Panicked`] value or a
//!   [`TaskPanic`] record, never as a torn-down pool;
//! * **cancellation/deadline propagation** — every task receives a
//!   [`CancelToken`](rtlock_governor::CancelToken) derived from the
//!   caller's; a mid-flight cancel drains queued tasks as
//!   [`TaskError::Cancelled`] without running them, and the scope still
//!   joins every worker within a bounded wall-clock time as long as
//!   running tasks poll their token cooperatively;
//! * [`Executor::map`] — the deterministic fan-out primitive: results come
//!   back **indexed by input order**, independent of which worker ran what
//!   and in which interleaving. Consumers that merge `map` output in index
//!   order are scheduling-oblivious by construction.
//!
//! The crate is dependency-free (std only) and sits next to
//! `rtlock-governor` at the bottom of the workspace graph so every engine
//! crate can use it.
//!
//! ```
//! use rtlock_exec::Executor;
//! use rtlock_governor::CancelToken;
//!
//! let pool = Executor::new(4);
//! let out = pool.map(&CancelToken::unlimited(), (0..100).collect(), |_, n, _| n * n);
//! let squares: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares[7], 49);
//! ```

#![warn(missing_docs)]

use rtlock_governor::{CancelToken, StopReason};
use rtlock_store::{ErrorClass, RetryPolicy};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a task produced no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task body panicked; the pool caught the unwind.
    Panicked(String),
    /// The task was drained without running (or gave up cooperatively)
    /// because its cancel token fired first.
    Cancelled(StopReason),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(m) => write!(f, "task panicked: {m}"),
            TaskError::Cancelled(StopReason::Cancelled) => write!(f, "task cancelled"),
            TaskError::Cancelled(StopReason::DeadlineExpired) => write!(f, "task deadline expired"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Per-task result of a [`Executor::map`] fan-out.
pub type TaskResult<T> = Result<T, TaskError>;

/// A panic captured from a raw [`Scope::spawn`] task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload's message, best effort.
    pub message: String,
}

/// A work-stealing thread pool configuration.
///
/// Workers are spawned as *scoped* threads per [`Executor::scope`] call
/// (and joined before it returns), which keeps the API safe for
/// stack-borrowing tasks and makes leaked workers impossible; the spawn
/// cost is microseconds against task granularities of milliseconds to
/// minutes. Each worker owns a deque seeded round-robin and steals from
/// its siblings when empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1) }
    }

    /// An executor sized to the machine (`available_parallelism`, minimum 1).
    pub fn machine_sized() -> Executor {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Executor::new(n)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] whose spawned tasks execute on this
    /// executor's workers. Returns `f`'s value plus every panic captured
    /// from a spawned task (an empty vector on a clean run).
    ///
    /// All spawned tasks are executed (or drained by their own
    /// cooperative cancel checks) and all workers are joined before this
    /// returns — including when `f` itself unwinds.
    pub fn scope<'env, T>(
        &self,
        token: &CancelToken,
        f: impl FnOnce(&Scope<'_, 'env>) -> T,
    ) -> (T, Vec<TaskPanic>) {
        let shared = Shared::new(self.threads, token.clone());
        let out = std::thread::scope(|ts| {
            for worker in 0..self.threads {
                let sh = &shared;
                ts.spawn(move || worker_loop(sh, worker));
            }
            // The guard closes the pool even when `f` unwinds, so the
            // scoped workers always terminate and `thread::scope` can join
            // them instead of deadlocking.
            let guard = CloseGuard { shared: &shared };
            let out = f(&Scope { shared: &shared, _env: PhantomData });
            drop(guard);
            out
        });
        let panics = std::mem::take(&mut *shared.panics.lock().expect("panics lock"));
        (out, panics)
    }

    /// Deterministic parallel map: applies `f` to every item and returns
    /// the results **in input order**, one [`TaskResult`] per item.
    ///
    /// * A panicking `f` yields [`TaskError::Panicked`] for that item only.
    /// * Items whose token has already fired when a worker picks them up
    ///   are drained as [`TaskError::Cancelled`] without calling `f`.
    /// * `f` receives the item index, the item, and a token to poll
    ///   cooperatively.
    ///
    /// The result order never depends on worker count or scheduling, so
    /// merging in index order is deterministic across thread counts.
    pub fn map<I, T, F>(&self, token: &CancelToken, items: Vec<I>, f: F) -> Vec<TaskResult<T>>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &CancelToken) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<TaskResult<T>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let fr = &f;
        let slots_ref = &slots;
        self.scope(token, |scope| {
            for (i, item) in items.into_iter().enumerate() {
                scope.spawn(move |tok| {
                    let out = if let Some(reason) = tok.should_stop() {
                        Err(TaskError::Cancelled(reason))
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| fr(i, item, tok))) {
                            Ok(v) => Ok(v),
                            Err(payload) => Err(TaskError::Panicked(panic_message(&*payload))),
                        }
                    };
                    *slots_ref[i].lock().expect("slot lock") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("every task ran"))
            .collect()
    }
}

impl Executor {
    /// Supervised deterministic parallel map: like [`Executor::map`], but
    /// each item runs under a [`RetryPolicy`] — a task whose result
    /// `classify` calls [`ErrorClass::Transient`] is re-executed in place
    /// (on the same worker slot, after the policy's deterministic
    /// backoff) up to `policy.max_attempts` times. Permanent failures and
    /// successes are never retried, and a fired cancel token stops the
    /// retry loop at the next boundary.
    ///
    /// `classify` sees the full per-attempt [`TaskResult`] (so a captured
    /// panic can be classified transient while a structural error value
    /// is permanent) and returns `None` for definitive results. `f`
    /// additionally receives the 1-based attempt number.
    ///
    /// Returns the final per-item results in input order plus every
    /// failed attempt as a [`RetryRecord`], sorted by `(index, attempt)`
    /// — deterministic across thread counts, ready for journaling.
    pub fn map_supervised<I, T, F, C>(
        &self,
        token: &CancelToken,
        items: Vec<I>,
        policy: &RetryPolicy,
        classify: C,
        f: F,
    ) -> (Vec<TaskResult<T>>, Vec<RetryRecord>)
    where
        I: Send,
        T: Send,
        F: Fn(usize, &I, u32, &CancelToken) -> T + Sync,
        C: Fn(&TaskResult<T>) -> Option<(ErrorClass, String)> + Sync,
    {
        self.map_supervised_observed(token, items, policy, classify, |_| {}, f)
    }

    /// [`Executor::map_supervised`] with a live observer: `observe` is
    /// invoked from the worker as events happen — once per failed attempt
    /// ([`SupervisedEvent::Attempt`], before the backoff sleep) and once
    /// per item when its result is final
    /// ([`SupervisedEvent::Finished`], before the slot is stored). A
    /// checkpointing caller journals from here so a crash between items
    /// loses at most the in-flight ones; `observe` must therefore do its
    /// own locking (it runs concurrently from every worker).
    pub fn map_supervised_observed<I, T, F, C, O>(
        &self,
        token: &CancelToken,
        items: Vec<I>,
        policy: &RetryPolicy,
        classify: C,
        observe: O,
        f: F,
    ) -> (Vec<TaskResult<T>>, Vec<RetryRecord>)
    where
        I: Send,
        T: Send,
        F: Fn(usize, &I, u32, &CancelToken) -> T + Sync,
        C: Fn(&TaskResult<T>) -> Option<(ErrorClass, String)> + Sync,
        O: Fn(SupervisedEvent<'_, T>) + Sync,
    {
        let slots: Vec<Mutex<Option<TaskResult<T>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let records: Mutex<Vec<RetryRecord>> = Mutex::new(Vec::new());
        let max_attempts = policy.max_attempts.max(1);
        let (fr, cr, ob, slots_ref, records_ref, policy_ref) =
            (&f, &classify, &observe, &slots, &records, policy);
        self.scope(token, |scope| {
            for (i, item) in items.into_iter().enumerate() {
                scope.spawn(move |tok| {
                    let mut retry_no = 0u32;
                    let mut attempt = 1u32;
                    let (out, attempts) = loop {
                        let out = if let Some(reason) = tok.should_stop() {
                            Err(TaskError::Cancelled(reason))
                        } else {
                            match catch_unwind(AssertUnwindSafe(|| fr(i, &item, attempt, tok))) {
                                Ok(v) => Ok(v),
                                Err(p) => Err(TaskError::Panicked(panic_message(&*p))),
                            }
                        };
                        let Some((class, detail)) = cr(&out) else { break (out, attempt) };
                        let will_retry = class == ErrorClass::Transient
                            && attempt < max_attempts
                            && tok.should_stop().is_none();
                        let backoff = if will_retry {
                            retry_no += 1;
                            Some(policy_ref.backoff(retry_no))
                        } else {
                            None
                        };
                        let record =
                            RetryRecord { index: i, attempt, class, detail, backoff };
                        ob(SupervisedEvent::Attempt(&record));
                        records_ref.lock().expect("records lock").push(record);
                        match backoff {
                            Some(d) => sleep_cooperative(tok, d),
                            None => break (out, attempt),
                        }
                        attempt += 1;
                    };
                    ob(SupervisedEvent::Finished { index: i, attempts, result: &out });
                    *slots_ref[i].lock().expect("slot lock") = Some(out);
                });
            }
        });
        let results = slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock").expect("every task ran"))
            .collect();
        let mut records = records.into_inner().expect("records lock");
        records.sort_by_key(|r| (r.index, r.attempt));
        (results, records)
    }
}

/// One live event from [`Executor::map_supervised_observed`].
#[derive(Debug)]
pub enum SupervisedEvent<'a, T> {
    /// An attempt failed; the record says whether it will be retried
    /// (`backoff` set) or is final.
    Attempt(&'a RetryRecord),
    /// The item's result is final (success, permanent failure, exhausted
    /// retries, or cancellation).
    Finished {
        /// Input index of the item.
        index: usize,
        /// How many attempts ran (1 = first try stood).
        attempts: u32,
        /// The final result about to be merged.
        result: &'a TaskResult<T>,
    },
}

/// One failed attempt observed by [`Executor::map_supervised`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// Input index of the item.
    pub index: usize,
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// How the failure was classified.
    pub class: ErrorClass,
    /// The classifier's rendering of the failure.
    pub detail: String,
    /// The deterministic backoff slept before the next attempt (`None`
    /// when this failure was final: permanent, exhausted, or cancelled).
    pub backoff: Option<Duration>,
}

/// Sleeps `total` in small slices, polling `token`; returns early once
/// the token fires so a cancelled campaign never sits out a long backoff.
fn sleep_cooperative(token: &CancelToken, total: Duration) {
    let slice = Duration::from_millis(5);
    let mut left = total;
    while !left.is_zero() {
        if token.should_stop().is_some() {
            return;
        }
        let step = left.min(slice);
        std::thread::sleep(step);
        left -= step;
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::machine_sized()
    }
}

/// Handle for spawning tasks inside an [`Executor::scope`] call.
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns a task onto the pool. The task receives the scope's
    /// [`CancelToken`] and should poll it at its own loop boundaries; a
    /// panicking task is captured into the scope's [`TaskPanic`] list.
    pub fn spawn(&self, job: impl FnOnce(&CancelToken) + Send + 'env) {
        self.shared.spawn(Box::new(job));
    }

    /// The token tasks of this scope receive.
    pub fn token(&self) -> &CancelToken {
        &self.shared.token
    }
}

type Job<'env> = Box<dyn FnOnce(&CancelToken) + Send + 'env>;

/// State shared between the scope owner and its workers.
struct Shared<'env> {
    /// One deque per worker; [`Shared::spawn`] deals round-robin and idle
    /// workers steal from siblings.
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Tasks spawned but not yet finished (queued + running).
    pending: AtomicUsize,
    /// Set once the scope closure returned: no further spawns will come,
    /// so `pending == 0` means the pool is drained.
    closed: AtomicBool,
    /// Round-robin spawn cursor.
    cursor: AtomicUsize,
    /// Pairs with `cv` for idle parking and the final drain wait.
    sync: Mutex<()>,
    cv: Condvar,
    panics: Mutex<Vec<TaskPanic>>,
    token: CancelToken,
}

impl<'env> Shared<'env> {
    fn new(threads: usize, token: CancelToken) -> Shared<'env> {
        Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
            sync: Mutex::new(()),
            cv: Condvar::new(),
            panics: Mutex::new(Vec::new()),
            token,
        }
    }

    fn spawn(&self, job: Job<'env>) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let qi = self.cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[qi].lock().expect("queue lock").push_back(job);
        let _g = self.sync.lock().expect("sync lock");
        self.cv.notify_all();
    }

    /// Pops from the worker's own deque (FIFO) or steals from a sibling
    /// (LIFO end, classic stealing order).
    fn grab(&self, me: usize) -> Option<Job<'env>> {
        if let Some(job) = self.queues[me].lock().expect("queue lock").pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(job) = self.queues[victim].lock().expect("queue lock").pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn run(&self, job: Job<'env>) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(&self.token))) {
            self.panics
                .lock()
                .expect("panics lock")
                .push(TaskPanic { message: panic_message(&*payload) });
        }
        // Decrement under the sync lock so the close-waiter cannot miss
        // the final notify between its predicate check and its wait.
        let _g = self.sync.lock().expect("sync lock");
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.cv.notify_all();
        }
    }

    fn drained(&self) -> bool {
        self.closed.load(Ordering::Acquire) && self.pending.load(Ordering::Acquire) == 0
    }

    fn close_and_wait(&self) {
        self.closed.store(true, Ordering::Release);
        let mut g = self.sync.lock().expect("sync lock");
        self.cv.notify_all();
        while self.pending.load(Ordering::Acquire) != 0 {
            // The timeout is belt-and-braces against a lost wakeup; the
            // common path is one notify when the last task finishes.
            let (guard, _) =
                self.cv.wait_timeout(g, Duration::from_millis(1)).expect("sync lock");
            g = guard;
        }
    }
}

/// Closes the pool when dropped — including during an unwind of the scope
/// closure — so scoped workers always terminate.
struct CloseGuard<'pool, 'env> {
    shared: &'pool Shared<'env>,
}

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.shared.close_and_wait();
    }
}

fn worker_loop(shared: &Shared<'_>, me: usize) {
    loop {
        match shared.grab(me) {
            Some(job) => shared.run(job),
            None => {
                if shared.drained() {
                    return;
                }
                let g = shared.sync.lock().expect("sync lock");
                if shared.drained() {
                    return;
                }
                // Park briefly; spawn/finish notifications wake us early.
                drop(shared.cv.wait_timeout(g, Duration::from_millis(1)).expect("sync lock"));
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (the same shape the
/// flow governor uses). Public so sequential supervisors outside the pool
/// can report captured panics with identical wording.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_governor::Deadline;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    #[test]
    fn map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&n| n.wrapping_mul(n) ^ 0xA5).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Executor::new(threads);
            let out =
                pool.map(&CancelToken::unlimited(), items.clone(), |_, n, _| n.wrapping_mul(n) ^ 0xA5);
            let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn work_is_actually_parallel() {
        let pool = Executor::new(4);
        let started = Instant::now();
        let out = pool.map(&CancelToken::unlimited(), vec![(); 16], |_, (), _| {
            std::thread::sleep(Duration::from_millis(50));
        });
        assert!(out.iter().all(|r| r.is_ok()));
        let elapsed = started.elapsed();
        // Sequential would take 800ms; 4 workers take ~200ms.
        assert!(elapsed < Duration::from_millis(600), "no speedup observed: {elapsed:?}");
    }

    #[test]
    fn a_panicking_task_fails_alone() {
        let pool = Executor::new(4);
        let out = pool.map(&CancelToken::unlimited(), (0..32).collect(), |_, n: u32, _| {
            if n == 13 {
                panic!("unlucky {n}");
            }
            n
        });
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                match r {
                    Err(TaskError::Panicked(msg)) => assert!(msg.contains("unlucky 13"), "{msg}"),
                    other => panic!("expected panic capture, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u32));
            }
        }
    }

    #[test]
    fn pre_cancelled_token_drains_everything() {
        let pool = Executor::new(2);
        let token = CancelToken::unlimited();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let out = pool.map(&token, vec![(); 64], |_, (), _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0, "cancelled tasks must not run");
        assert!(out
            .iter()
            .all(|r| matches!(r, Err(TaskError::Cancelled(StopReason::Cancelled)))));
    }

    #[test]
    fn expired_deadline_reports_deadline_reason() {
        let pool = Executor::new(2);
        let token = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        let out = pool.map(&token, vec![(); 4], |_, (), _| ());
        assert!(out
            .iter()
            .all(|r| matches!(r, Err(TaskError::Cancelled(StopReason::DeadlineExpired)))));
    }

    #[test]
    fn mid_flight_cancel_drains_without_deadlock() {
        let pool = Executor::new(4);
        let token = CancelToken::unlimited();
        let watcher_token = token.clone();
        let watcher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            watcher_token.cancel();
        });
        let started = Instant::now();
        // 64 tasks that each cooperatively spin until cancelled: without
        // the cancel drain this would never finish.
        let out = pool.map(&token, vec![(); 64], |_, (), tok| {
            while tok.should_stop().is_none() {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        watcher.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(5), "drain exceeded bound");
        let completed = out.iter().filter(|r| r.is_ok()).count();
        let drained = out.len() - completed;
        assert!(drained > 0, "some queued tasks must have been drained");
    }

    #[test]
    fn scope_spawn_runs_every_task_and_collects_panics() {
        let pool = Executor::new(3);
        let sum = AtomicU64::new(0);
        let ((), panics) = pool.scope(&CancelToken::unlimited(), |scope| {
            for i in 1..=100u64 {
                let sum = &sum;
                scope.spawn(move |_| {
                    if i == 50 {
                        panic!("task {i} exploded");
                    }
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050 - 50);
        assert_eq!(panics.len(), 1);
        assert!(panics[0].message.contains("task 50 exploded"));
    }

    #[test]
    fn scope_closure_panic_still_joins_workers() {
        let pool = Executor::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(&CancelToken::unlimited(), |scope| {
                let ran = &ran;
                scope.spawn(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                panic!("scope body bug");
            })
        }));
        assert!(result.is_err(), "the scope closure's panic propagates");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "spawned work still completed");
    }

    #[test]
    fn supervised_map_retries_transient_failures_to_success() {
        let pool = Executor::new(4);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter_seed: 11,
        };
        // Item 5 fails (panics) on attempts 1 and 2, succeeds on 3.
        let (out, records) = pool.map_supervised(
            &CancelToken::unlimited(),
            (0..8u32).collect(),
            &policy,
            |r: &TaskResult<u32>| match r {
                Err(TaskError::Panicked(m)) => Some((ErrorClass::Transient, m.clone())),
                _ => None,
            },
            |_, &n, attempt, _| {
                if n == 5 && attempt < 3 {
                    panic!("flaky item {n} attempt {attempt}");
                }
                n * 10
            },
        );
        let got: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(records.len(), 2);
        assert_eq!((records[0].index, records[0].attempt), (5, 1));
        assert_eq!((records[1].index, records[1].attempt), (5, 2));
        // The recorded backoff schedule is the policy's, deterministically.
        assert_eq!(records[0].backoff, Some(policy.backoff(1)));
        assert_eq!(records[1].backoff, Some(policy.backoff(2)));
    }

    #[test]
    fn supervised_map_never_retries_permanent_failures() {
        let pool = Executor::new(2);
        let attempts_seen = AtomicUsize::new(0);
        let (out, records) = pool.map_supervised(
            &CancelToken::unlimited(),
            vec![()],
            &RetryPolicy::attempts(5),
            |_: &TaskResult<&str>| Some((ErrorClass::Permanent, "structural".into())),
            |_, (), _, _| {
                attempts_seen.fetch_add(1, Ordering::Relaxed);
                "value"
            },
        );
        assert_eq!(attempts_seen.load(Ordering::Relaxed), 1, "exactly one attempt");
        assert_eq!(out[0], Ok("value"), "the classified value is still returned");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].class, ErrorClass::Permanent);
        assert_eq!(records[0].backoff, None);
    }

    #[test]
    fn supervised_map_exhausts_attempts_and_reports_schedule() {
        let pool = Executor::new(3);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 3,
        };
        let (out, records) = pool.map_supervised(
            &CancelToken::unlimited(),
            vec![0u8; 2],
            &policy,
            |r: &TaskResult<u8>| match r {
                Err(TaskError::Panicked(m)) => Some((ErrorClass::Transient, m.clone())),
                _ => None,
            },
            |i, _, attempt, _| panic!("always failing {i} attempt {attempt}"),
        );
        for r in &out {
            assert!(matches!(r, Err(TaskError::Panicked(_))), "got {r:?}");
        }
        // Per item: attempts 1 and 2 retried, attempt 3 final.
        assert_eq!(records.len(), 6);
        for (i, chunk) in records.chunks(3).enumerate() {
            assert!(chunk.iter().all(|r| r.index == i));
            assert_eq!(chunk[0].backoff, Some(policy.backoff(1)));
            assert_eq!(chunk[1].backoff, Some(policy.backoff(2)));
            assert_eq!(chunk[2].backoff, None, "final failure records no backoff");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Executor::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(&CancelToken::unlimited(), vec![1, 2, 3], |_, n, _| n * 2);
        assert_eq!(out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(), vec![2, 4, 6]);
    }
}
