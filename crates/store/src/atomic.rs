//! Atomic whole-file commits.
//!
//! Result artifacts (bench JSON, corpus reproducers, catalog reports)
//! must never be observed half-written: a crash mid-`fs::write` leaves a
//! torn file that a resumed campaign or a CI diff would misread as real
//! output. [`atomic_write`] commits via the classic tempfile dance —
//! write a sibling temp file, fsync it, rename over the target, fsync
//! the directory — so readers see either the old bytes or the new bytes.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// The temp file lives in `path`'s own directory (rename is only atomic
/// within a filesystem) and carries a pid + counter suffix so concurrent
/// writers in the same process never collide. On success the data is
/// fsynced before the rename and the directory is fsynced after it
/// (best-effort on platforms where directories cannot be opened).
///
/// # Errors
///
/// Propagates filesystem errors; the temp file is removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);

    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "atomic_write needs a file name")
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let commit = (|| {
        let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        f.write_all(bytes.as_ref())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if commit.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return commit;
    }
    // Durability of the rename itself: fsync the containing directory.
    // Some platforms refuse to open directories; the rename is still
    // atomic without it, so this is best-effort.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("rtlock_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("report.json");
        atomic_write(&target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        atomic_write(&target, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second, longer payload");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("rtlock_atomic_deep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let target = dir.join("a/b/out.txt");
        atomic_write(&target, b"nested").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"nested");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(std::path::PathBuf::from(""), b"x").is_err());
    }
}
