//! The append-only, checksummed write-ahead journal.
//!
//! # On-disk format
//!
//! A journal is a sequence of framed records, one per line:
//!
//! ```text
//! RTLJ <crc32:8 hex> <len:decimal> <payload:len bytes>\n
//! ```
//!
//! The payload is an [`Event`](crate::Event) encoded by
//! [`Event::encode`](crate::Event::encode) — escaped, so it contains no
//! raw newline; the CRC32 (IEEE, reflected) is computed over exactly the
//! payload bytes. Records are written with a single `write` call and
//! fsynced before [`Journal::append`] returns, so a record either exists
//! completely or is a *torn tail* the next recovery drops.
//!
//! # Recovery protocol
//!
//! [`Journal::open`] scans the file from the start:
//!
//! * every well-framed, checksum-valid record becomes an event;
//! * a record that fails framing or checksumming **at the end of the
//!   file** is a torn tail (the crash landed mid-append) — dropped,
//!   reported via [`Recovery::torn_tail`];
//! * a corrupt record **in the middle** poisons everything after it:
//!   recovery stops there (replaying records that follow a corruption
//!   would resurrect state the corrupted record may have superseded) and
//!   reports the count of dropped bytes;
//! * in both cases the file is truncated back to its last durable record
//!   before the journal accepts new appends, so a resumed campaign's
//!   appends continue a well-formed log. Consumers must therefore treat
//!   replay as *at-least-once*: a unit whose completion record was torn
//!   re-executes, and duplicate completion records (from resume-after-
//!   resume) must be idempotent (last record wins).

use crate::wire::Event;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// What [`Journal::open`] found in an existing journal file.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Every durable event, in append order.
    pub events: Vec<Event>,
    /// Whether a torn (half-written) final record was dropped.
    pub torn_tail: bool,
    /// Byte offset of the first corrupt/torn record, when anything was
    /// dropped. The file was truncated back to this offset.
    pub truncated_at: Option<u64>,
    /// Bytes dropped by the truncation (0 on a clean open).
    pub dropped_bytes: u64,
}

/// An open journal handle positioned for appends.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Whether appends fsync before returning (on by default; tests that
    /// write thousands of records may disable it).
    sync: bool,
    appended: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, recovering every
    /// durable record and truncating any torn or corrupt suffix.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. Corruption is *not* an error — it is
    /// reported through [`Recovery`].
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Journal, Recovery)> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let (events, good_len, torn_tail) = scan(&bytes);
        let mut recovery = Recovery { events, ..Recovery::default() };
        if (good_len as u64) < bytes.len() as u64 {
            recovery.torn_tail = torn_tail;
            recovery.truncated_at = Some(good_len as u64);
            recovery.dropped_bytes = bytes.len() as u64 - good_len as u64;
            file.set_len(good_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { path, file, sync: true, appended: 0 }, recovery))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables (or re-enables) the per-append fsync. Appends are still
    /// single `write` calls, so framing integrity is unaffected — only
    /// power-loss durability of the most recent records.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Records appended through this handle (not counting recovery).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one event durably: a single framed write followed by an
    /// fsync (unless [`set_sync`](Journal::set_sync) disabled it).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the record may be torn, and
    /// the next [`Journal::open`] will drop it.
    pub fn append(&mut self, event: &Event) -> std::io::Result<()> {
        let payload = event.encode();
        let record =
            format!("RTLJ {:08X} {} {}\n", crc32(payload.as_bytes()), payload.len(), payload);
        self.file.write_all(record.as_bytes())?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.appended += 1;
        Ok(())
    }
}

/// Parses the longest valid record prefix of `bytes`. Returns the events,
/// the byte length of that prefix, and whether the remainder looks like a
/// torn tail (truncated mid-record with no newline after it) rather than
/// a checksum corruption followed by more data.
fn scan(bytes: &[u8]) -> (Vec<Event>, usize, bool) {
    let mut events = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match parse_record(&bytes[pos..]) {
            Ok((event, consumed)) => {
                events.push(event);
                pos += consumed;
            }
            Err(incomplete) => {
                // `incomplete` = the record ran off the end of the buffer
                // (classic torn append). Anything else — bad magic, bad
                // checksum, bad framing with bytes to spare — is
                // corruption.
                return (events, pos, incomplete);
            }
        }
    }
    (events, pos, false)
}

/// Parses one record at the start of `bytes`. `Ok((event, consumed))` on
/// success; `Err(true)` when the buffer ends before the record does
/// (torn), `Err(false)` on structural/checksum corruption.
fn parse_record(bytes: &[u8]) -> Result<(Event, usize), bool> {
    const MAGIC: &[u8] = b"RTLJ ";
    if bytes.len() < MAGIC.len() {
        return Err(bytes == &MAGIC[..bytes.len()]);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(false);
    }
    let mut pos = MAGIC.len();
    // 8 hex digits + space.
    if bytes.len() < pos + 9 {
        return Err(true);
    }
    let crc_hex = std::str::from_utf8(&bytes[pos..pos + 8]).map_err(|_| false)?;
    let expect_crc = u32::from_str_radix(crc_hex, 16).map_err(|_| false)?;
    if bytes[pos + 8] != b' ' {
        return Err(false);
    }
    pos += 9;
    // Decimal length + space.
    let len_end = bytes[pos..]
        .iter()
        .position(|&b| b == b' ')
        .map(|i| pos + i)
        .ok_or(bytes.len() - pos <= 20)?; // a plausible length field is short
    let len: usize = std::str::from_utf8(&bytes[pos..len_end])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(false)?;
    pos = len_end + 1;
    if bytes.len() < pos + len + 1 {
        return Err(true);
    }
    let payload = &bytes[pos..pos + len];
    if bytes[pos + len] != b'\n' {
        return Err(false);
    }
    if crc32(payload) != expect_crc {
        return Err(false);
    }
    let payload = std::str::from_utf8(payload).map_err(|_| false)?;
    let event = Event::decode(payload).map_err(|_| false)?;
    Ok((event, pos + len + 1))
}

/// CRC32 (IEEE 802.3, reflected) — the ubiquitous zlib polynomial,
/// computed bytewise; no table needed at journal event rates.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rtlock_journal_{tag}_{}.j", std::process::id()))
    }

    fn write_events(path: &Path, n: usize) {
        let (mut j, _) = Journal::open(path).unwrap();
        j.set_sync(false);
        for i in 0..n {
            j.append(&Event::new("unit_finished").field("unit", format!("u{i}")).field("idx", i.to_string()))
                .unwrap();
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn empty_journal_recovers_to_nothing() {
        let path = temp_path("empty");
        let _ = std::fs::remove_file(&path);
        let (_, rec) = Journal::open(&path).unwrap();
        assert!(rec.events.is_empty());
        assert!(!rec.torn_tail);
        assert_eq!(rec.truncated_at, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_then_recover_roundtrips_in_order() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        write_events(&path, 5);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.events[3].get("unit"), Some("u3"));
        assert_eq!(rec.dropped_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_record_is_dropped_and_healed() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        write_events(&path, 4);
        // Tear the last record: chop off its final 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.events.len(), 3, "torn record dropped");
        assert!(rec.torn_tail);
        assert!(rec.dropped_bytes > 0);
        // The file healed: appending continues a well-formed log.
        j.append(&Event::new("unit_finished").field("unit", "u3b")).unwrap();
        drop(j);
        let (_, rec2) = Journal::open(&path).unwrap();
        assert_eq!(rec2.events.len(), 4);
        assert_eq!(rec2.events[3].get("unit"), Some("u3b"));
        assert_eq!(rec2.dropped_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_corrupt_middle_record_truncates_the_suffix() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        write_events(&path, 5);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the middle (third) record.
        let record_len = bytes.len() / 5;
        bytes[2 * record_len + record_len / 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.events.len(), 2, "recovery stops at the corruption");
        assert!(!rec.torn_tail, "mid-file corruption is not a torn tail");
        assert_eq!(rec.truncated_at, Some((2 * record_len) as u64));
        assert_eq!(rec.dropped_bytes as usize, bytes.len() - 2 * record_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_file_recovers_to_nothing() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a journal at all\nstill not one\n").unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.truncated_at, Some(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_append_recover_is_idempotent() {
        let path = temp_path("rar");
        let _ = std::fs::remove_file(&path);
        write_events(&path, 3);
        // First recovery + append (a "resume").
        let (mut j, rec1) = Journal::open(&path).unwrap();
        assert_eq!(rec1.events.len(), 3);
        j.append(&Event::new("unit_finished").field("unit", "u1").field("idx", "1")).unwrap();
        drop(j);
        // Second recovery (a resume-after-resume): the duplicate
        // unit_finished for u1 is preserved; consumers take the last.
        let (_, rec2) = Journal::open(&path).unwrap();
        assert_eq!(rec2.events.len(), 4);
        let u1: Vec<_> = rec2.events.iter().filter(|e| e.get("unit") == Some("u1")).collect();
        assert_eq!(u1.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
