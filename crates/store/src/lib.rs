//! Crash-safe campaign durability for the RTLock workspace.
//!
//! Long campaigns — locking the design catalog, racing an attack
//! portfolio, sharding a fuzzing run — used to be all-or-nothing: a
//! panic past the governor, a SIGKILL, or a power loss threw away hours
//! of lock→verify→attack work. This crate is the durability substrate
//! that fixes that, in three std-only pieces:
//!
//! * [`journal`] — an append-only, checksummed write-ahead journal of
//!   campaign events. Every record carries its own CRC32 and length
//!   framing; recovery tolerates a torn final record (the crash landed
//!   mid-append) and truncates at the first corrupt record so a resumed
//!   campaign never replays garbage. [`Journal::open`] self-heals the
//!   file back to its last durable record before accepting new appends.
//! * [`atomic`] — [`atomic_write`]: write-to-temp + fsync + rename +
//!   directory fsync, so result files (`BENCH_*.json`, corpus
//!   reproducers, reports) are either the old bytes or the new bytes,
//!   never a torn mix.
//! * [`retry`] — [`RetryPolicy`]: bounded attempts with a deterministic
//!   exponential backoff schedule (seeded jitter — same seed, same
//!   schedule, on every platform) plus the [`ErrorClass`]
//!   transient-vs-permanent split the supervisors key off: transient
//!   failures (stage panics, budget exhaustion) are retried, permanent
//!   ones (structural errors, model holes) never are.
//!
//! The crate sits at the very bottom of the workspace graph (std only,
//! next to `rtlock-governor`) so the executor, flow, attack and fuzz
//! crates can all share one durability vocabulary.
//!
//! ```
//! use rtlock_store::{Event, Journal};
//!
//! let dir = std::env::temp_dir().join(format!("rtlock_store_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("campaign.journal");
//! # let _ = std::fs::remove_file(&path);
//! let (mut journal, recovery) = Journal::open(&path)?;
//! assert!(recovery.events.is_empty());
//! journal.append(&Event::new("unit_finished").field("unit", "b05").field("completed", "true"))?;
//! drop(journal);
//!
//! let (_journal, recovery) = Journal::open(&path)?;
//! assert_eq!(recovery.events.len(), 1);
//! assert_eq!(recovery.events[0].get("unit"), Some("b05"));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod journal;
pub mod retry;
pub mod wire;

pub use atomic::atomic_write;
pub use journal::{Journal, Recovery};
pub use retry::{run_with_retry, ErrorClass, RetryPolicy};
pub use wire::{Event, WireError};
