//! Deterministic retry with transient/permanent classification.
//!
//! Supervisors (the executor pool, the sequential catalog loop) wrap
//! flaky campaign units in [`run_with_retry`]. Two properties matter:
//!
//! * **Determinism** — the backoff schedule is a pure function of the
//!   policy (seeded jitter via SplitMix64), so a resumed run and CI
//!   replay see the same delays and the journal records a reproducible
//!   schedule.
//! * **Classification** — only [`ErrorClass::Transient`] failures are
//!   retried. A permanent failure (structural lock error, inconsistent
//!   attack miter) re-fails identically on every attempt; retrying it
//!   burns budget and, worse, can mask the bug.

use std::time::Duration;

/// How a supervisor should treat a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Environmental / exhaustion failures (stage panic, timeout under a
    /// per-attempt budget, injected fault): worth another attempt.
    Transient,
    /// Deterministic failures (no candidates, infeasible selection,
    /// inconsistent miter, model hole): retrying cannot help.
    Permanent,
}

/// A bounded, deterministic exponential-backoff retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Cap applied to the exponential growth (before jitter).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream. Same seed → same
    /// schedule, byte-for-byte, on every platform.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and the default delays.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts, ..RetryPolicy::default() }
    }

    /// Whether this policy ever retries.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The delay before retry number `retry` (1-based: `1` is the delay
    /// after the first failure). Exponential with the base doubling per
    /// step, capped at `max_delay`, plus seeded jitter in `[0, 25%)` of
    /// the capped delay. Pure — no clocks, no global RNG.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(20);
        let base = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        let jitter_span = base.as_nanos() as u64 / 4;
        if jitter_span == 0 {
            return base;
        }
        let jitter = splitmix64(self.jitter_seed.wrapping_add(retry as u64)) % jitter_span;
        base + Duration::from_nanos(jitter)
    }

    /// The full backoff schedule: delays before retries `1..max_attempts`.
    pub fn schedule(&self) -> Vec<Duration> {
        (1..self.max_attempts).map(|r| self.backoff(r)).collect()
    }
}

/// SplitMix64 — the canonical 64-bit mixer; tiny, portable, and good
/// enough to decorrelate jitter across retries.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One attempt's record, reported to the `on_retry` observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryEvent<E> {
    /// 1-based attempt number that just failed.
    pub attempt: u32,
    /// The failure.
    pub error: E,
    /// How it was classified.
    pub class: ErrorClass,
    /// The backoff that will be slept before the next attempt (`None`
    /// when no further attempt will be made).
    pub backoff: Option<Duration>,
}

/// Runs `body` under `policy`: retries transient failures with the
/// deterministic backoff schedule, never retries permanent ones.
///
/// `classify` maps an error to its [`ErrorClass`]; `on_retry` observes
/// every failed attempt (journaling hook) *before* the backoff sleep;
/// `sleep` performs the backoff wait, letting callers substitute a
/// cancellation-aware or virtual clock (return `false` to abort the
/// retry loop, e.g. on cancellation).
///
/// # Errors
///
/// The last attempt's error when attempts are exhausted, the failure is
/// permanent, or `sleep` aborts.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    mut body: impl FnMut(u32) -> Result<T, E>,
    classify: impl Fn(&E) -> ErrorClass,
    mut on_retry: impl FnMut(&RetryEvent<E>),
    mut sleep: impl FnMut(Duration) -> bool,
) -> Result<T, E>
where
    E: Clone,
{
    let attempts = policy.max_attempts.max(1);
    let mut retry_no = 0u32;
    for attempt in 1..=attempts {
        match body(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                let class = classify(&e);
                let will_retry = class == ErrorClass::Transient && attempt < attempts;
                let backoff = if will_retry {
                    retry_no += 1;
                    Some(policy.backoff(retry_no))
                } else {
                    None
                };
                on_retry(&RetryEvent { attempt, error: e.clone(), class, backoff });
                match backoff {
                    Some(d) => {
                        if !sleep(d) {
                            return Err(e);
                        }
                    }
                    None => return Err(e),
                }
            }
        }
    }
    unreachable!("loop returns on the final attempt")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            jitter_seed: 7,
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let p = policy();
        let a = p.schedule();
        let b = policy().schedule();
        assert_eq!(a, b, "same policy, same schedule");
        assert_eq!(a.len(), 3);
        for (i, d) in a.iter().enumerate() {
            let cap = Duration::from_millis(10 << i.min(2)).min(p.max_delay);
            assert!(*d >= cap && *d < cap + cap / 4 + Duration::from_nanos(1), "retry {}: {d:?} outside [{cap:?}, cap+25%)", i + 1);
        }
        // Different seeds decorrelate.
        let other = RetryPolicy { jitter_seed: 8, ..policy() }.schedule();
        assert_ne!(a, other);
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let mut observed = Vec::new();
        let mut slept = Vec::new();
        let res = run_with_retry(
            &policy(),
            |attempt| if attempt < 3 { Err(format!("flaky {attempt}")) } else { Ok(attempt) },
            |_| ErrorClass::Transient,
            |ev| observed.push((ev.attempt, ev.backoff)),
            |d| {
                slept.push(d);
                true
            },
        );
        assert_eq!(res, Ok(3));
        assert_eq!(observed.len(), 2);
        assert_eq!(slept, policy().schedule()[..2].to_vec());
        assert!(observed.iter().all(|(_, b)| b.is_some()));
    }

    #[test]
    fn permanent_failures_never_retry() {
        let mut calls = 0;
        let res: Result<(), _> = run_with_retry(
            &policy(),
            |_| {
                calls += 1;
                Err("miter inconsistent")
            },
            |_| ErrorClass::Permanent,
            |ev| assert_eq!(ev.backoff, None),
            |_| panic!("permanent errors must not sleep"),
        );
        assert_eq!(res, Err("miter inconsistent"));
        assert_eq!(calls, 1, "exactly one attempt");
    }

    #[test]
    fn exhausted_attempts_return_last_error() {
        let mut calls = 0;
        let res: Result<(), _> = run_with_retry(
            &policy(),
            |attempt| {
                calls += 1;
                Err(format!("fail {attempt}"))
            },
            |_| ErrorClass::Transient,
            |_| {},
            |_| true,
        );
        assert_eq!(res, Err("fail 4".to_string()));
        assert_eq!(calls, 4);
    }

    #[test]
    fn cancelled_sleep_aborts_the_loop() {
        let mut calls = 0;
        let res: Result<(), _> = run_with_retry(
            &policy(),
            |_| {
                calls += 1;
                Err("flaky")
            },
            |_| ErrorClass::Transient,
            |_| {},
            |_| false,
        );
        assert_eq!(res, Err("flaky"));
        assert_eq!(calls, 1, "abort before the second attempt");
    }

    #[test]
    fn single_attempt_policy_disables_retry() {
        assert!(!RetryPolicy::default().enabled());
        assert!(RetryPolicy::attempts(3).enabled());
        assert!(RetryPolicy::default().schedule().is_empty());
    }
}
