//! The journal's record payload format: flat `kind key=value ...` events
//! with percent-escaping, chosen over a binary layout so a half-written
//! journal is still greppable during an incident.
//!
//! Values are arbitrary UTF-8 (multi-line report sections included);
//! escaping confines `%`, `=`, whitespace and control bytes to `%XX`
//! triples so records split unambiguously on single spaces and never
//! contain a raw newline — the journal's framing owns the newlines.

use std::fmt;

/// A structured campaign event: a kind tag plus ordered `(key, value)`
/// fields. Field order is preserved and duplicate keys are allowed (the
/// decoder keeps all of them; [`Event::get`] returns the first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event kind, e.g. `unit_finished`. Lowercase identifier characters
    /// only (enforced at encode time by escaping).
    pub kind: String,
    /// Ordered fields.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(kind: impl Into<String>) -> Event {
        Event { kind: kind.into(), fields: Vec::new() }
    }

    /// Adds a field (builder-style).
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> Event {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The first value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The first value under `key`, parsed.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Every value stored under `key`, in field order.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields.iter().filter(move |(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Encodes the event as a single escaped line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = escape(&self.kind);
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(&escape(k));
            s.push('=');
            s.push_str(&escape(v));
        }
        s
    }

    /// Decodes an event produced by [`Event::encode`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on an empty payload, a field without `=`, or a bad
    /// escape sequence.
    pub fn decode(payload: &str) -> Result<Event, WireError> {
        let mut parts = payload.split(' ');
        let kind = unescape(parts.next().unwrap_or(""))?;
        if kind.is_empty() {
            return Err(WireError("empty event kind".into()));
        }
        let mut fields = Vec::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| WireError(format!("field without `=`: {part:?}")))?;
            fields.push((unescape(k)?, unescape(v)?));
        }
        Ok(Event { kind, fields })
    }
}

/// A payload that does not parse as an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire format error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Whether a byte may appear verbatim in an encoded token. Conservative:
/// everything that could collide with the `space`/`=`/newline structure
/// (or render invisibly in a terminal) is escaped.
fn plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b',' | b':' | b'/' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'<' | b'>' | b'|' | b'!' | b'?' | b'*' | b'+' | b'#' | b'@' | b'~' | b'^' | b'&' | b'$' | b'\'' | b'"' | b';')
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if plain(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, WireError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| WireError(format!("truncated escape in {s:?}")))?;
            let hex = std::str::from_utf8(hex).map_err(|_| WireError("non-UTF8 escape".into()))?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| WireError(format!("bad escape %{hex} in {s:?}")))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| WireError("escaped payload is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_plain_fields() {
        let e = Event::new("stage_finished")
            .field("unit", "b05#s0")
            .field("stage", "lock")
            .field("outcome", "ok");
        let back = Event::decode(&e.encode()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.get("stage"), Some("lock"));
        assert_eq!(back.get_parsed::<u32>("missing"), None);
    }

    #[test]
    fn roundtrips_hostile_values() {
        let nasty = "multi\nline %= section\twith\r\0binary ≠ unicode";
        let e = Event::new("unit_finished").field("payload", nasty).field("payload", "second");
        let encoded = e.encode();
        assert!(!encoded.contains('\n'), "framing owns newlines: {encoded:?}");
        let back = Event::decode(&encoded).unwrap();
        assert_eq!(back.get("payload"), Some(nasty));
        assert_eq!(back.get_all("payload").count(), 2);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(Event::decode("").is_err());
        assert!(Event::decode("kind fieldwithouteq").is_err());
        assert!(Event::decode("kind a=%Z9").is_err());
        assert!(Event::decode("kind a=%4").is_err());
    }
}
