//! Criterion micro-benchmarks over the EDA pipeline: synthesis, SAT
//! solving, the SAT attack, fault simulation and the full RTLock flow.
//! Complements the table binaries (which regenerate the paper's results)
//! with performance tracking of the substrates themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use rtlock::baselines::{lock_baseline, BaselineKind};
use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::RtlLockConfig;
use rtlock_atpg::{run_atpg, AtpgConfig};
use rtlock_attacks::{sat_attack, AttackConfig};
use rtlock_sat::{SolveResult, Solver};
use rtlock_synth::{elaborate, optimize, scan, scan_view};

fn bench_synthesis(c: &mut Criterion) {
    let m = rtlock_designs::by_name("b05").expect("exists").module().expect("parses");
    c.bench_function("synthesize_b05", |b| {
        b.iter(|| {
            let mut n = elaborate(&m).expect("elaborates");
            optimize(&mut n);
            n.logic_count()
        })
    });
}

fn bench_sat_solver(c: &mut Criterion) {
    c.bench_function("sat_pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let holes = 6i32;
            let p = |i: i32, j: i32| holes * i + j + 1;
            for i in 0..7 {
                let clause: Vec<i32> = (0..holes).map(|j| p(i, j)).collect();
                s.add_dimacs_clause(&clause);
            }
            for j in 0..holes {
                for i1 in 0..7 {
                    for i2 in (i1 + 1)..7 {
                        s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });
}

fn bench_sat_attack(c: &mut Criterion) {
    let m = rtlock_designs::by_name("b05").expect("exists").module().expect("parses");
    let mut original = elaborate(&m).expect("elaborates");
    optimize(&mut original);
    let locked = lock_baseline(&original, BaselineKind::Rnd, 10.0, 24, 7);
    let mut l = locked.netlist.clone();
    scan::insert_full_scan(&mut l);
    let lv = scan_view(&l).netlist;
    let mut o = original.clone();
    scan::insert_full_scan(&mut o);
    let ov = scan_view(&o).netlist;
    c.bench_function("sat_attack_b05_rnd24", |b| {
        b.iter(|| {
            let out = sat_attack(&lv, &ov, &AttackConfig::default());
            assert!(out.key().is_some());
        })
    });
}

fn bench_atpg(c: &mut Criterion) {
    let m = rtlock_designs::by_name("b05").expect("exists").module().expect("parses");
    let mut n = elaborate(&m).expect("elaborates");
    optimize(&mut n);
    scan::insert_full_scan(&mut n);
    let view = scan_view(&n).netlist;
    c.bench_function("atpg_b05_full_scan", |b| {
        b.iter(|| {
            let report = run_atpg(&view, &[], &AtpgConfig::default());
            assert!(report.fault_coverage() > 0.9);
        })
    });
}

fn bench_rtlock_flow(c: &mut Criterion) {
    let m = rtlock_designs::by_name("b05").expect("exists").module().expect("parses");
    let config = RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, cosim_cycles: 16, corruption_samples: 1, ..DatabaseConfig::default() },
        spec: SelectionSpec { min_resilience: 100.0, max_area_pct: 30.0, min_key_bits: 8, ..SelectionSpec::default() },
        verify_cycles: 16,
        ..RtlLockConfig::default()
    };
    c.bench_function("rtlock_flow_b05", |b| {
        b.iter(|| {
            let ld = rtlock::lock(&m, &config).expect("locks");
            ld.key.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_sat_solver, bench_sat_attack, bench_atpg, bench_rtlock_flow
}
criterion_main!(benches);
