//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts the same environment knobs:
//!
//! * `RTLOCK_DESIGNS` — comma-separated benchmark subset (default: the
//!   small/medium designs; `all` runs all six, AES included);
//! * `RTLOCK_TIMEOUT_SECS` — SAT/BMC attack timeout per run (default 30;
//!   the paper used 12 h on a Xeon — scale accordingly when reproducing
//!   the long rows);
//! * `RTLOCK_MAX_BASELINE_KEYS` — cap on baseline key sizes (default 96).
//!
//! ```
//! use std::time::Duration;
//!
//! assert_eq!(rtlock_bench::secs(Duration::from_millis(1500)), "1.500");
//! assert_eq!(rtlock_bench::paper::TABLE2.len(), 6);
//! ```

#![warn(missing_docs)]

use rtlock::database::DatabaseConfig;
use rtlock::select::SelectionSpec;
use rtlock::RtlLockConfig;
use rtlock_netlist::Netlist;
use rtlock_rtl::Module;
use rtlock_synth::{elaborate, optimize};
use std::time::Duration;

/// Paper reference values for side-by-side printing.
pub mod paper {
    /// Table II: (name, #PI/PO, #gate, #FF, keys).
    pub const TABLE2: [(&str, &str, u32, u32, u32); 6] = [
        ("b05", "3/36", 1030, 34, 19),
        ("fibo", "10/91", 3449, 287, 24),
        ("b14", "34/54", 10325, 215, 38),
        ("b15", "38/70", 9029, 416, 38),
        ("sha1", "516/162", 10979, 849, 31),
        ("aes128", "390/130", 26720, 2332, 45),
    ];

    /// Table III paper rows: per design, (technique, ||k||, seconds).
    pub const TABLE3_AES: [(&str, u32, f64); 6] = [
        ("RND", 498, 8.2),
        ("SLL", 562, 181.2),
        ("TOC_MUX", 352, 1.8),
        ("TOC_XOR", 287, 16.9),
        ("IOLTS", 986, 3.1),
        ("RTLock*", 35, 36350.0),
    ];

    /// Table IV average accuracies: (technique, SWEEP %, SCOPE %).
    pub const TABLE4_AVG: [(&str, f64, f64); 4] = [
        ("TOC_MUX", 97.2, 97.1),
        ("IOLTS", 99.6, 99.5),
        ("MUX2", 93.5, 93.6),
        ("RTLock*", 52.9, 50.9),
    ];

    /// One Table V row: (design, tc1 %, fc1 %, pat1, tcN %, fcN %, patN, sets).
    pub type Table5Row = (&'static str, f64, f64, u32, f64, f64, u32, u32);

    /// Table V paper rows.
    pub const TABLE5: [Table5Row; 6] = [
        ("aes128", 99.97, 96.21, 705, 99.99, 99.25, 274, 2),
        ("sha1", 99.24, 96.63, 356, 99.91, 99.88, 193, 3),
        ("fibo", 99.80, 96.83, 251, 99.97, 97.87, 183, 2),
        ("b05", 99.34, 92.72, 68, 99.74, 93.4, 59, 2),
        ("b14", 99.83, 98.51, 1081, 99.65, 98.14, 1203, 4),
        ("b15", 99.25, 98.61, 628, 99.21, 98.59, 638, 3),
    ];

    /// Table VI paper rows: (design, functional area/delay/power %,
    /// functional+scan area/delay/power %).
    pub const TABLE6: [(&str, [f64; 3], [f64; 3]); 6] = [
        ("aes128", [8.66, 7.03, 0.0], [9.81, 3.83, 0.0]),
        ("sha1", [13.80, 11.61, 3.9], [13.45, 7.18, 2.6]),
        ("fibo", [14.28, 11.71, 0.8], [35.02, 4.80, 5.3]),
        ("b05", [23.75, 18.26, 4.7], [9.06, 14.23, -0.3]),
        ("b14", [25.24, 31.54, -0.1], [30.14, 19.80, 0.8]),
        ("b15", [23.86, 25.17, 5.5], [21.80, 0.0, 4.8]),
    ];
}

/// Benchmark subset selected by `RTLOCK_DESIGNS`.
pub fn selected_designs() -> Vec<String> {
    let default = "b05,fibo,b14".to_string();
    let spec = std::env::var("RTLOCK_DESIGNS").unwrap_or(default);
    if spec.trim() == "all" {
        rtlock_designs::catalog().into_iter().map(|b| b.name.to_string()).collect()
    } else {
        spec.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
    }
}

/// Attack timeout from `RTLOCK_TIMEOUT_SECS` (default 30 s).
pub fn attack_timeout() -> Duration {
    let secs = std::env::var("RTLOCK_TIMEOUT_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(30u64);
    Duration::from_secs(secs)
}

/// Baseline key cap from `RTLOCK_MAX_BASELINE_KEYS` (default 96).
pub fn max_baseline_keys() -> usize {
    std::env::var("RTLOCK_MAX_BASELINE_KEYS").ok().and_then(|s| s.parse().ok()).unwrap_or(96)
}

/// Parses a benchmark and synthesizes its reference netlist.
///
/// # Panics
///
/// Panics on unknown design names (the binaries validate inputs early).
pub fn prepare(name: &str) -> (Module, Netlist) {
    let b = rtlock_designs::by_name(name).unwrap_or_else(|| panic!("unknown design `{name}`"));
    let m = b.module().expect("benchmarks parse");
    let mut n = elaborate(&m).expect("benchmarks synthesize");
    optimize(&mut n);
    (m, n)
}

/// The per-design RTLock configuration used across Tables III–VI,
/// mirroring the paper's key sizes (Table II `Keys` column).
pub fn rtlock_config(name: &str, with_scan: bool) -> RtlLockConfig {
    let key_floor = match name {
        "b05" => 16,
        "fibo" => 16,
        "sha1" => 25,
        "b14" | "b15" => 32,
        "aes128" => 35,
        _ => 16,
    };
    // Larger designs skip the per-case SAT probe (structural scoring) to
    // keep database construction tractable.
    let sat_probe = matches!(name, "b05" | "fibo");
    RtlLockConfig {
        enumeration: rtlock::candidates::EnumConfig {
            max_constants: 24,
            max_arith: 24,
            max_const_key_bits: 8,
        },
        database: DatabaseConfig {
            sat_probe,
            ml_probe: sat_probe, // same size cutoff: per-bit re-synthesis
            max_ml_bias: 0.26,
            probe_timeout: Duration::from_millis(200),
            cosim_cycles: 24,
            corruption_samples: 2,
            seed: 0xDB,
        },
        spec: SelectionSpec {
            min_resilience: 200.0,
            max_area_pct: 30.0,
            min_key_bits: key_floor,
            added_res_pct: 15.0,
            shared_ov_pct: 15.0,
        },
        greedy_fallback: true,
        scan: if with_scan { Some(rtlock::scan_lock::ScanLockConfig::default()) } else { None },
        verify_cycles: 32,
        seed: 0x10C4,
    }
}

/// Formats a duration as seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_works_for_all_catalog_designs() {
        for b in rtlock_designs::catalog() {
            if b.name == "aes128" {
                continue; // covered by the slower integration path
            }
            let (m, n) = prepare(b.name);
            assert_eq!(m.name, b.name);
            assert!(n.logic_count() > 100);
        }
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(!selected_designs().is_empty());
        assert!(attack_timeout().as_secs() >= 1);
        assert!(max_baseline_keys() >= 8);
    }
}
