//! Regenerates the Section V prose claims around Table III:
//!
//! * "with doubled key size, SAT cannot break ... within the timeout" —
//!   sweeps the RTLock key-size floor and measures SAT attack time;
//! * "with the same key size, none of the circuits can be broken using
//!   the BMC attacks" — runs the BMC attack against the scan-locked
//!   surface and reports depth/timeout behaviour.

use rtlock::{lock, AttackSurface};
use rtlock_attacks::{bmc_attack, sat_attack, AttackConfig, AttackOutcome, BmcConfig};
use rtlock_bench::{attack_timeout, prepare, rtlock_config, secs, selected_designs};

fn main() {
    println!("Key-size sweep (SAT) and BMC attack on the scan-locked surface");
    println!("timeout = {} s\n", attack_timeout().as_secs());
    for name in selected_designs() {
        let (module, _) = prepare(&name);
        let base_keys = rtlock_config(&name, false).spec.min_key_bits;
        println!("{name}: SAT attack vs key-size floor");
        for mult in [1usize, 2] {
            let mut cfg = rtlock_config(&name, false);
            cfg.spec.min_key_bits = base_keys * mult;
            cfg.spec.max_area_pct *= mult as f64; // allow room for more cases
            match lock(&module, &cfg) {
                Ok(ld) => match ld.attack_surface(None) {
                    Ok(AttackSurface::CombinationalViews { locked, original }) => {
                        let out = sat_attack(
                            &locked,
                            &original,
                            &AttackConfig { max_iterations: 1_000_000, timeout: Some(attack_timeout()), ..Default::default() },
                        );
                        let desc = match out {
                            AttackOutcome::KeyFound { iterations, elapsed, .. } => {
                                format!("broken in {} s ({iterations} DIPs)", secs(elapsed))
                            }
                            AttackOutcome::TimedOut { iterations, elapsed, .. } => {
                                format!("TIMEOUT after {} s ({iterations} DIPs)", secs(elapsed))
                            }
                            AttackOutcome::Infeasible { reason } => format!("infeasible: {reason}"),
                            AttackOutcome::Error { reason } => format!("attack error: {reason}"),
                        };
                        println!("  ||k|| = {:>3}: {desc}", ld.key.len());
                    }
                    _ => println!("  ||k|| floor {}: unexpected surface", base_keys * mult),
                },
                Err(e) => println!("  ||k|| floor {}: lock failed: {e}", base_keys * mult),
            }
        }
        // BMC on the scan-locked surface.
        match lock(&module, &rtlock_config(&name, true)) {
            Ok(ld) => match ld.attack_surface(None) {
                Ok(AttackSurface::SequentialOnly { locked, original }) => {
                    let cfg = BmcConfig {
                        initial_depth: 2,
                        max_depth: 12,
                        max_iterations: 100_000,
                        timeout: Some(attack_timeout()),
                        ..Default::default()
                    };
                    let out = bmc_attack(&locked, &original, &cfg);
                    let desc = match out {
                        AttackOutcome::KeyFound { iterations, elapsed, .. } => {
                            format!("BROKEN in {} s ({iterations} DISs)", secs(elapsed))
                        }
                        AttackOutcome::TimedOut { iterations, elapsed, .. } => {
                            format!("not broken: budget exhausted after {} s ({iterations} DISs)", secs(elapsed))
                        }
                        AttackOutcome::Infeasible { reason } => format!("infeasible: {reason}"),
                        AttackOutcome::Error { reason } => format!("attack error: {reason}"),
                    };
                    println!("{name}: BMC on scan-locked surface (||k||={}): {desc}\n", ld.key.len());
                }
                _ => println!("{name}: unexpected surface for BMC\n"),
            },
            Err(e) => println!("{name}: scan lock failed: {e}\n"),
        }
    }
    println!("expected shape: larger keys raise SAT time / hit timeout; BMC does not");
    println!("recover keys within budget (unrolling depth blows up).");
}
