//! Artifact-cache benchmark: the catalog lock+attack run without a
//! cache, with a cold cache, and again over the warmed store, recorded
//! as `BENCH_cache.json`.
//!
//! Every attack is iteration-budgeted (no wall-clock limits), so all
//! three canonical reports must be byte-identical — the benchmark
//! doubles as the determinism-contract check (hot ≡ cold ≡ uncached) on
//! real workloads. The headline is the warm-vs-cold speedup: the same
//! store, populated by the cold run, serving elaborated/optimized
//! netlists, SCOAP profiles, and CNF templates back to the second run.
//!
//! Knobs: `RTLOCK_DESIGNS` (default `b05,b15` for this harness: the
//! designs whose flow time is dominated by per-case database synthesis,
//! the work the store absorbs),
//! `RTLOCK_BENCH_SEEDS` seeds per design (default 2),
//! `RTLOCK_BENCH_WORKERS` worker count (default 4), `RTLOCK_BENCH_OUT`
//! output path (default `BENCH_cache.json`), `RTLOCK_CACHE_DIR` use an
//! on-disk store at this directory instead of the in-memory tier (the
//! CI kill-mid-write job points consecutive runs at one directory),
//! `RTLOCK_REPORT_OUT` also write the canonical catalog report here
//! (the crash harness diffs it across runs).

use rtlock::{lock_catalog_parallel, CatalogEntry, CatalogJob, CatalogReport, RunBudget};
use rtlock_artifacts::ArtifactStore;
use rtlock_attacks::{AttackConfig, BmcConfig, PortfolioConfig};
use rtlock_bench::{rtlock_config, selected_designs};
use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    // Cache-friendly subset: designs whose database stage re-synthesizes
    // per key-bit case — exactly the work the artifact store absorbs.
    if std::env::var("RTLOCK_DESIGNS").is_err() {
        std::env::set_var("RTLOCK_DESIGNS", "b05,b15");
    }
    let designs = selected_designs();
    // One seed per design: a second seed of the same design lets the
    // *cold* run share artifacts across entries, which is a fine result
    // but muddies the cold-vs-warm comparison this harness is after.
    let seeds = env_usize("RTLOCK_BENCH_SEEDS", 1);
    let workers = env_usize("RTLOCK_BENCH_WORKERS", 4);
    let out_path = std::env::var("RTLOCK_BENCH_OUT").unwrap_or_else(|_| "BENCH_cache.json".into());

    let mut entries = Vec::new();
    for name in &designs {
        let bench = rtlock_designs::by_name(name)
            .unwrap_or_else(|| panic!("unknown design `{name}`"));
        let module = bench.module().expect("benchmarks parse");
        for s in 0..seeds {
            // Scan locking on (the paper's RTLock configuration). The
            // wall-clock probes are off: their outcomes depend on CPU
            // share, and this harness demands byte-identical reports.
            let mut config = rtlock_config(name, true);
            config.enumeration.max_constants = 64;
            config.enumeration.max_arith = 64;
            config.database.sat_probe = false;
            config.database.ml_probe = false;
            config.database.cosim_cycles = 4;
            config.database.corruption_samples = 1;
            config.verify_cycles = 8;
            config.seed = config.seed.wrapping_add(s as u64);
            entries.push(CatalogEntry {
                name: format!("{name}#s{s}"),
                module: module.clone(),
                config,
            });
        }
    }
    let job_with = |cache: Option<Arc<ArtifactStore>>| CatalogJob {
        entries: entries.clone(),
        budget: RunBudget::unlimited(),
        // Iteration budgets only — deterministic regardless of CPU share.
        portfolio: Some(PortfolioConfig {
            sat: AttackConfig { max_iterations: 500, ..AttackConfig::default() },
            bmc: BmcConfig { max_depth: 4, max_iterations: 8, ..BmcConfig::default() },
            ..PortfolioConfig::default()
        }),
        retry: rtlock_store::RetryPolicy::default(),
        cache,
    };

    eprintln!(
        "cache bench: {} tasks ({} designs x {seeds} seeds), {workers} workers",
        entries.len(),
        designs.len(),
    );

    let exec = Executor::new(workers);
    let timed = |cache: Option<Arc<ArtifactStore>>| -> (f64, CatalogReport) {
        let started = Instant::now();
        let report = lock_catalog_parallel(&job_with(cache), &exec, &CancelToken::unlimited());
        (started.elapsed().as_secs_f64(), report)
    };

    let (uncached_secs, uncached) = timed(None);
    eprintln!("  uncached: {uncached_secs:.2}s");
    let store = match std::env::var("RTLOCK_CACHE_DIR") {
        Ok(dir) => Arc::new(ArtifactStore::on_disk(dir)),
        Err(_) => Arc::new(ArtifactStore::in_memory()),
    };
    let (cold_secs, cold) = timed(Some(store.clone()));
    let cold_stats = store.stats();
    eprintln!("  cold:     {cold_secs:.2}s  ({})", cold_stats.line());
    let (warm_secs, warm) = timed(Some(store.clone()));
    // Second-run deltas: the counters are cumulative across both runs.
    let total = store.stats();
    let warm_hits = total.hits - cold_stats.hits;
    let warm_misses = total.misses - cold_stats.misses;
    let warm_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
    eprintln!("  warm:     {warm_secs:.2}s  (hits={warm_hits} misses={warm_misses} hit_rate={warm_rate:.3})");

    // The determinism contract, on the real workload: all three reports
    // byte-identical.
    let reference = uncached.canonical();
    assert_eq!(cold.canonical(), reference, "cold-cache report diverged from the uncached run");
    assert_eq!(warm.canonical(), reference, "warm-cache report diverged from the uncached run");

    let speedup_cold = cold_secs / warm_secs;
    let speedup_uncached = uncached_secs / warm_secs;

    let cold_rate = cold_stats.hit_rate();
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"cache_catalog\",\n");
    let _ = writeln!(
        json,
        "  \"designs\": [{}],",
        designs.iter().map(|d| format!("\"{d}\"")).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"seeds_per_design\": {seeds},");
    let _ = writeln!(json, "  \"tasks\": {},", entries.len());
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"runs\": [\n");
    let _ = writeln!(
        json,
        "    {{\"mode\": \"uncached\", \"seconds\": {uncached_secs:.3}, \"hits\": 0, \"misses\": 0, \"hit_rate\": 0.0}},"
    );
    let _ = writeln!(
        json,
        "    {{\"mode\": \"cold\", \"seconds\": {cold_secs:.3}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {cold_rate:.3}}},",
        cold_stats.hits, cold_stats.misses
    );
    let _ = writeln!(
        json,
        "    {{\"mode\": \"warm\", \"seconds\": {warm_secs:.3}, \"hits\": {warm_hits}, \"misses\": {warm_misses}, \"hit_rate\": {warm_rate:.3}}}"
    );
    json.push_str("  ],\n");
    json.push_str("  \"reports_byte_identical\": true,\n");
    let _ = writeln!(json, "  \"speedup_warm_vs_cold\": {speedup_cold:.2},");
    let _ = writeln!(json, "  \"speedup_warm_vs_uncached\": {speedup_uncached:.2}");
    json.push_str("}\n");

    rtlock_store::atomic_write(&out_path, &json).expect("write BENCH_cache.json");
    eprintln!("wrote {out_path}");
    if let Ok(path) = std::env::var("RTLOCK_REPORT_OUT") {
        rtlock_store::atomic_write(&path, &reference).expect("write canonical report");
        eprintln!("wrote {path}");
    }
    println!("speedup warm vs cold: {speedup_cold:.2}x");
}
