//! Regenerates Table V: testability of RTLock-locked circuits — test
//! coverage, fault coverage and pattern counts under (i) one dummy-key
//! constraint set (post-test activation \[41\]) and (ii) multiple valet-key
//! sets (LL-ATPG \[42\]).
//!
//! The flow mirrors the paper's: RTLock locks the design (functional +
//! partial RTL scan), DFT "synthesis" scans the remaining flops, the
//! chains are stitched and reordered, and ATPG runs on the scan view with
//! the key inputs pinned.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlock::lock;
use rtlock_atpg::{run_atpg, AtpgConfig};
use rtlock_bench::{paper, prepare, rtlock_config, selected_designs};
use rtlock_synth::{scan, scan_view};

fn main() {
    println!("Table V: testability of RTLock-locked circuits (stuck-at ATPG)");
    println!("{:<8} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} {:>5}", "circuit", "TC1%", "FC1%", "#pat", "TCn%", "FCn%", "#pat", "sets");
    for name in selected_designs() {
        let (module, _) = prepare(&name);
        let ld = match lock(&module, &rtlock_config(&name, true)) {
            Ok(l) => l,
            Err(e) => {
                println!("{name:<8} lock failed: {e}");
                continue;
            }
        };
        let mut netlist = match ld.locked_netlist() {
            Ok(n) => n,
            Err(e) => {
                println!("{name:<8} synth failed: {e}");
                continue;
            }
        };
        // DFT synthesis: scan the remaining flops, stitch, reorder.
        scan::insert_full_scan(&mut netlist);
        scan::reorder(&mut netlist);
        let mut view = scan_view(&netlist).netlist;
        rtlock::transforms::mark_key_inputs(&mut view);

        let mut rng = StdRng::seed_from_u64(0x7E57);
        let dummy = |rng: &mut StdRng| -> Vec<bool> { (0..ld.key.len()).map(|_| rng.gen_bool(0.5)).collect() };
        // One dummy key (post-test activation).
        let backtracks = std::env::var("RTLOCK_ATPG_BACKTRACKS").ok().and_then(|v| v.parse().ok()).unwrap_or(8_000);
        let blocks = std::env::var("RTLOCK_ATPG_BLOCKS").ok().and_then(|v| v.parse().ok()).unwrap_or(24);
        let atpg_cfg = AtpgConfig { random_blocks: blocks, max_backtracks: backtracks, ..AtpgConfig::default() };
        let one = run_atpg(&view, &[dummy(&mut rng)], &atpg_cfg);
        // Multiple valet keys.
        let paper_sets = paper::TABLE5.iter().find(|(d, ..)| *d == name).map(|r| r.7).unwrap_or(3) as usize;
        let sets: Vec<Vec<bool>> = (0..paper_sets).map(|_| dummy(&mut rng)).collect();
        let multi = run_atpg(&view, &sets, &atpg_cfg);

        println!(
            "{:<8} | {:>7.2} {:>7.2} {:>6} | {:>7.2} {:>7.2} {:>6} {:>5}",
            name,
            one.test_coverage() * 100.0,
            one.fault_coverage() * 100.0,
            one.patterns.len(),
            multi.test_coverage() * 100.0,
            multi.fault_coverage() * 100.0,
            multi.patterns.len(),
            paper_sets,
        );
        if let Some(p) = paper::TABLE5.iter().find(|(d, ..)| *d == name) {
            println!(
                "{:<8} | {:>7.2} {:>7.2} {:>6} | {:>7.2} {:>7.2} {:>6} {:>5}   (paper)",
                "", p.1, p.2, p.3, p.4, p.5, p.6, p.7
            );
        }
    }
    println!("\nexpected shape: test coverage > 99% despite key constraints; multiple");
    println!("key sets recover constrained faults and usually reduce pattern counts.");
}
