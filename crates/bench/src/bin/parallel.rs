//! Parallel-substrate benchmark: the full-catalog lock+attack run at
//! several worker counts, recorded as `BENCH_parallel.json`.
//!
//! Each selected design is locked and portfolio-attacked at several seeds
//! (independent tasks), first sequentially and then on the work-stealing
//! pool. The merged reports must be byte-identical at every worker count
//! — the benchmark doubles as a determinism check on real workloads — and
//! the JSON records the wall-clock per worker count plus the 4-vs-1
//! speedup headline.
//!
//! Knobs: `RTLOCK_DESIGNS` (default `b05,b14,b15` for this harness),
//! `RTLOCK_BENCH_SEEDS` seeds per design (default 2),
//! `RTLOCK_BENCH_WORKERS` (default `1,2,4`), `RTLOCK_TIMEOUT_SECS`
//! per-attack budget (default 15 for this harness), `RTLOCK_BENCH_OUT`
//! output path (default `BENCH_parallel.json`).

use rtlock::{lock_catalog_parallel, CatalogEntry, CatalogJob, DesignStatus, RunBudget};
use rtlock_attacks::{AttackConfig, BmcConfig, PortfolioConfig};
use rtlock_bench::{rtlock_config, selected_designs};
use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    // Default differs from the other binaries' subset: fibo's BMC break
    // time sits right at the attack budget, so its outcome flips with CPU
    // contention and muddies the scaling numbers. b05 breaks decisively,
    // b14/b15 decisively resist.
    if std::env::var("RTLOCK_DESIGNS").is_err() {
        std::env::set_var("RTLOCK_DESIGNS", "b05,b14,b15");
    }
    let designs = selected_designs();
    let seeds = env_usize("RTLOCK_BENCH_SEEDS", 2);
    let timeout = Duration::from_secs(env_usize("RTLOCK_TIMEOUT_SECS", 15) as u64);
    let workers: Vec<usize> = std::env::var("RTLOCK_BENCH_WORKERS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path =
        std::env::var("RTLOCK_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".into());

    let mut entries = Vec::new();
    // Longest-task-first: the catalog lists designs smallest-first, but
    // makespan on the pool is best when the big resisting designs (whose
    // attacks run to the wall-clock budget) open their windows earliest,
    // letting the small compute-bound tasks overlap them.
    for name in designs.iter().rev() {
        let bench = rtlock_designs::by_name(name)
            .unwrap_or_else(|| panic!("unknown design `{name}`"));
        let module = bench.module().expect("benchmarks parse");
        for s in 0..seeds {
            // Scan locking on (the paper's RTLock configuration): the
            // attacker gets no scan key, so the portfolio fights the
            // sequential surface with BMC under the wall-clock budget.
            // Database probes off to keep the lock stage lean — this
            // harness measures the parallel substrate, not probe cost.
            let mut config = rtlock_config(name, true);
            config.database.sat_probe = false;
            config.database.ml_probe = false;
            config.database.cosim_cycles = 12;
            config.database.corruption_samples = 1;
            config.verify_cycles = 16;
            config.seed = config.seed.wrapping_add(s as u64);
            entries.push(CatalogEntry {
                name: format!("{name}#s{s}"),
                module: module.clone(),
                config,
            });
        }
    }
    let job = CatalogJob {
        entries,
        budget: RunBudget::unlimited(),
        portfolio: Some(PortfolioConfig {
            sat: AttackConfig {
                max_iterations: 1_000_000,
                timeout: Some(timeout),
                ..AttackConfig::default()
            },
            bmc: BmcConfig {
                max_iterations: 1_000_000,
                timeout: Some(timeout),
                ..BmcConfig::default()
            },
            ..PortfolioConfig::default()
        }),
        retry: rtlock_store::RetryPolicy::default(),
        cache: None,
    };

    eprintln!(
        "parallel bench: {} tasks ({} designs x {} seeds), attack timeout {:?}, workers {:?}",
        job.entries.len(),
        designs.len(),
        seeds,
        timeout,
        workers,
    );

    let mut runs = Vec::new();
    let mut reference: Option<String> = None;
    for &w in &workers {
        let started = Instant::now();
        let report = lock_catalog_parallel(&job, &Executor::new(w), &CancelToken::unlimited());
        let elapsed = started.elapsed().as_secs_f64();
        // Wall-clock attack budgets make timed-out iteration counts
        // CPU-share dependent, so only the flow lines are compared here;
        // full byte-identity under iteration budgets is proved by
        // tests/parallel_determinism.rs.
        let flow_lines: String = report
            .canonical()
            .lines()
            .filter(|l| !l.starts_with("attack."))
            .collect::<Vec<_>>()
            .join("\n");
        match &reference {
            None => reference = Some(flow_lines),
            Some(r) => assert_eq!(
                &flow_lines, r,
                "flow report diverged from the first run at {w} workers"
            ),
        }
        let broken = report
            .designs
            .iter()
            .filter(|(_, st)| match st {
                DesignStatus::Done(d) => d.verdict.as_ref().is_some_and(|v| v.broken),
                _ => false,
            })
            .count();
        eprintln!(
            "  workers={w}: {elapsed:.2}s, {}/{} locked, {broken} broken",
            report.completed(),
            report.designs.len(),
        );
        runs.push((w, elapsed, report.completed(), broken));
    }

    let time_at = |n: usize| runs.iter().find(|(w, ..)| *w == n).map(|(_, t, ..)| *t);
    let speedup = match (time_at(1), time_at(4)) {
        (Some(t1), Some(t4)) if t4 > 0.0 => Some(t1 / t4),
        _ => None,
    };

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"parallel_catalog\",\n");
    let _ = writeln!(
        json,
        "  \"designs\": [{}],",
        designs.iter().map(|d| format!("\"{d}\"")).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"seeds_per_design\": {seeds},");
    let _ = writeln!(json, "  \"tasks\": {},", job.entries.len());
    let _ = writeln!(json, "  \"attack_timeout_secs\": {},", timeout.as_secs());
    json.push_str("  \"runs\": [\n");
    for (i, (w, t, completed, broken)) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {w}, \"seconds\": {t:.3}, \"locked\": {completed}, \"broken\": {broken}}}"
        );
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    match speedup {
        Some(s) => {
            let _ = writeln!(json, "  \"speedup_4_vs_1\": {s:.2}");
        }
        None => json.push_str("  \"speedup_4_vs_1\": null\n"),
    }
    json.push_str("}\n");

    rtlock_store::atomic_write(&out_path, &json).expect("write BENCH_parallel.json");
    eprintln!("wrote {out_path}");
    if let Some(s) = speedup {
        println!("speedup 4 vs 1 workers: {s:.2}x");
    }
}
