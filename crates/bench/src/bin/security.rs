//! Regenerates the Section IV security narrative that is not covered by a
//! numbered table: the oracle-less removal (SPS) analysis and the bypass
//! cost estimate, contrasting a SARLock-style point function with RTLock's
//! high-corruptibility locking.

use rtlock::lock;
use rtlock_attacks::bypass::{bypass_estimate, BYPASS_FEASIBLE_FRACTION};
use rtlock_attacks::removal::{find_skew_candidates, removal_attack, RemovalOutcome};
use rtlock_bench::{prepare, rtlock_config, selected_designs};
use rtlock_netlist::{GateKind, Netlist};
use rtlock_synth::{scan, scan_view};

/// Full-scan combinational view (the surface these oracle-less analyses
/// operate on; sequential netlists would hide corruption behind registers).
fn comb_view(netlist: &Netlist) -> Netlist {
    let mut n = netlist.clone();
    n.scan_chain.clear();
    scan::insert_full_scan(&mut n);
    scan_view(&n).netlist
}

/// Builds a SARLock-style lock over a design's first output: the output is
/// flipped for exactly one (key-matching) input pattern.
fn sarlock_style(original: &Netlist, width: usize) -> (Netlist, Vec<bool>) {
    let mut n = original.clone();
    let inputs: Vec<_> = n.inputs().iter().copied().take(width).collect();
    let mut key = Vec::new();
    let mut cmp = None;
    for (i, &x) in inputs.iter().enumerate() {
        let k = n.add_input(format!("keyinput{i}"));
        n.mark_key_input(k);
        let kv = (i * 7 + 3) % 2 == 0;
        key.push(kv);
        let eq = n.add_gate(GateKind::Xnor, vec![x, k]);
        cmp = Some(match cmp {
            None => eq,
            Some(c) => n.add_gate(GateKind::And, vec![c, eq]),
        });
    }
    let point = cmp.expect("at least one input");
    // Flip is gated so that the *correct* key never triggers it: compare
    // the key against its correct value.
    let mut correct_cmp = None;
    for (i, kv) in key.iter().enumerate() {
        let k = n.key_inputs[i];
        let bit = if *kv { n.add_gate(GateKind::Buf, vec![k]) } else { n.add_gate(GateKind::Not, vec![k]) };
        correct_cmp = Some(match correct_cmp {
            None => bit,
            Some(c) => n.add_gate(GateKind::And, vec![c, bit]),
        });
    }
    let wrong_key = n.add_gate(GateKind::Not, vec![correct_cmp.expect("non-empty")]);
    let flip = n.add_gate(GateKind::And, vec![point, wrong_key]);
    let (name, drv) = n.outputs()[0].clone();
    let flipped = n.add_gate(GateKind::Xor, vec![drv, flip]);
    let idx = n.outputs().iter().position(|(nm, _)| *nm == name).expect("exists");
    n.replace_output_driver(idx, flipped);
    (n, key)
}

fn main() {
    for name in selected_designs() {
        let (module, original_seq) = prepare(&name);
        let original = comb_view(&original_seq);
        println!("== {name} ==");

        // SARLock-style reference: the removal attack should strip it.
        let point_width = (original.inputs().len()).min(24);
        let (sar, sar_key) = sarlock_style(&original, point_width);
        let skew = find_skew_candidates(&sar, 0.35, 32, 3);
        println!("SARLock-style point function over {point_width} inputs: {} heavily skewed internal nets", skew.len());
        match removal_attack(&sar, &original, 0.35, 0.0, 32, 3) {
            RemovalOutcome::Recovered { gate, error_rate } => {
                println!("  removal attack: RECOVERED the design (cut {gate}, residual error {error_rate:.4})")
            }
            RemovalOutcome::Foiled { tried, best_error_rate } => {
                println!("  removal attack: foiled ({tried} candidates tried, best error {best_error_rate:.3})")
            }
        }
        let mut wrong = sar_key.clone();
        wrong[0] = !wrong[0];
        let est = bypass_estimate(&sar, &original, &wrong, 32, 5);
        println!(
            "  bypass attack: corrupts {:.5} of patterns -> feasible={} (threshold {})",
            est.corrupted_fraction, est.feasible, BYPASS_FEASIBLE_FRACTION
        );

        // RTLock: no point function, high corruption.
        match lock(&module, &rtlock_config(&name, false)) {
            Ok(ld) => {
                let mut locked = comb_view(&ld.locked_netlist().expect("synthesizes"));
                rtlock::transforms::mark_key_inputs(&mut locked);
                match removal_attack(&locked, &original, 0.35, 0.0, 32, 3) {
                    RemovalOutcome::Recovered { gate, error_rate } => println!(
                        "RTLock: removal UNEXPECTEDLY recovered (cut {gate}, err {error_rate:.4}) — investigate"
                    ),
                    RemovalOutcome::Foiled { tried, best_error_rate } => println!(
                        "RTLock: removal foiled ({tried} skew candidates, best residual error {best_error_rate:.3})"
                    ),
                }
                let mut wrong = ld.key.clone();
                wrong[0] = !wrong[0];
                let est = bypass_estimate(&locked, &original, &wrong, 32, 5);
                println!(
                    "RTLock: bypass would need to patch {:.3} of the input space -> feasible={}",
                    est.corrupted_fraction, est.feasible
                );
            }
            Err(e) => println!("RTLock lock failed: {e}"),
        }
        println!();
    }
    println!("expected shape: the point-function lock is removed and cheaply bypassed;");
    println!("RTLock exposes no skewed point function and corrupts far too many");
    println!("patterns for a bypass circuit.");
}
