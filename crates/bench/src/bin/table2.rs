//! Regenerates Table II: benchmark specifications (ours next to the
//! paper's). Run with `RTLOCK_DESIGNS=all` for the full set.

use rtlock_bench::{paper, prepare, rtlock_config, selected_designs};

fn main() {
    println!("Table II: main specifications of the benchmark circuits");
    println!("(paper values from the original ITC'99/crypto benchmarks; ours are");
    println!("the re-implemented designs after synthesis with this workspace)\n");
    println!(
        "{:<8} {:>9} {:>8} {:>6} {:>5}   | {:>9} {:>8} {:>6} {:>5}",
        "circuit", "PI/PO", "#gate", "#FF", "keys", "PI/PO*", "#gate*", "#FF*", "keys*"
    );
    for name in selected_designs() {
        let (_m, n) = prepare(&name);
        let p = paper::TABLE2.iter().find(|(d, ..)| *d == name);
        let keys = rtlock_config(&name, false).spec.min_key_bits;
        let (ppi, pg, pf, pk) = match p {
            Some((_, io, g, f, k)) => ((*io).to_string(), g.to_string(), f.to_string(), k.to_string()),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<8} {:>9} {:>8} {:>6} {:>5}   | {:>9} {:>8} {:>6} {:>5}",
            name,
            format!("{}/{}", n.inputs().len(), n.outputs().len()),
            n.logic_count(),
            n.dffs().len(),
            keys,
            ppi,
            pg,
            pf,
            pk
        );
    }
    println!("\ncolumns marked * are the paper's values");
}
