//! Regenerates Table IV: SWEEP and SCOPE (ML-based, oracle-less) attack
//! accuracy on gate-level locking vs RTLock*.
//!
//! SWEEP is trained leave-one-out: for each target design, the model
//! learns from the *other* selected designs locked with the same
//! technique. Accuracy ~100 % (or ~0 %, which is tunable to 100 % per the
//! paper's footnote) means broken; ~50 % is maximum resilience.
//!
//! `RTLOCK_ML_KEY_CAP` bounds the per-design key bits analyzed (per-bit
//! re-synthesis is the dominant cost; default 24).

use rtlock::baselines::{lock_baseline, BaselineKind};
use rtlock::lock;
use rtlock_attacks::ml::{scope_attack, SweepModel};
use rtlock_bench::{max_baseline_keys, paper, prepare, rtlock_config, selected_designs};
use rtlock_netlist::Netlist;

fn key_cap() -> usize {
    std::env::var("RTLOCK_ML_KEY_CAP").ok().and_then(|s| s.parse().ok()).unwrap_or(24)
}

/// Truncates the analysis to the first `cap` key bits.
fn truncate_keys(netlist: &Netlist, key: &[bool], cap: usize) -> (Netlist, Vec<bool>) {
    let mut n = netlist.clone();
    if key.len() > cap {
        n.key_inputs.truncate(cap);
    }
    (n, key[..key.len().min(cap)].to_vec())
}

fn rtlock_locked(name: &str) -> Option<(Netlist, Vec<bool>)> {
    let (module, _) = prepare(name);
    let ld = lock(&module, &rtlock_config(name, false)).ok()?;
    let n = ld.locked_netlist().ok()?;
    Some((n, ld.key.clone()))
}

fn main() {
    let designs = selected_designs();
    let cap = key_cap();
    println!("Table IV: ML-based attack accuracy (SWEEP, SCOPE) on locking solutions");
    println!("designs: {designs:?}, key cap per design: {cap}\n");
    println!("{:<8} {:<9} {:>5} {:>8} {:>8}", "circuit", "method", "||k||", "SWEEP%", "SCOPE%");

    let techniques = [BaselineKind::TocMux, BaselineKind::Iolts, BaselineKind::Mux2];
    let mut averages: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();

    for kind in techniques {
        // Lock every design once.
        let locked: Vec<(String, Netlist, Vec<bool>)> = designs
            .iter()
            .map(|name| {
                let (_m, original) = prepare(name);
                let l = lock_baseline(&original, kind, 15.0, max_baseline_keys(), 0x111);
                let (n, k) = truncate_keys(&l.netlist, &l.key, cap);
                (name.clone(), n, k)
            })
            .collect();
        let mut sweeps = Vec::new();
        let mut scopes = Vec::new();
        for (i, (name, netlist, key)) in locked.iter().enumerate() {
            // Train on the other designs (or on itself when alone).
            let corpus: Vec<(&Netlist, &[bool])> = locked
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i || locked.len() == 1)
                .map(|(_, (_, n, k))| (n, k.as_slice()))
                .collect();
            let model = SweepModel::train(&corpus);
            let sweep = model.attack(netlist, key).accuracy * 100.0;
            let scope = scope_attack(netlist, key).accuracy * 100.0;
            println!("{:<8} {:<9} {:>5} {:>7.1} {:>7.1}", name, kind.name(), key.len(), sweep, scope);
            sweeps.push(sweep);
            scopes.push(scope);
        }
        averages.push((kind.name().to_string(), sweeps, scopes));
    }

    // RTLock* rows.
    let mut sweeps = Vec::new();
    let mut scopes = Vec::new();
    let rtlocked: Vec<(String, Netlist, Vec<bool>)> = designs
        .iter()
        .filter_map(|name| {
            let (n, k) = rtlock_locked(name)?;
            let (n, k) = truncate_keys(&n, &k, cap);
            Some((name.clone(), n, k))
        })
        .collect();
    for (i, (name, netlist, key)) in rtlocked.iter().enumerate() {
        let corpus: Vec<(&Netlist, &[bool])> = rtlocked
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i || rtlocked.len() == 1)
            .map(|(_, (_, n, k))| (n, k.as_slice()))
            .collect();
        let model = SweepModel::train(&corpus);
        let sweep = model.attack(netlist, key).accuracy * 100.0;
        let scope = scope_attack(netlist, key).accuracy * 100.0;
        println!("{:<8} {:<9} {:>5} {:>7.1} {:>7.1}", name, "RTLock*", key.len(), sweep, scope);
        sweeps.push(sweep);
        scopes.push(scope);
    }
    averages.push(("RTLock*".into(), sweeps, scopes));

    println!("\naverages (measured | paper):");
    for (name, sweeps, scopes) in &averages {
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let p = paper::TABLE4_AVG.iter().find(|(t, ..)| t == name);
        let (ps, pc) = p.map(|(_, s, c)| (*s, *c)).unwrap_or((f64::NAN, f64::NAN));
        println!(
            "  {:<9} SWEEP {:>5.1} | {:>5.1}   SCOPE {:>5.1} | {:>5.1}",
            name,
            avg(sweeps),
            ps,
            avg(scopes),
            pc
        );
    }
    println!("\nexpected shape: gate-level lockers far from 50% (fully learnable, since");
    println!("accuracy near 0% is invertible to 100%); RTLock* near 50% (coin flip).");
}
