//! SAT-core benchmark: the modern arena solver vs. the frozen pre-arena
//! baseline, recorded as `BENCH_sat.json`.
//!
//! Two measurement families:
//!
//! * **DIMACS corpus** — every instance under `crates/sat/tests/dimacs/`
//!   is solved by both backends (best of `RTLOCK_BENCH_REPS` reps,
//!   default 3). Verdicts must match the expected table and each other;
//!   the JSON records per-file and total wall clock for both.
//! * **Catalog SAT attack** — for each `RTLOCK_DESIGNS` design (default
//!   `b05,fibo,b14`) the RTLock* surface (scan locking disabled) is
//!   attacked end-to-end once per backend with identical configuration.
//!   Both must recover a functionally correct key (checked by
//!   co-simulation); the JSON records wall clock, DIP iterations, and
//!   whether the recovered keys are bit-identical.
//!
//! Knobs: `RTLOCK_DESIGNS`, `RTLOCK_BENCH_REPS`, `RTLOCK_TIMEOUT_SECS`,
//! `RTLOCK_BENCH_OUT` (default `BENCH_sat.json`).

use rtlock::{lock, AttackSurface};
use rtlock_attacks::{key_accuracy, sat_attack_with, AttackConfig, AttackOutcome};
use rtlock_bench::{attack_timeout, prepare, rtlock_config, secs, selected_designs};
use rtlock_netlist::Netlist;
use rtlock_sat::{SatBackend, SolveResult};
use std::fmt::Write as _;
use std::time::Instant;

/// The on-disk corpus with expected verdicts (kept in lockstep with
/// `crates/sat/tests/dimacs_corpus.rs`).
const CORPUS: &[(&str, &str, SolveResult)] = &[
    ("php4.cnf", include_str!("../../../sat/tests/dimacs/php4.cnf"), SolveResult::Unsat),
    ("php5.cnf", include_str!("../../../sat/tests/dimacs/php5.cnf"), SolveResult::Unsat),
    ("php6.cnf", include_str!("../../../sat/tests/dimacs/php6.cnf"), SolveResult::Unsat),
    ("php7.cnf", include_str!("../../../sat/tests/dimacs/php7.cnf"), SolveResult::Unsat),
    (
        "parity_chain_sat.cnf",
        include_str!("../../../sat/tests/dimacs/parity_chain_sat.cnf"),
        SolveResult::Sat,
    ),
    (
        "parity_chain_unsat.cnf",
        include_str!("../../../sat/tests/dimacs/parity_chain_unsat.cnf"),
        SolveResult::Unsat,
    ),
    ("rand3_s1.cnf", include_str!("../../../sat/tests/dimacs/rand3_s1.cnf"), SolveResult::Sat),
    ("rand3_s2.cnf", include_str!("../../../sat/tests/dimacs/rand3_s2.cnf"), SolveResult::Unsat),
    ("rand3_s3.cnf", include_str!("../../../sat/tests/dimacs/rand3_s3.cnf"), SolveResult::Unsat),
];

fn parse_dimacs(text: &str) -> Vec<Vec<i32>> {
    let mut clauses = Vec::new();
    let mut current = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for tok in line.split_whitespace() {
            let lit: i32 = tok.parse().expect("integer literal");
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(lit);
            }
        }
    }
    assert!(current.is_empty(), "unterminated clause");
    clauses
}

/// Best-of-reps wall clock (ms) for a fresh load+solve; asserts the
/// verdict every repetition.
fn time_solve<S: SatBackend>(clauses: &[Vec<i32>], expect: SolveResult, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            let mut s = S::new();
            for c in clauses {
                s.add_dimacs_clause(c);
            }
            assert_eq!(s.solve(&[]), expect, "verdict drift");
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct AttackRow {
    outcome: &'static str,
    ms: f64,
    iterations: usize,
    key: Option<Vec<bool>>,
}

fn run_attack<S: SatBackend>(locked: &Netlist, original: &Netlist) -> AttackRow {
    let cfg = AttackConfig {
        max_iterations: 1_000_000,
        timeout: Some(attack_timeout()),
        ..Default::default()
    };
    let t = Instant::now();
    let out = sat_attack_with::<S>(locked, original, &cfg);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    match out {
        AttackOutcome::KeyFound { key, iterations, .. } => {
            AttackRow { outcome: "key_found", ms, iterations, key: Some(key) }
        }
        AttackOutcome::TimedOut { iterations, .. } => {
            AttackRow { outcome: "timeout", ms, iterations, key: None }
        }
        AttackOutcome::Infeasible { .. } => AttackRow { outcome: "infeasible", ms, iterations: 0, key: None },
        AttackOutcome::Error { .. } => AttackRow { outcome: "error", ms, iterations: 0, key: None },
    }
}

fn key_bits(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let reps: usize =
        std::env::var("RTLOCK_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let out_path = std::env::var("RTLOCK_BENCH_OUT").unwrap_or_else(|_| "BENCH_sat.json".into());
    let designs = selected_designs();

    // ---- DIMACS corpus ---------------------------------------------------
    eprintln!("sat bench: {} corpus files, best of {reps} reps", CORPUS.len());
    let mut corpus_rows = Vec::new();
    let (mut arena_total, mut baseline_total) = (0.0f64, 0.0f64);
    for &(name, text, expect) in CORPUS {
        let clauses = parse_dimacs(text);
        let arena_ms = time_solve::<rtlock_sat::Solver>(&clauses, expect, reps);
        let baseline_ms = time_solve::<rtlock_sat::baseline::Solver>(&clauses, expect, reps);
        arena_total += arena_ms;
        baseline_total += baseline_ms;
        let verdict = if expect == SolveResult::Sat { "SAT" } else { "UNSAT" };
        eprintln!(
            "  {name}: {verdict}, arena {arena_ms:.3} ms, baseline {baseline_ms:.3} ms ({:.2}x)",
            baseline_ms / arena_ms.max(1e-9)
        );
        corpus_rows.push((name, verdict, arena_ms, baseline_ms));
    }
    eprintln!(
        "  corpus total: arena {arena_total:.3} ms, baseline {baseline_total:.3} ms ({:.2}x)",
        baseline_total / arena_total.max(1e-9)
    );

    // ---- catalog SAT attack ---------------------------------------------
    let mut catalog_rows = Vec::new();
    for name in &designs {
        let (module, _original) = prepare(name);
        let ld = match lock(&module, &rtlock_config(name, false)) {
            Ok(ld) => ld,
            Err(e) => {
                eprintln!("  {name}: lock failed: {e}");
                continue;
            }
        };
        let (locked, original) = match ld.attack_surface(None) {
            Ok(AttackSurface::CombinationalViews { locked, original }) => (locked, original),
            other => {
                eprintln!("  {name}: unexpected attack surface: {other:?}");
                continue;
            }
        };
        let arena = run_attack::<rtlock_sat::Solver>(&locked, &original);
        let baseline = run_attack::<rtlock_sat::baseline::Solver>(&locked, &original);
        assert_eq!(
            arena.outcome, baseline.outcome,
            "{name}: backends disagree on the attack outcome"
        );
        // A recovered key must be functionally correct for both backends:
        // the SAT attack promises *a* correct key, not a unique bit
        // pattern, so equivalence is checked by co-simulation and bit
        // identity is only reported.
        for (which, row) in [("arena", &arena), ("baseline", &baseline)] {
            if let Some(k) = &row.key {
                let acc = key_accuracy(&locked, &original, k, 128, 0xACC);
                assert!(
                    (acc - 1.0).abs() < f64::EPSILON,
                    "{name}: {which} recovered a wrong key (accuracy {acc})"
                );
            }
        }
        let keys_bit_identical = match (&arena.key, &baseline.key) {
            (Some(a), Some(b)) => Some(a == b),
            _ => None,
        };
        eprintln!(
            "  {name}: ||k||={}, arena {} in {} s ({} DIPs), baseline {} in {} s ({} DIPs), \
             bit-identical keys: {keys_bit_identical:?}",
            locked.key_inputs.len(),
            arena.outcome,
            secs(std::time::Duration::from_secs_f64(arena.ms / 1e3)),
            arena.iterations,
            baseline.outcome,
            secs(std::time::Duration::from_secs_f64(baseline.ms / 1e3)),
            baseline.iterations,
        );
        catalog_rows.push((name.clone(), locked.key_inputs.len(), arena, baseline, keys_bit_identical));
    }

    // ---- JSON ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"sat_core\",\n");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"timeout_secs\": {},", attack_timeout().as_secs());
    json.push_str("  \"corpus\": [\n");
    for (i, (name, verdict, arena_ms, baseline_ms)) in corpus_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"file\": \"{name}\", \"verdict\": \"{verdict}\", \
             \"arena_ms\": {arena_ms:.3}, \"baseline_ms\": {baseline_ms:.3}}}"
        );
        json.push_str(if i + 1 < corpus_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"corpus_total\": {{\"arena_ms\": {arena_total:.3}, \"baseline_ms\": {baseline_total:.3}, \
         \"speedup\": {:.3}}},",
        baseline_total / arena_total.max(1e-9)
    );
    json.push_str("  \"catalog\": [\n");
    for (i, (name, kbits, arena, baseline, ident)) in catalog_rows.iter().enumerate() {
        let ident_str = match ident {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        };
        let arena_key = arena.key.as_deref().map(key_bits).unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"design\": \"{name}\", \"key_bits\": {kbits}, \
             \"arena\": {{\"outcome\": \"{}\", \"ms\": {:.3}, \"iterations\": {}, \"dips_per_sec\": {:.2}}}, \
             \"baseline\": {{\"outcome\": \"{}\", \"ms\": {:.3}, \"iterations\": {}, \"dips_per_sec\": {:.2}}}, \
             \"keys_bit_identical\": {ident_str}, \"arena_key\": \"{arena_key}\"}}",
            arena.outcome,
            arena.ms,
            arena.iterations,
            arena.iterations as f64 / (arena.ms / 1e3).max(1e-9),
            baseline.outcome,
            baseline.ms,
            baseline.iterations,
            baseline.iterations as f64 / (baseline.ms / 1e3).max(1e-9),
        );
        json.push_str(if i + 1 < catalog_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    rtlock_store::atomic_write(&out_path, &json).expect("write BENCH_sat.json");
    eprintln!("wrote {out_path}");
}
