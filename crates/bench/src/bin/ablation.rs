//! Ablation studies for the design choices called out in DESIGN.md §4:
//!
//! 1. **Selection**: the ILP of step 4 vs a greedy resilience-per-area
//!    heuristic, at the same specification.
//! 2. **Scan placement**: SCOAP/CDFG-guided partial scan (registers near
//!    key inputs) vs taking the same number of arbitrary registers,
//!    measured by the SCOAP opacity of key-adjacent flops under the
//!    resulting chain.
//! 3. **Correction factors**: how the added-resilience / shared-overhead
//!    percentages of Equation 1 change the selected case count.

use rtlock::candidates::enumerate;
use rtlock::database::build_database;
use rtlock::scan_lock::{choose_scan_registers, ScanLockConfig};
use rtlock::select::{select_greedy, select_ilp};
use rtlock_bench::{prepare, rtlock_config, selected_designs};

fn main() {
    for name in selected_designs() {
        let (module, _) = prepare(&name);
        let cfg = rtlock_config(&name, false);
        let (cands, fsms) = enumerate(&module, &cfg.enumeration);
        let db = build_database(&module, &cands, &fsms, &cfg.database);

        // 1. ILP vs greedy.
        let ilp = select_ilp(&db, &cands, &cfg.spec);
        let greedy = select_greedy(&db, &cands, &cfg.spec);
        let stats = |sel: &[usize]| {
            let rows: Vec<_> =
                sel.iter().filter_map(|&i| db.cases.iter().find(|c| c.candidate_index == i)).collect();
            (
                rows.len(),
                rows.iter().map(|c| c.key_size).sum::<usize>(),
                rows.iter().map(|c| c.resilience).sum::<f64>(),
                rows.iter().map(|c| c.area_overhead_pct).sum::<f64>(),
            )
        };
        println!("{name}: selection ablation (cases / key bits / resilience / area%)");
        match &ilp {
            Some(sel) => {
                let (n, k, r, a) = stats(sel);
                println!("  ILP    : {n:>3} cases  {k:>3} bits  res {r:>9.1}  area {a:>6.2}%");
            }
            None => println!("  ILP    : infeasible"),
        }
        let (n, k, r, a) = stats(&greedy);
        println!("  greedy : {n:>3} cases  {k:>3} bits  res {r:>9.1}  area {a:>6.2}%");

        // 2. Scan placement.
        let sc = ScanLockConfig::default();
        let guided = choose_scan_registers(&module, &sc);
        println!(
            "  scan   : SCOAP/CDFG-guided picks {} registers near key logic: {:?}",
            guided.len(),
            guided.iter().take(6).map(|&r| module.net(r).name.clone()).collect::<Vec<_>>()
        );

        // 3. Correction-factor sweep.
        print!("  Eq.1 corrections (addedRes=sharedOv sweep): ");
        for pct in [0.0, 10.0, 15.0, 20.0] {
            let mut spec = cfg.spec;
            spec.added_res_pct = pct;
            spec.shared_ov_pct = pct;
            let n = select_ilp(&db, &cands, &spec).map(|s| s.len());
            print!("{pct}%->{} ", n.map(|v| v.to_string()).unwrap_or_else(|| "inf".into()));
        }
        println!("\n");
    }
    println!("expected shape: ILP never selects more cases than greedy for the same");
    println!("spec; corrections loosen/tighten feasibility as in Section III-A step 4.");
}
