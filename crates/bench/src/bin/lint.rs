//! Static-analysis benchmark: full-catalog lint plus dataflow fixpoint
//! timings, recorded as `BENCH_lint.json`.
//!
//! For every selected design the harness elaborates and optimizes the
//! reference netlist, then times (a) the whole-design dataflow fixpoint
//! (`rtlock_dataflow::analyze_netlist` — key-taint, ternary constants,
//! scan reachability) and (b) a full standalone lint over both views.
//! Each measurement is the best of `RTLOCK_BENCH_REPS` repetitions
//! (default 3) so the numbers track the analysis cost, not scheduler
//! noise. The JSON also records gate counts and finding totals so a CI
//! diff shows *what* changed, not just how fast.
//!
//! Knobs: `RTLOCK_DESIGNS` (default `all` for this harness),
//! `RTLOCK_BENCH_REPS` (default 3), `RTLOCK_BENCH_OUT` output path
//! (default `BENCH_lint.json`).

use rtlock_bench::selected_designs;
use rtlock_lint::{lint, LintPhase, LintTarget, Severity};
use rtlock_synth::{elaborate, optimize};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    if std::env::var("RTLOCK_DESIGNS").is_err() {
        std::env::set_var("RTLOCK_DESIGNS", "all");
    }
    let designs = selected_designs();
    let reps: usize =
        std::env::var("RTLOCK_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let out_path = std::env::var("RTLOCK_BENCH_OUT").unwrap_or_else(|_| "BENCH_lint.json".into());

    let best_of = |reps: usize, mut f: Box<dyn FnMut() + '_>| -> f64 {
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };

    eprintln!("lint bench: {} designs, best of {reps} reps", designs.len());
    let mut rows = Vec::new();
    for name in &designs {
        let bench = rtlock_designs::by_name(name)
            .unwrap_or_else(|| panic!("unknown design `{name}`"));
        let module = bench.module().expect("benchmarks parse");
        let mut netlist = elaborate(&module).expect("benchmarks synthesize");
        optimize(&mut netlist);
        rtlock::transforms::mark_key_inputs(&mut netlist);
        let gates = netlist.ids().count();

        let analyze_ms = best_of(
            reps,
            Box::new(|| {
                std::hint::black_box(rtlock_dataflow::analyze_netlist(&netlist));
            }),
        );

        let target = LintTarget::full(&module, &netlist).with_phase(LintPhase::Standalone);
        let report = lint(&target);
        let lint_ms = best_of(
            reps,
            Box::new(|| {
                std::hint::black_box(lint(&target));
            }),
        );

        eprintln!(
            "  {name}: {gates} gates, analyze {analyze_ms:.2} ms, lint {lint_ms:.2} ms, \
             {} deny / {} warn / {} info",
            report.deny_count(),
            report.count(Severity::Warn),
            report.count(Severity::Info),
        );
        rows.push((
            name.clone(),
            gates,
            analyze_ms,
            lint_ms,
            report.deny_count(),
            report.count(Severity::Warn),
            report.count(Severity::Info),
        ));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"lint_catalog\",\n");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"designs\": [\n");
    for (i, (name, gates, analyze_ms, lint_ms, deny, warn, info)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"gates\": {gates}, \
             \"analyze_ms\": {analyze_ms:.3}, \"lint_ms\": {lint_ms:.3}, \
             \"deny\": {deny}, \"warn\": {warn}, \"info\": {info}}}"
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    rtlock_store::atomic_write(&out_path, &json).expect("write BENCH_lint.json");
    eprintln!("wrote {out_path}");
}
