//! Parallel-DIP-pipeline benchmark, recorded as `BENCH_dip.json`.
//!
//! Two measurement families:
//!
//! * **Catalog pipeline scaling** — for each `RTLOCK_DESIGNS` design
//!   (default `b05,fibo,b14`) the RTLock* combinational surface (scan
//!   locking disabled) is attacked by the sequential SAT loop and by the
//!   parallel DIP pipeline at several executor worker counts (fixed
//!   miner fleet, identical configuration). The pipeline's canonical
//!   outcome must be byte-identical at every worker count and every
//!   recovered key functionally correct; the JSON records wall clock,
//!   accepted DIPs, oracle queries, DIP throughput, the 4-vs-1 wall-clock
//!   speedup, and the 4-vs-1 DIP-throughput ratio (the scaling measure
//!   that stays meaningful for budgeted runs), alongside `host_cores` so
//!   a reader can tell a 1-core container's flat curve from a real
//!   scaling regression. The >=2x throughput gate is asserted only on
//!   hosts with >= 4 cores and designs that saturate the miner fleet.
//! * **Small-instance inprocessing gate** — every php DIMACS instance is
//!   solved with the size gate at its default threshold and with the
//!   gate disabled (`set_inprocessing_threshold(0)`), recording both
//!   wall clocks: the before/after evidence for gating `simplify_db` and
//!   learnt-DB reduction below [`rtlock_sat::INPROCESS_MIN_VARS`] vars.
//!
//! Knobs: `RTLOCK_DESIGNS`, `RTLOCK_BENCH_WORKERS` (default `1,2,4,8`),
//! `RTLOCK_BENCH_REPS` (default 3, small-instance section),
//! `RTLOCK_TIMEOUT_SECS`, `RTLOCK_BENCH_OUT` (default `BENCH_dip.json`).

use rtlock::{lock, AttackSurface};
use rtlock_attacks::{
    key_accuracy, sat_attack, sat_attack_parallel_with, AttackConfig, AttackOutcome, DipConfig,
};
use rtlock_bench::{attack_timeout, prepare, rtlock_config, secs, selected_designs};
use rtlock_exec::Executor;
use rtlock_netlist::Netlist;
use rtlock_sat::{SolveResult, Solver, INPROCESS_MIN_VARS};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const PHP_CORPUS: &[(&str, &str)] = &[
    ("php4.cnf", include_str!("../../../sat/tests/dimacs/php4.cnf")),
    ("php5.cnf", include_str!("../../../sat/tests/dimacs/php5.cnf")),
    ("php6.cnf", include_str!("../../../sat/tests/dimacs/php6.cnf")),
    ("php7.cnf", include_str!("../../../sat/tests/dimacs/php7.cnf")),
];

fn parse_dimacs(text: &str) -> Vec<Vec<i32>> {
    let mut clauses = Vec::new();
    let mut current = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for tok in line.split_whitespace() {
            let lit: i32 = tok.parse().expect("integer literal");
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                current.push(lit);
            }
        }
    }
    assert!(current.is_empty(), "unterminated clause");
    clauses
}

/// Best-of-reps wall clock (ms) for a fresh load+solve of a php instance
/// (always UNSAT) with the inprocessing gate at `threshold`.
fn time_php(clauses: &[Vec<i32>], threshold: usize, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            let mut s = Solver::new();
            s.set_inprocessing_threshold(threshold);
            for c in clauses {
                s.add_dimacs_clause(c);
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat, "php is UNSAT");
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct PipelineRow {
    workers: usize,
    outcome: &'static str,
    canonical: String,
    ms: f64,
    dips: usize,
    queries: usize,
    simulated: usize,
    key: Option<Vec<bool>>,
}

fn classify(out: &AttackOutcome) -> &'static str {
    match out {
        AttackOutcome::KeyFound { .. } => "key_found",
        AttackOutcome::TimedOut { .. } => "timeout",
        AttackOutcome::Infeasible { .. } => "infeasible",
        AttackOutcome::Error { .. } => "error",
    }
}

fn run_pipeline(
    locked: &Netlist,
    original: &Netlist,
    cfg: &AttackConfig,
    dip: &DipConfig,
    workers: usize,
) -> PipelineRow {
    let exec = Executor::new(workers);
    let t = Instant::now();
    let out = sat_attack_parallel_with::<Solver>(locked, original, cfg, dip, &exec);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let (dips, queries, simulated) = out
        .stats()
        .map(|s| (s.dips_accepted, s.oracle_queries, s.patterns_simulated))
        .unwrap_or((0, 0, 0));
    PipelineRow {
        workers,
        outcome: classify(&out),
        canonical: out.canonical(),
        ms,
        dips,
        queries,
        simulated,
        key: out.key().map(<[bool]>::to_vec),
    }
}

fn key_bits(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let reps: usize =
        std::env::var("RTLOCK_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let workers: Vec<usize> = std::env::var("RTLOCK_BENCH_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path = std::env::var("RTLOCK_BENCH_OUT").unwrap_or_else(|_| "BENCH_dip.json".into());
    let designs = selected_designs();
    let dip = DipConfig::default();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ---- catalog pipeline scaling ---------------------------------------
    eprintln!(
        "dip bench: {} designs, {} miners, workers {:?}, timeout {:?}, {host_cores} host cores",
        designs.len(),
        dip.miners,
        workers,
        attack_timeout(),
    );
    let mut catalog = Vec::new();
    for name in &designs {
        let (module, _original) = prepare(name);
        let ld = match lock(&module, &rtlock_config(name, false)) {
            Ok(ld) => ld,
            Err(e) => {
                eprintln!("  {name}: lock failed: {e}");
                continue;
            }
        };
        let (locked, original) = match ld.attack_surface(None) {
            Ok(AttackSurface::CombinationalViews { locked, original }) => (locked, original),
            other => {
                eprintln!("  {name}: unexpected attack surface: {other:?}");
                continue;
            }
        };
        let cfg = AttackConfig {
            max_iterations: 1_000_000,
            timeout: Some(attack_timeout()),
            ..Default::default()
        };

        // Sequential baseline: the PR-9 attack loop, untouched.
        let t = Instant::now();
        let seq_out = sat_attack(&locked, &original, &cfg);
        let seq_ms = t.elapsed().as_secs_f64() * 1e3;
        let seq_iters = match &seq_out {
            AttackOutcome::KeyFound { iterations, .. }
            | AttackOutcome::TimedOut { iterations, .. } => *iterations,
            _ => 0,
        };
        if let Some(k) = seq_out.key() {
            let acc = key_accuracy(&locked, &original, k, 128, 0xACC);
            assert!((acc - 1.0).abs() < f64::EPSILON, "{name}: sequential key wrong ({acc})");
        }

        // Pipeline at every worker count: identical deterministic work,
        // so identical canonical outcomes — only the wall clock may move.
        let rows: Vec<PipelineRow> =
            workers.iter().map(|&w| run_pipeline(&locked, &original, &cfg, &dip, w)).collect();
        for row in &rows {
            // Identical verdicts and byte-identical keys at every worker
            // count, always. Full canonical identity (iteration counts,
            // counters) additionally holds whenever the wall-clock budget
            // did not fire — a timed-out run's progress counters are
            // CPU-share dependent, like everywhere else in the harness;
            // byte-identity under iteration budgets is pinned by
            // tests/parallel_determinism.rs.
            assert_eq!(
                row.outcome, rows[0].outcome,
                "{name}: pipeline verdict diverged at {} workers",
                row.workers
            );
            assert_eq!(
                row.key, rows[0].key,
                "{name}: recovered keys diverged at {} workers",
                row.workers
            );
            if row.outcome == "key_found" {
                assert_eq!(
                    row.canonical, rows[0].canonical,
                    "{name}: pipeline outcome diverged at {} workers",
                    row.workers
                );
            }
            if let Some(k) = &row.key {
                let acc = key_accuracy(&locked, &original, k, 128, 0xACC);
                assert!(
                    (acc - 1.0).abs() < f64::EPSILON,
                    "{name}: pipeline key wrong at {} workers ({acc})",
                    row.workers
                );
            }
        }
        // Vacuously true on a catalog-wide timeout: "no key anywhere" is
        // byte-identical agreement too (the assert above already pinned it).
        let keys_bit_identical = rows.windows(2).all(|w| w[0].key == w[1].key);
        let time_at = |n: usize| rows.iter().find(|r| r.workers == n).map(|r| r.ms);
        let speedup = match (time_at(1), time_at(4)) {
            (Some(t1), Some(t4)) if t4 > 0.0 => Some(t1 / t4),
            _ => None,
        };
        // DIP throughput ratio: the right scaling measure for budgeted runs
        // (two timed-out runs both burn the full wall clock; what parallelism
        // buys is more DIPs mined inside it).
        let tp_at = |n: usize| {
            rows.iter().find(|r| r.workers == n).map(|r| r.dips as f64 / (r.ms / 1e3).max(1e-9))
        };
        let throughput = match (tp_at(1), tp_at(4)) {
            (Some(tp1), Some(tp4)) if tp1 > 0.0 => Some(tp4 / tp1),
            _ => None,
        };
        // The >=2x scaling gate needs real cores to stand on: enforce it only
        // on hosts with at least 4 of them, and only on designs large enough
        // to keep the miner fleet saturated (>= 5 s of mining at 1 worker) —
        // sub-second toys finish in a round or two of mostly-serial encode.
        if host_cores >= 4 {
            if let (Some(t1_ms), Some(tp)) = (time_at(1), throughput) {
                if t1_ms >= 5_000.0 {
                    assert!(
                        tp >= 2.0,
                        "{name}: {tp:.2}x DIP throughput at 4 workers vs 1 (expected >= 2x)"
                    );
                }
            }
        }
        eprintln!(
            "  {name}: ||k||={}, sequential {} in {} ({seq_iters} DIPs)",
            locked.key_inputs.len(),
            classify(&seq_out),
            secs(Duration::from_secs_f64(seq_ms / 1e3)),
        );
        for row in &rows {
            eprintln!(
                "    pipeline@{}: {} in {} ({} DIPs, {} queries, {:.1} DIPs/s)",
                row.workers,
                row.outcome,
                secs(Duration::from_secs_f64(row.ms / 1e3)),
                row.dips,
                row.queries,
                row.dips as f64 / (row.ms / 1e3).max(1e-9),
            );
        }
        if let (Some(s), Some(tp)) = (speedup, throughput) {
            eprintln!("    4 vs 1 workers: {s:.2}x wall clock, {tp:.2}x DIP throughput");
        }
        catalog.push((
            name.clone(),
            locked.key_inputs.len(),
            classify(&seq_out).to_string(),
            seq_ms,
            seq_iters,
            rows,
            keys_bit_identical,
            speedup,
            throughput,
        ));
    }

    // ---- small-instance inprocessing gate -------------------------------
    eprintln!("small-instance gate: {} php instances, best of {reps} reps", PHP_CORPUS.len());
    let mut gate_rows = Vec::new();
    for &(name, text) in PHP_CORPUS {
        let clauses = parse_dimacs(text);
        let vars =
            clauses.iter().flatten().map(|l| l.unsigned_abs() as usize).max().unwrap_or(0);
        let gated_ms = time_php(&clauses, INPROCESS_MIN_VARS, reps);
        let ungated_ms = time_php(&clauses, 0, reps);
        let gate_active = vars < INPROCESS_MIN_VARS;
        eprintln!(
            "  {name}: {vars} vars, gate {}: {gated_ms:.3} ms gated, {ungated_ms:.3} ms ungated",
            if gate_active { "ACTIVE" } else { "inactive" },
        );
        gate_rows.push((name, vars, gate_active, gated_ms, ungated_ms));
    }

    // ---- JSON ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dip_pipeline\",\n");
    let _ = writeln!(json, "  \"miners\": {},", dip.miners);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"timeout_secs\": {},", attack_timeout().as_secs());
    json.push_str("  \"catalog\": [\n");
    let design_objs: Vec<String> = catalog
        .iter()
        .map(|(name, kbits, seq_outcome, seq_ms, seq_iters, rows, ident, speedup, throughput)| {
            let mut obj = String::new();
            let _ = writeln!(obj, "    {{\"design\": \"{name}\", \"key_bits\": {kbits},");
            let _ = writeln!(
                obj,
                "     \"sequential\": {{\"outcome\": \"{seq_outcome}\", \"ms\": {seq_ms:.1}, \
                 \"dips\": {seq_iters}}},"
            );
            obj.push_str("     \"pipeline\": [\n");
            for (j, row) in rows.iter().enumerate() {
                let _ = write!(
                    obj,
                    "       {{\"workers\": {}, \"outcome\": \"{}\", \"ms\": {:.1}, \
                     \"dips\": {}, \"oracle_queries\": {}, \"patterns_simulated\": {}, \
                     \"dips_per_sec\": {:.2}, \"key\": \"{}\"}}",
                    row.workers,
                    row.outcome,
                    row.ms,
                    row.dips,
                    row.queries,
                    row.simulated,
                    row.dips as f64 / (row.ms / 1e3).max(1e-9),
                    row.key.as_deref().map(key_bits).unwrap_or_default(),
                );
                obj.push_str(if j + 1 < rows.len() { ",\n" } else { "\n" });
            }
            obj.push_str("     ],\n");
            let _ = writeln!(obj, "     \"keys_bit_identical_across_workers\": {ident},");
            match speedup {
                Some(s) => {
                    let _ = writeln!(obj, "     \"speedup_4_vs_1\": {s:.2},");
                }
                None => obj.push_str("     \"speedup_4_vs_1\": null,\n"),
            }
            match throughput {
                Some(tp) => {
                    let _ = write!(obj, "     \"throughput_4_vs_1\": {tp:.2}}}");
                }
                None => obj.push_str("     \"throughput_4_vs_1\": null}"),
            }
            obj
        })
        .collect();
    json.push_str(&design_objs.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"inprocess_min_vars\": {INPROCESS_MIN_VARS},");
    json.push_str("  \"small_instance_gate\": [\n");
    for (i, (name, vars, active, gated_ms, ungated_ms)) in gate_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"file\": \"{name}\", \"vars\": {vars}, \"gate_active\": {active}, \
             \"gated_ms\": {gated_ms:.3}, \"ungated_ms\": {ungated_ms:.3}}}"
        );
        json.push_str(if i + 1 < gate_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    rtlock_store::atomic_write(&out_path, &json).expect("write BENCH_dip.json");
    eprintln!("wrote {out_path}");
}
