//! Regenerates Table VI: post-layout PPA overhead of RTLock-locked
//! circuits in two modes — functional locking only, and functional + scan
//! locking. As in the paper, the functional overhead is normalized to the
//! original design and the functional+scan overhead to the functional
//! design, isolating the cost of RTL scan locking.

use rtlock::lock;
use rtlock_bench::{paper, prepare, rtlock_config, selected_designs};
use rtlock_netlist::ppa::{analyze, PpaConfig};
use rtlock_synth::scan;

fn main() {
    println!("Table VI: PPA overhead of RTLock-locked circuits (measured | paper)");
    println!(
        "{:<8} {:>10} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "circuit", "area um2", "delay", "power", "fA%", "fD%", "fP%", "fsA%", "fsD%", "fsP%"
    );
    let cfg = PpaConfig::default();
    for name in selected_designs() {
        let (module, original) = prepare(&name);
        let base = analyze(&original, &cfg);

        let functional = match lock(&module, &rtlock_config(&name, false)) {
            Ok(ld) => ld,
            Err(e) => {
                println!("{name:<8} lock failed: {e}");
                continue;
            }
        };
        let func_net = functional.locked_netlist().expect("synthesizes");
        let func = analyze(&func_net, &cfg);

        let with_scan = match lock(&module, &rtlock_config(&name, true)) {
            Ok(ld) => ld,
            Err(e) => {
                println!("{name:<8} scan lock failed: {e}");
                continue;
            }
        };
        let mut scan_net = with_scan.locked_netlist().expect("synthesizes");
        // DFT inserts the remaining chains (stitched + reordered).
        scan::insert_full_scan(&mut scan_net);
        scan::reorder(&mut scan_net);
        let fscan = analyze(&scan_net, &cfg);

        let (fa, fd, fp) = func.overhead_vs(&base);
        let (sa, sd, sp) = fscan.overhead_vs(&func);
        println!(
            "{:<8} {:>10.1} {:>7.3} {:>7.3} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2}",
            name, base.area_um2, base.delay_ns, base.power_mw, fa, fd, fp, sa, sd, sp
        );
        if let Some((_, f, s)) = paper::TABLE6.iter().find(|(d, ..)| *d == name) {
            println!(
                "{:<8} {:>10} {:>7} {:>7} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2}   (paper)",
                "", "-", "-", "-", f[0], f[1], f[2], s[0], s[1], s[2]
            );
        }
    }
    println!("\nfA/fD/fP: functional locking vs original; fsA/fsD/fsP: functional+scan vs");
    println!("functional. expected shape: moderate overheads, smaller relative area cost");
    println!("on larger circuits (the paper's AES row is <10%).");
}
