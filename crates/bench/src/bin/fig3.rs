//! Regenerates Fig. 3: the generic FSM-locking case studies. Applies each
//! of the five flavors to a reference FSM and prints the state traversal
//! under the correct and a wrong key.

use rtlock::candidates::{enumerate, Candidate, EnumConfig, FsmLockKind};
use rtlock::transforms::{apply, KeyAllocator};
use rtlock::verify::key_port_values;
use rtlock_rtl::sim::Simulator;
use rtlock_rtl::{parse, Bv, Module};

const FSM_SRC: &str = "module demo_fsm(input clk, input rst, input go, output reg [1:0] state, output reg [3:0] out);\n\
    reg [1:0] state_next;\n\
    localparam [1:0] IDLE = 2'd0, INIT = 2'd1, NEXT = 2'd2;\n\
    always @(*) begin\n\
      state_next = state;\n\
      case (state)\n\
        IDLE: begin if (go) state_next = INIT; end\n\
        INIT: begin state_next = NEXT; end\n\
        NEXT: begin state_next = IDLE; end\n\
      endcase\n\
    end\n\
    always @(posedge clk or posedge rst) begin\n\
      if (rst) begin state <= 2'd0; out <= 4'd0; end\n\
      else begin\n\
        state <= state_next;\n\
        if (state == INIT) out <= out + 4'd3;\n\
      end\n\
    end\nendmodule";

fn trace(m: &Module, key: &[bool], cycles: usize) -> Vec<u64> {
    let mut sim = Simulator::new(m);
    sim.set_by_name("rst", Bv::from_bool(true));
    sim.reset().expect("simulates");
    sim.set_by_name("rst", Bv::from_bool(false));
    sim.set_by_name("go", Bv::from_bool(true));
    for (port, v) in key_port_values(m, key) {
        sim.set_by_name(&port, v);
    }
    (0..cycles)
        .map(|_| {
            sim.step().expect("simulates");
            sim.get_by_name("state").to_u64_lossy()
        })
        .collect()
}

fn flavor_name(k: &FsmLockKind) -> &'static str {
    match k {
        FsmLockKind::InitLock => "(b) initialization locking",
        FsmLockKind::IncorrectTransition { .. } => "(c) incorrect state transition",
        FsmLockKind::SkipState { .. } => "(d) skipping state",
        FsmLockKind::BypassState { .. } => "(e) bypassing state",
        FsmLockKind::InherentSignal { .. } => "(f) locking inherent signals",
    }
}

fn main() {
    let original = parse(FSM_SRC).expect("reference FSM parses");
    let (cands, fsms) = enumerate(&original, &EnumConfig::default());
    println!("Fig. 3: FSM locking case studies on the reference machine");
    println!("states: 0=idle 1=init 2=next (+ fake encodings added by bypass)\n");
    println!("(a) original: {:?}\n", trace(&original, &[], 8));

    let mut shown: Vec<&'static str> = Vec::new();
    for c in &cands {
        let Candidate::Fsm { kind, .. } = c else { continue };
        let name = flavor_name(kind);
        if shown.contains(&name) {
            continue;
        }
        let mut locked = original.clone();
        let mut keys = KeyAllocator::new();
        if apply(&mut locked, c, &fsms, &mut keys).is_err() {
            continue;
        }
        shown.push(name);
        let key = keys.correct_key().to_vec();
        // Flip exactly one bit: flipping both bits of an entangled pair
        // would land in the equivalent-key class.
        let mut wrong = key.clone();
        wrong[0] = !wrong[0];
        println!("{name}");
        println!("    correct key {:?}: {:?}", key, trace(&locked, &key, 8));
        println!("    wrong key   {:?}: {:?}", wrong, trace(&locked, &wrong, 8));
        println!();
    }
}
