//! Regenerates Table I: the qualitative threat-coverage comparison.

fn main() {
    println!("Table I: High-level comparison of RTL-based logic locking techniques");
    println!("(qualitative matrix encoded in rtlock::threat)\n");
    print!("{}", rtlock::threat::render_table1());
    println!("\nLegend: oracle-less / oracle-guided = protection against IP piracy");
    println!("by that attacker class; `yes (with P1735)` = requires the coupled");
    println!("encryption+rights-management flow of Section III-B.");
}
