//! Regenerates Table III: SAT-attack time for every locking technique at
//! the same (15 %) area overhead, plus RTLock* (scan locking disabled).
//!
//! The paper ran 12 h timeouts on a Xeon; set `RTLOCK_TIMEOUT_SECS` and
//! `RTLOCK_DESIGNS=all` to scale up. A `TIMEOUT` entry means "not broken
//! within budget" — the RTLock rows are expected to time out or take
//! orders of magnitude longer than the baselines at far smaller key sizes.

use rtlock::baselines::{lock_baseline, BaselineKind};
use rtlock::{lock, AttackSurface};
use rtlock_attacks::{sat_attack, AttackConfig, AttackOutcome};
use rtlock_bench::{attack_timeout, max_baseline_keys, prepare, rtlock_config, secs, selected_designs};
use rtlock_netlist::Netlist;
use rtlock_synth::{scan, scan_view};

fn attack(locked: &Netlist, original: &Netlist) -> (usize, String) {
    let cfg = AttackConfig { max_iterations: 1_000_000, timeout: Some(attack_timeout()), ..Default::default() };
    match sat_attack(locked, original, &cfg) {
        AttackOutcome::KeyFound { key, iterations, elapsed, .. } => {
            (key.len(), format!("{} s ({iterations} DIPs)", secs(elapsed)))
        }
        AttackOutcome::TimedOut { iterations, elapsed, .. } => {
            (locked.key_inputs.len(), format!("TIMEOUT>{} s ({iterations} DIPs)", secs(elapsed)))
        }
        AttackOutcome::Infeasible { reason } => (locked.key_inputs.len(), format!("infeasible: {reason}")),
        AttackOutcome::Error { reason } => (locked.key_inputs.len(), format!("attack error: {reason}")),
    }
}

fn comb_views(locked: &Netlist, original: &Netlist) -> (Netlist, Netlist) {
    let mut l = locked.clone();
    scan::insert_full_scan(&mut l);
    let lv = scan_view(&l).netlist;
    let mut o = original.clone();
    scan::insert_full_scan(&mut o);
    let ov = scan_view(&o).netlist;
    (lv, ov)
}

fn main() {
    println!("Table III: SAT attack time at the same (15%) area overhead");
    println!("timeout = {} s per attack (RTLOCK_TIMEOUT_SECS to change)\n", attack_timeout().as_secs());
    println!("{:<8} {:<9} {:>5}  attack time", "circuit", "method", "||k||");
    for name in selected_designs() {
        let (module, original) = prepare(&name);
        for kind in BaselineKind::all() {
            let locked = lock_baseline(&original, kind, 15.0, max_baseline_keys(), 0xBA5E);
            let (mut lv, ov) = comb_views(&locked.netlist, &original);
            lv.key_inputs = locked
                .netlist
                .key_inputs
                .iter()
                .map(|&k| lv.find_input(locked.netlist.gate_name(k).unwrap_or("")).expect("key input kept"))
                .collect();
            let (klen, t) = attack(&lv, &ov);
            println!("{:<8} {:<9} {:>5}  {}", name, kind.name(), klen, t);
        }
        // RTLock without scan locking (the * rows).
        match lock(&module, &rtlock_config(&name, false)) {
            Ok(ld) => match ld.attack_surface(None) {
                Ok(AttackSurface::CombinationalViews { locked, original }) => {
                    let (klen, t) = attack(&locked, &original);
                    println!("{:<8} {:<9} {:>5}  {}", name, "RTLock*", klen, t);
                }
                other => println!("{:<8} {:<9}        unexpected surface: {other:?}", name, "RTLock*"),
            },
            Err(e) => println!("{:<8} {:<9}        lock failed: {e}", name, "RTLock*"),
        }
        // RTLock with scan locking: SAT attack must be rejected outright.
        match lock(&module, &rtlock_config(&name, true)) {
            Ok(ld) => match ld.attack_surface(None) {
                Ok(AttackSurface::SequentialOnly { locked, original }) => {
                    let out = sat_attack(&locked, &original, &AttackConfig::default());
                    println!(
                        "{:<8} {:<9} {:>5}  {}",
                        name,
                        "RTLock",
                        ld.key.len(),
                        match out {
                            AttackOutcome::Infeasible { reason } => format!("no scan access ({reason})"),
                            other => format!("UNEXPECTED {other:?}"),
                        }
                    );
                }
                other => println!("{:<8} {:<9}        unexpected surface: {other:?}", name, "RTLock"),
            },
            Err(e) => println!("{:<8} {:<9}        lock failed: {e}", name, "RTLock"),
        }
        println!();
    }
    println!("paper (AES row, 12 h timeout): RND 498/8.2s SLL 562/181.2s TOC_MUX 352/1.8s");
    println!("TOC_XOR 287/16.9s IOLTS 986/3.1s RTLock* 35/36350s — shape to check:");
    println!("RTLock reaches orders-of-magnitude higher attack time with ~10x smaller keys,");
    println!("and with scan locking enabled the SAT attack does not apply at all.");
}
