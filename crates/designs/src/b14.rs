//! b14 analogue.
//!
//! ITC'99 b14 is "a subset of the Viper processor". This re-implementation
//! keeps the character: a 32-bit accumulator machine with a fetch/execute
//! FSM, an ALU including a multiplier (the dominant-gate-count feature of
//! b14), condition flags, and a program counter. Register budget ~215
//! flops, gate count in the ten-thousands after synthesis.

/// Verilog source of the b14 analogue.
pub fn source() -> String {
    r#"
module b14(
  input clk,
  input rst,
  input [3:0] opcode,
  input [28:0] din,
  input go,
  output reg [31:0] dout,
  output reg [15:0] pc,
  output reg [3:0] flags,
  output reg valid,
  output executing
);
  localparam [1:0] F_IDLE = 2'd0, F_EXEC = 2'd1, F_WRITE = 2'd2;

  localparam [3:0] OP_LOAD = 4'd0, OP_ADD = 4'd1, OP_SUB = 4'd2, OP_MUL = 4'd3,
                   OP_AND = 4'd4, OP_OR = 4'd5, OP_XOR = 4'd6, OP_SHL = 4'd7,
                   OP_SHR = 4'd8, OP_CMP = 4'd9, OP_SWAP = 4'd10, OP_STORE = 4'd11,
                   OP_JMP = 4'd12, OP_ACCX = 4'd13, OP_NEG = 4'd14, OP_NOP = 4'd15;

  reg [1:0] phase;
  reg [1:0] phase_next;
  reg [31:0] acc;
  reg [31:0] x;
  reg [31:0] y;
  reg [31:0] alu_out;
  reg [3:0] flags_next;
  wire [31:0] operand;

  assign operand = {3'b000, din};
  assign executing = phase != F_IDLE;

  always @(*) begin
    phase_next = phase;
    case (phase)
      F_IDLE: begin
        if (go) phase_next = F_EXEC;
      end
      F_EXEC: begin
        phase_next = F_WRITE;
      end
      F_WRITE: begin
        phase_next = F_IDLE;
      end
      default: begin
        phase_next = F_IDLE;
      end
    endcase
  end

  always @(*) begin
    alu_out = acc;
    case (opcode)
      OP_LOAD: alu_out = operand;
      OP_ADD:  alu_out = acc + operand;
      OP_SUB:  alu_out = acc - operand;
      OP_MUL:  alu_out = acc * operand;
      OP_AND:  alu_out = acc & operand;
      OP_OR:   alu_out = acc | operand;
      OP_XOR:  alu_out = acc ^ operand;
      OP_SHL:  alu_out = acc << operand[4:0];
      OP_SHR:  alu_out = acc >> operand[4:0];
      OP_CMP:  alu_out = acc;
      OP_SWAP: alu_out = x;
      OP_ACCX: alu_out = acc + x + y;
      OP_NEG:  alu_out = 32'd0 - acc;
      default: alu_out = acc;
    endcase
  end

  always @(*) begin
    flags_next[0] = alu_out == 32'd0;
    flags_next[1] = alu_out[31];
    flags_next[2] = acc < operand;
    flags_next[3] = ^alu_out;
  end

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      phase <= 2'd0;
      acc <= 32'd0;
      x <= 32'd0;
      y <= 32'd0;
      pc <= 16'd0;
      flags <= 4'd0;
      dout <= 32'd0;
      valid <= 1'b0;
    end else begin
      phase <= phase_next;
      if (phase == F_IDLE) begin
        valid <= 1'b0;
      end
      if (phase == F_EXEC) begin
        if (opcode == OP_SWAP) begin
          x <= acc;
          y <= x;
        end
        if (opcode != OP_STORE && opcode != OP_JMP && opcode != OP_NOP) acc <= alu_out;
        flags <= flags_next;
        if (opcode == OP_JMP) pc <= operand[15:0];
        else pc <= pc + 16'd1;
      end
      if (phase == F_WRITE) begin
        if (opcode == OP_STORE) begin
          dout <= acc;
          valid <= 1'b1;
        end
      end
    end
  end
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    struct Cpu<'m> {
        sim: Simulator<'m>,
    }

    impl<'m> Cpu<'m> {
        fn exec(&mut self, opcode: u64, din: u64) {
            self.sim.set_by_name("opcode", Bv::from_u64(4, opcode));
            self.sim.set_by_name("din", Bv::from_u64(29, din));
            self.sim.set_by_name("go", Bv::from_bool(true));
            self.sim.step().unwrap(); // IDLE -> EXEC
            self.sim.set_by_name("go", Bv::from_bool(false));
            self.sim.step().unwrap(); // EXEC -> WRITE
            self.sim.step().unwrap(); // WRITE -> IDLE
        }

        fn store(&mut self) -> u64 {
            self.exec(11, 0);
            assert_eq!(self.sim.get_by_name("valid"), Bv::from_bool(true));
            self.sim.get_by_name("dout").to_u64_lossy()
        }
    }

    fn boot(m: &rtlock_rtl::Module) -> Cpu<'_> {
        let mut sim = Simulator::new(m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        Cpu { sim }
    }

    #[test]
    fn arithmetic_program() {
        let m = parse(&source()).unwrap();
        let mut cpu = boot(&m);
        cpu.exec(0, 1000); // LOAD 1000
        cpu.exec(1, 234); // ADD 234
        assert_eq!(cpu.store(), 1234);
        cpu.exec(3, 3); // MUL 3
        assert_eq!(cpu.store(), 3702);
        cpu.exec(2, 702); // SUB
        assert_eq!(cpu.store(), 3000);
        cpu.exec(7, 4); // SHL 4
        assert_eq!(cpu.store(), 48000);
        cpu.exec(8, 5); // SHR 5
        assert_eq!(cpu.store(), 1500);
    }

    #[test]
    fn swap_and_three_operand_add() {
        let m = parse(&source()).unwrap();
        let mut cpu = boot(&m);
        cpu.exec(0, 7); // LOAD 7
        cpu.exec(10, 0); // SWAP: acc<-x(0), x<-7
        cpu.exec(0, 5); // LOAD 5
        cpu.exec(13, 0); // ACCX: acc = 5 + 7 + 0
        assert_eq!(cpu.store(), 12);
    }

    #[test]
    fn flags_reflect_alu_result() {
        let m = parse(&source()).unwrap();
        let mut cpu = boot(&m);
        cpu.exec(0, 5);
        cpu.exec(2, 5); // SUB 5 -> 0, zero flag
        let flags = cpu.sim.get_by_name("flags").to_u64_lossy();
        assert_eq!(flags & 1, 1, "zero flag set");
    }

    #[test]
    fn pc_counts_and_jumps() {
        let m = parse(&source()).unwrap();
        let mut cpu = boot(&m);
        cpu.exec(15, 0);
        cpu.exec(15, 0);
        assert_eq!(cpu.sim.get_by_name("pc").to_u64_lossy(), 2);
        cpu.exec(12, 0x1234); // JMP
        assert_eq!(cpu.sim.get_by_name("pc").to_u64_lossy(), 0x1234);
    }

    #[test]
    fn synthesizes_to_a_sizable_netlist() {
        let m = parse(&source()).unwrap();
        let n = rtlock_synth::elaborate(&m).unwrap();
        assert!(n.logic_count() > 3000, "multiplier dominates: {}", n.logic_count());
        assert!(n.dffs().len() >= 150, "flops: {}", n.dffs().len());
    }
}
