//! b15 analogue.
//!
//! ITC'99 b15 is "a subset of the 80386 processor". This re-implementation
//! keeps the character: an instruction-fetch queue, a decode FSM, an
//! 8-entry 16-bit register file (flop-based, case-selected), and a 16-bit
//! execute unit with a multiplier.

/// Verilog source of the b15 analogue.
pub fn source() -> String {
    // Register file read/write muxing generated per register.
    let mut read_arms_a = String::new();
    let mut read_arms_b = String::new();
    let mut write_arms = String::new();
    let mut decls = String::new();
    let mut resets = String::new();
    for r in 0..8 {
        decls.push_str(&format!("  reg [15:0] r{r};\n"));
        resets.push_str(&format!("      r{r} <= 16'd0;\n"));
        read_arms_a.push_str(&format!("      3'd{r}: ra_val = r{r};\n"));
        read_arms_b.push_str(&format!("      3'd{r}: rb_val = r{r};\n"));
        write_arms.push_str(&format!("        if (wr_sel == 3'd{r}) r{r} <= exec_out;\n"));
    }
    format!(
        r#"
module b15(
  input clk,
  input rst,
  input [15:0] ibus,
  input ivalid,
  input [2:0] op_mode,
  output reg [15:0] obus,
  output reg [15:0] addr,
  output reg [2:0] q_depth,
  output reg ovalid,
  output reg fault,
  output decoding
);
  localparam [2:0] D_FETCH = 3'd0, D_DECODE = 3'd1, D_READ = 3'd2,
                   D_EXEC = 3'd3, D_WRITE = 3'd4;

  reg [2:0] dstate;
  reg [2:0] dstate_next;

  // Two-deep prefetch queue.
  reg [15:0] q0;
  reg [15:0] q1;
  reg [15:0] inst;

  // Decoded fields.
  reg [3:0] dec_op;
  reg [2:0] ra_sel;
  reg [2:0] rb_sel;
  reg [2:0] wr_sel;

{decls}
  reg [15:0] ra_val;
  reg [15:0] rb_val;
  reg [15:0] exec_out;
  reg [15:0] ip;

  assign decoding = dstate != D_FETCH;

  always @(*) begin
    case (ra_sel)
{read_arms_a}      default: ra_val = 16'd0;
    endcase
  end

  always @(*) begin
    case (rb_sel)
{read_arms_b}      default: rb_val = 16'd0;
    endcase
  end

  always @(*) begin
    exec_out = ra_val;
    case (dec_op)
      4'd0: exec_out = rb_val;
      4'd1: exec_out = ra_val + rb_val;
      4'd2: exec_out = ra_val - rb_val;
      4'd3: exec_out = ra_val & rb_val;
      4'd4: exec_out = ra_val | rb_val;
      4'd5: exec_out = ra_val ^ rb_val;
      4'd6: exec_out = ra_val * rb_val;
      4'd7: exec_out = ra_val << rb_val[3:0];
      4'd8: exec_out = ra_val >> rb_val[3:0];
      4'd9: exec_out = {{8'd0, inst[7:0]}};
      4'd10: exec_out = ra_val + 16'd1;
      4'd11: exec_out = ra_val - 16'd1;
      default: exec_out = ra_val;
    endcase
  end

  always @(*) begin
    dstate_next = dstate;
    case (dstate)
      D_FETCH: begin
        if (q_depth != 3'd0) dstate_next = D_DECODE;
      end
      D_DECODE: begin
        dstate_next = D_READ;
      end
      D_READ: begin
        dstate_next = D_EXEC;
      end
      D_EXEC: begin
        dstate_next = D_WRITE;
      end
      D_WRITE: begin
        dstate_next = D_FETCH;
      end
      default: begin
        dstate_next = D_FETCH;
      end
    endcase
  end

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      dstate <= 3'd0;
      q0 <= 16'd0;
      q1 <= 16'd0;
      inst <= 16'd0;
      dec_op <= 4'd0;
      ra_sel <= 3'd0;
      rb_sel <= 3'd0;
      wr_sel <= 3'd0;
{resets}      obus <= 16'd0;
      addr <= 16'd0;
      q_depth <= 3'd0;
      ovalid <= 1'b0;
      fault <= 1'b0;
      ip <= 16'd0;
    end else begin
      dstate <= dstate_next;
      // Prefetch whenever the bus offers an instruction and space exists.
      if (ivalid && q_depth == 3'd0) begin
        q0 <= ibus;
        q_depth <= 3'd1;
      end
      if (ivalid && q_depth == 3'd1) begin
        q1 <= ibus;
        q_depth <= 3'd2;
      end
      if (dstate == D_FETCH) begin
        ovalid <= 1'b0;
        if (q_depth != 3'd0) begin
          inst <= q0;
          q0 <= q1;
          if (q_depth == 3'd2 && ivalid) q1 <= ibus;
          if (!(ivalid)) q_depth <= q_depth - 3'd1;
          ip <= ip + 16'd1;
        end
      end
      if (dstate == D_DECODE) begin
        dec_op <= inst[15:12];
        wr_sel <= inst[11:9];
        ra_sel <= inst[8:6];
        rb_sel <= inst[5:3];
        fault <= inst[15:12] > 4'd11;
      end
      if (dstate == D_EXEC) begin
        if (op_mode != 3'd7) begin
{write_arms}        end
      end
      if (dstate == D_WRITE) begin
        obus <= exec_out;
        addr <= ip;
        ovalid <= 1'b1;
      end
    end
  end
endmodule
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    fn instruction(op: u64, wr: u64, ra: u64, rb: u64, imm8: u64) -> u64 {
        op << 12 | wr << 9 | ra << 6 | rb << 3 | (imm8 & 0x7)
    }

    fn run_program(prog: &[u64]) -> (u64, bool) {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        sim.set_by_name("op_mode", Bv::from_u64(3, 0));
        let mut last_obus = 0;
        let mut saw_valid = false;
        let mut feed = prog.iter();
        let mut pending = feed.next();
        for _ in 0..(prog.len() * 8 + 20) {
            match pending {
                Some(&word) if sim.get_by_name("q_depth").to_u64_lossy() < 2 => {
                    sim.set_by_name("ibus", Bv::from_u64(16, word));
                    sim.set_by_name("ivalid", Bv::from_bool(true));
                    pending = feed.next();
                }
                _ => {
                    sim.set_by_name("ivalid", Bv::from_bool(false));
                }
            }
            sim.step().unwrap();
            if sim.get_by_name("ivalid").to_u64_lossy() == 1 {
                // consumed
            }
            if sim.get_by_name("ovalid").to_u64_lossy() == 1 {
                last_obus = sim.get_by_name("obus").to_u64_lossy();
                saw_valid = true;
            }
        }
        (last_obus, saw_valid)
    }

    #[test]
    fn executes_load_add_multiply() {
        // r1 = imm 5 ; r2 = imm 3 ; r3 = r1 + r2 ; r4 = r3 * r2
        let prog = [
            instruction(9, 1, 0, 0, 5) | 5, // LDI r1, 5 (imm in low byte)
            instruction(9, 2, 0, 0, 3) | 3,
            instruction(1, 3, 1, 2, 0),
            instruction(6, 4, 3, 2, 0),
        ];
        let (obus, valid) = run_program(&prog);
        assert!(valid);
        assert_eq!(obus, 24, "(5+3)*3");
    }

    #[test]
    fn fault_raised_for_illegal_opcode() {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        sim.set_by_name("op_mode", Bv::from_u64(3, 0));
        sim.set_by_name("ibus", Bv::from_u64(16, 0xF000));
        sim.set_by_name("ivalid", Bv::from_bool(true));
        sim.step().unwrap();
        sim.set_by_name("ivalid", Bv::from_bool(false));
        for _ in 0..10 {
            sim.step().unwrap();
        }
        assert_eq!(sim.get_by_name("fault"), Bv::from_bool(true));
    }

    #[test]
    fn five_state_decode_fsm_extracted() {
        let m = parse(&source()).unwrap();
        let fsms = rtlock_rtl::fsm::extract(&m);
        let f = fsms.iter().find(|f| m.net(f.state_reg).name == "dstate").expect("decode FSM");
        assert_eq!(f.states.len(), 5);
    }

    #[test]
    fn synthesizes_with_many_flops() {
        let m = parse(&source()).unwrap();
        let n = rtlock_synth::elaborate(&m).unwrap();
        assert!(n.dffs().len() >= 200, "flops: {}", n.dffs().len());
        assert!(n.logic_count() > 1500, "gates: {}", n.logic_count());
    }
}
