//! b05 analogue.
//!
//! ITC'99 b05 "elaborates the contents of a memory": it scans stored data
//! and reports extremal values. The original sources are not
//! redistributable, so this is a re-implementation with the same character:
//! a control FSM walking a 32-entry constant table (ROM), tracking the
//! maximum, the minimum, and a match count against a query value, with a
//! comparable register budget (~34 flops) and I/O shape.

/// Verilog source of the b05 analogue.
pub fn source() -> String {
    let mut rom_arms = String::new();
    // A fixed pseudo-random ROM (xorshift over a seed).
    let mut v = 0x5Au32;
    for i in 0..32 {
        v ^= v << 3;
        v ^= v >> 5;
        v &= 0xFF;
        if v == 0 {
            v = 0x1F;
        }
        rom_arms.push_str(&format!("      5'd{i}: rom_data = 8'd{};\n", v & 0xFF));
    }
    format!(
        r#"
module b05(
  input clk,
  input rst,
  input start,
  input [7:0] query,
  output reg [7:0] max_val,
  output reg [7:0] min_val,
  output reg [5:0] match_cnt,
  output reg [7:0] last_val,
  output reg done,
  output scanning
);
  localparam [2:0] ST_IDLE = 3'd0, ST_SCAN = 3'd1, ST_EVAL = 3'd2, ST_OUT = 3'd3;

  reg [2:0] state;
  reg [2:0] state_next;
  reg [4:0] idx;
  reg [7:0] rom_data;

  assign scanning = state == ST_SCAN || state == ST_EVAL;

  always @(*) begin
    case (idx)
{rom_arms}      default: rom_data = 8'd0;
    endcase
  end

  always @(*) begin
    state_next = state;
    case (state)
      ST_IDLE: begin
        if (start) state_next = ST_SCAN;
      end
      ST_SCAN: begin
        state_next = ST_EVAL;
      end
      ST_EVAL: begin
        if (idx == 5'd31) state_next = ST_OUT;
        else state_next = ST_SCAN;
      end
      ST_OUT: begin
        state_next = ST_IDLE;
      end
      default: begin
        state_next = ST_IDLE;
      end
    endcase
  end

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 3'd0;
      idx <= 5'd0;
      max_val <= 8'd0;
      min_val <= 8'hFF;
      match_cnt <= 6'd0;
      last_val <= 8'd0;
      done <= 1'b0;
    end else begin
      state <= state_next;
      if (state == ST_IDLE) begin
        done <= 1'b0;
        if (start) begin
          idx <= 5'd0;
          max_val <= 8'd0;
          min_val <= 8'hFF;
          match_cnt <= 6'd0;
        end
      end
      if (state == ST_EVAL) begin
        last_val <= rom_data;
        if (rom_data > max_val) max_val <= rom_data;
        if (rom_data < min_val) min_val <= rom_data;
        if (rom_data == query) match_cnt <= match_cnt + 6'd1;
        if (idx != 5'd31) idx <= idx + 5'd1;
      end
      if (state == ST_OUT) begin
        done <= 1'b1;
      end
    end
  end
endmodule
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    fn run_scan(query: u64) -> (u64, u64, u64) {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        sim.set_by_name("query", Bv::from_u64(8, query));
        sim.set_by_name("start", Bv::from_bool(true));
        sim.step().unwrap();
        sim.set_by_name("start", Bv::from_bool(false));
        for _ in 0..80 {
            sim.step().unwrap();
            if sim.get_by_name("done").to_u64_lossy() == 1 {
                break;
            }
        }
        assert_eq!(sim.get_by_name("done").to_u64_lossy(), 1, "scan finished");
        (
            sim.get_by_name("max_val").to_u64_lossy(),
            sim.get_by_name("min_val").to_u64_lossy(),
            sim.get_by_name("match_cnt").to_u64_lossy(),
        )
    }

    /// Software model of the ROM generator in `source()`.
    fn rom() -> Vec<u64> {
        let mut v = 0x5Au32;
        (0..32)
            .map(|_| {
                v ^= v << 3;
                v ^= v >> 5;
                v &= 0xFF;
                if v == 0 {
                    v = 0x1F;
                }
                u64::from(v & 0xFF)
            })
            .collect()
    }

    #[test]
    fn scan_matches_software_model() {
        let table = rom();
        let q = table[7];
        let (max, min, cnt) = run_scan(q);
        assert_eq!(max, *table.iter().max().unwrap());
        assert_eq!(min, *table.iter().min().unwrap());
        assert_eq!(cnt, table.iter().filter(|&&x| x == q).count() as u64);
    }

    #[test]
    fn no_matches_for_absent_query() {
        let table = rom();
        let q = (0..=255).find(|x| !table.contains(x)).unwrap();
        let (_, _, cnt) = run_scan(q);
        assert_eq!(cnt, 0);
    }

    #[test]
    fn fsm_extracted_with_four_states() {
        let m = parse(&source()).unwrap();
        let fsms = rtlock_rtl::fsm::extract(&m);
        // The ROM case and the FSM case both exist; the state FSM is on `state`.
        let f = fsms.iter().find(|f| m.net(f.state_reg).name == "state").expect("state FSM");
        assert_eq!(f.states.len(), 4);
    }
}
