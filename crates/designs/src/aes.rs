//! AES-128 encryption core ("AES" in Table II).
//!
//! One round per clock, on-the-fly key schedule, S-boxes materialized as
//! 256-way case statements (the Verilog source is generated
//! programmatically). This is the largest benchmark — tens of thousands of
//! gates after synthesis, like the paper's AES row.

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Generates one S-box as a combinational case statement.
fn sbox_proc(input: &str, output: &str) -> String {
    let mut s = format!("  always @(*) begin\n    case ({input})\n");
    for (v, &sv) in SBOX.iter().enumerate() {
        s.push_str(&format!("      8'd{v}: {output} = 8'd{sv};\n"));
    }
    s.push_str(&format!("      default: {output} = 8'd0;\n    endcase\n  end\n"));
    s
}

/// Byte `i` of a 128-bit signal, AES convention (byte 0 = most significant).
fn byte_slice(sig: &str, i: usize) -> String {
    format!("{sig}[{}:{}]", 127 - 8 * i, 120 - 8 * i)
}

/// Verilog source of the AES-128 core (programmatically generated).
pub fn source() -> String {
    let mut s = String::new();
    s.push_str(
        "module aes128(\n  input clk,\n  input rst,\n  input start,\n  input [127:0] pt,\n  \
         input [127:0] key,\n  output reg [127:0] ct,\n  output reg ready,\n  output busy\n);\n",
    );
    s.push_str("  localparam [1:0] A_IDLE = 2'd0, A_RUN = 2'd1, A_DONE = 2'd2;\n\n");
    s.push_str("  reg [1:0] astate;\n  reg [1:0] astate_next;\n");
    s.push_str("  reg [127:0] st;\n  reg [127:0] rk;\n  reg [3:0] rnd;\n");
    for i in 0..16 {
        s.push_str(&format!("  reg [7:0] sb{i};\n"));
    }
    for i in 0..4 {
        s.push_str(&format!("  reg [7:0] kb{i};\n"));
    }
    s.push_str("  reg [7:0] rcon;\n");
    s.push_str("  wire [127:0] sr;\n  wire [127:0] mc;\n  wire [127:0] next_rk;\n  wire [127:0] round_out;\n\n");

    // 16 state S-boxes.
    for i in 0..16 {
        s.push_str(&sbox_proc(&byte_slice("st", i), &format!("sb{i}")));
    }

    // ShiftRows over the substituted bytes. Column-major state: byte index
    // = 4*col + row in the flattened (big-endian) 128-bit value.
    // new[4c + r] = old[4*((c + r) % 4) + r]
    let mut sr_bytes = Vec::new();
    for c in 0..4 {
        for r in 0..4 {
            let src = 4 * ((c + r) % 4) + r;
            sr_bytes.push(format!("sb{src}"));
        }
    }
    s.push_str(&format!("  assign sr = {{{}}};\n\n", sr_bytes.join(", ")));

    // xtime helper wires for MixColumns, per byte of sr.
    for i in 0..16 {
        let b = byte_slice("sr", i);
        s.push_str(&format!(
            "  wire [7:0] xt{i};\n  assign xt{i} = {{sr[{lo_hi}:{lo_lo}], 1'b0}} ^ (8'h1b & {{8{{sr[{hi}]}}}});\n",
            lo_hi = 127 - 8 * i - 1,
            lo_lo = 120 - 8 * i,
            hi = 127 - 8 * i,
        ));
        let _ = b;
    }
    // MixColumns: for column c with bytes b0..b3 (indices 4c..4c+3):
    // m0 = xt(b0) ^ (xt(b1)^b1) ^ b2 ^ b3, etc.
    let mut mc_bytes = Vec::new();
    for c in 0..4 {
        let b = |r: usize| 4 * c + r;
        let by = |r: usize| byte_slice("sr", b(r));
        let xt = |r: usize| format!("xt{}", b(r));
        mc_bytes.push(format!("({} ^ ({} ^ {}) ^ {} ^ {})", xt(0), xt(1), by(1), by(2), by(3)));
        mc_bytes.push(format!("({} ^ {} ^ ({} ^ {}) ^ {})", by(0), xt(1), xt(2), by(2), by(3)));
        mc_bytes.push(format!("({} ^ {} ^ {} ^ ({} ^ {}))", by(0), by(1), xt(2), xt(3), by(3)));
        mc_bytes.push(format!("(({} ^ {}) ^ {} ^ {} ^ {})", xt(0), by(0), by(1), by(2), xt(3)));
    }
    s.push_str(&format!("  assign mc = {{{}}};\n\n", mc_bytes.join(", ")));

    // Key schedule: SubWord(RotWord(w3)) with 4 S-boxes on rotated bytes.
    // w3 bytes are rk bytes 12..15; RotWord makes the order 13,14,15,12.
    for (j, src) in [13usize, 14, 15, 12].iter().enumerate() {
        s.push_str(&sbox_proc(&byte_slice("rk", *src), &format!("kb{j}")));
    }
    s.push_str("  always @(*) begin\n    case (rnd)\n");
    for (i, rc) in [0x01u8, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36].iter().enumerate() {
        s.push_str(&format!("      4'd{}: rcon = 8'd{rc};\n", i + 1));
    }
    s.push_str("      default: rcon = 8'd0;\n    endcase\n  end\n");
    s.push_str(
        "  wire [31:0] ks_temp;\n  assign ks_temp = {kb0 ^ rcon, kb1, kb2, kb3};\n  \
         wire [31:0] nw0;\n  wire [31:0] nw1;\n  wire [31:0] nw2;\n  wire [31:0] nw3;\n  \
         assign nw0 = rk[127:96] ^ ks_temp;\n  assign nw1 = rk[95:64] ^ nw0;\n  \
         assign nw2 = rk[63:32] ^ nw1;\n  assign nw3 = rk[31:0] ^ nw2;\n  \
         assign next_rk = {nw0, nw1, nw2, nw3};\n\n",
    );

    // Round output: final round (10) skips MixColumns.
    s.push_str("  assign round_out = (rnd == 4'd10 ? sr : mc) ^ next_rk;\n");
    s.push_str("  assign busy = astate != A_IDLE;\n\n");

    // Control FSM.
    s.push_str(
        "  always @(*) begin\n    astate_next = astate;\n    case (astate)\n      \
         A_IDLE: begin if (start) astate_next = A_RUN; end\n      \
         A_RUN: begin if (rnd == 4'd10) astate_next = A_DONE; end\n      \
         A_DONE: begin astate_next = A_IDLE; end\n      \
         default: begin astate_next = A_IDLE; end\n    endcase\n  end\n\n",
    );
    s.push_str(
        "  always @(posedge clk or posedge rst) begin\n    if (rst) begin\n      \
         astate <= 2'd0;\n      st <= 128'd0;\n      rk <= 128'd0;\n      rnd <= 4'd0;\n      \
         ct <= 128'd0;\n      ready <= 1'b0;\n    end else begin\n      astate <= astate_next;\n      \
         if (astate == A_IDLE) begin\n        if (start) begin\n          st <= pt ^ key;\n          \
         rk <= key;\n          rnd <= 4'd1;\n          ready <= 1'b0;\n        end\n      end\n      \
         if (astate == A_RUN) begin\n        st <= round_out;\n        rk <= next_rk;\n        \
         rnd <= rnd + 4'd1;\n      end\n      if (astate == A_DONE) begin\n        ct <= st;\n        \
         ready <= 1'b1;\n      end\n    end\n  end\nendmodule\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    fn bytes_to_bv(bytes: &[u8; 16]) -> Bv {
        let mut v = Bv::zeros(128);
        for (i, &byte) in bytes.iter().enumerate() {
            for bit in 0..8 {
                if byte >> (7 - bit) & 1 == 1 {
                    v.set(127 - (i * 8 + bit), true);
                }
            }
        }
        v
    }

    fn bv_to_bytes(v: &Bv) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            for bit in 0..8 {
                if v.bit(127 - (i * 8 + bit)) {
                    *slot |= 1 << (7 - bit);
                }
            }
        }
        out
    }

    fn hw_encrypt(pt: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        sim.set_by_name("pt", bytes_to_bv(pt));
        sim.set_by_name("key", bytes_to_bv(key));
        sim.set_by_name("start", Bv::from_bool(true));
        sim.step().unwrap();
        sim.set_by_name("start", Bv::from_bool(false));
        for _ in 0..16 {
            sim.step().unwrap();
            if sim.get_by_name("ready").to_u64_lossy() == 1 {
                break;
            }
        }
        assert_eq!(sim.get_by_name("ready").to_u64_lossy(), 1, "core finished");
        bv_to_bytes(&sim.get_by_name("ct"))
    }

    #[test]
    fn matches_fips197_vector() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
        ];
        assert_eq!(hw_encrypt(&pt, &key), expect);
    }

    #[test]
    fn matches_software_aes_on_random_blocks() {
        use rtlock_p1735::aes::{Aes, KeySize};
        let key = [0x3Cu8; 16];
        let aes = Aes::new(&key, KeySize::Aes128);
        let mut pt = [0u8; 16];
        for round in 0..3u8 {
            for (i, b) in pt.iter_mut().enumerate() {
                *b = b.wrapping_mul(97).wrapping_add(i as u8 * 13 + round);
            }
            assert_eq!(hw_encrypt(&pt, &key), aes.encrypt_block(&pt), "round {round}");
        }
    }
}
