//! Known-defect fixtures for the `rtlock-lint` rule catalog.
//!
//! One fixture per rule: a `bad` snippet the rule must flag and a clean
//! `good` twin it must stay silent on. Structural rules (`S…`) and the
//! RTL-side security rules use Verilog sources; key-aware synthesis and
//! scan rules (`Y…`, most `C…`) use `.bench` netlists with `keyinput<i>`
//! naming so the key inputs come pre-marked.

/// The source language of a fixture pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixtureKind {
    /// Verilog sources for `rtlock_rtl::parse`.
    Verilog,
    /// ISCAS-89 sources for `rtlock_netlist::from_bench`.
    Bench,
}

/// A positive/negative fixture pair for one lint rule.
#[derive(Debug, Clone)]
pub struct LintFixture {
    /// The rule this pair exercises (`S001`, `Y002`, …).
    pub rule: &'static str,
    /// Short human name for test output.
    pub name: &'static str,
    /// Source language of both snippets.
    pub kind: FixtureKind,
    /// A snippet the rule must flag.
    pub bad: &'static str,
    /// A clean twin the rule must not flag.
    pub good: &'static str,
    /// When `true`, the test harness puts every flip-flop of a bench
    /// fixture on the scan chain before linting (the scan rules need a
    /// chain to reason about).
    pub full_scan: bool,
}

/// All fixture pairs, one per catalog rule.
pub fn lint_fixtures() -> Vec<LintFixture> {
    vec![
        LintFixture {
            rule: "S001",
            name: "combinational loop",
            kind: FixtureKind::Verilog,
            bad: "module loopy(input a, input b, output y);\n\
                  wire p; wire q;\n\
                  assign p = q & a;\n\
                  assign q = p | b;\n\
                  assign y = q;\nendmodule",
            good: "module loopless(input a, input b, output y);\n\
                   wire p; wire q;\n\
                   assign p = a & b;\n\
                   assign q = p | b;\n\
                   assign y = q;\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "S002",
            name: "multi-driven net",
            kind: FixtureKind::Verilog,
            bad: "module mdrive(input a, input b, output y);\n\
                  assign y = a;\n\
                  assign y = b;\nendmodule",
            good: "module sdrive(input a, input b, output y);\n\
                   assign y = a | b;\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "S003",
            name: "undriven net read",
            kind: FixtureKind::Verilog,
            bad: "module floaty(input a, output y);\n\
                  wire u;\n\
                  assign y = a & u;\nendmodule",
            good: "module driven(input a, output y);\n\
                   wire u;\n\
                   assign u = ~a;\n\
                   assign y = a & u;\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "S004",
            name: "width mismatch",
            kind: FixtureKind::Verilog,
            bad: "module wide(input [7:0] a, output [3:0] y);\n\
                  assign y = a;\nendmodule",
            good: "module narrow(input [7:0] a, output [3:0] y);\n\
                   assign y = a[3:0];\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "S005",
            name: "unused net",
            kind: FixtureKind::Verilog,
            bad: "module lonely(input a, output y);\n\
                  wire dead;\n\
                  assign dead = ~a;\n\
                  assign y = a;\nendmodule",
            good: "module tidy(input a, output y);\n\
                   wire live;\n\
                   assign live = ~a;\n\
                   assign y = live;\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "S006",
            name: "unreachable FSM state",
            kind: FixtureKind::Verilog,
            bad: "module fsm(input clk, input rst, input go, output o);\n\
                  reg [1:0] st; reg [1:0] st_next;\n\
                  assign o = st == 2'd2;\n\
                  always @(*) begin\n\
                    st_next = st;\n\
                    case (st)\n\
                      2'd0: begin if (go) st_next = 2'd1; end\n\
                      2'd1: begin st_next = 2'd2; end\n\
                      2'd2: begin st_next = 2'd0; end\n\
                      2'd3: begin st_next = 2'd0; end\n\
                    endcase\n\
                  end\n\
                  always @(posedge clk or posedge rst) begin\n\
                    if (rst) st <= 2'd0;\n\
                    else st <= st_next;\n\
                  end\nendmodule",
            good: "module fsm_ok(input clk, input rst, input go, output o);\n\
                   reg [1:0] st; reg [1:0] st_next;\n\
                   assign o = st == 2'd2;\n\
                   always @(*) begin\n\
                     st_next = st;\n\
                     case (st)\n\
                       2'd0: begin if (go) st_next = 2'd1; end\n\
                       2'd1: begin st_next = 2'd2; end\n\
                       2'd2: begin st_next = 2'd3; end\n\
                       2'd3: begin st_next = 2'd0; end\n\
                     endcase\n\
                   end\n\
                   always @(posedge clk or posedge rst) begin\n\
                     if (rst) st <= 2'd0;\n\
                     else st <= st_next;\n\
                   end\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "Y001",
            name: "optimizer-removable key gate",
            kind: FixtureKind::Bench,
            // The key XOR drives nothing an output can see: the shadow
            // optimization pass sweeps the whole cone away.
            bad: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  dead = XOR(a, keyinput0)\n\
                  y = BUFF(a)\n",
            good: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   y = XOR(a, keyinput0)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "Y002",
            name: "unobservable key input",
            kind: FixtureKind::Bench,
            // Declared but never used: SCOAP observability is infinite.
            bad: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  y = BUFF(a)\n",
            good: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   y = XNOR(a, keyinput0)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "Y003",
            name: "value-indifferent key bit",
            kind: FixtureKind::Bench,
            // k OR ~k is a tautology: hardwiring the key to 0 and to 1
            // resynthesizes to the identical cone (y = a).
            bad: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  nk = NOT(keyinput0)\n\
                  t = OR(keyinput0, nk)\n\
                  y = AND(a, t)\n",
            good: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   y = XOR(a, keyinput0)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "C001",
            name: "key-to-scan-cell path",
            kind: FixtureKind::Bench,
            // The key bit is combinationally captured by a scanned flop:
            // one test-mode capture + shift-out leaks it.
            bad: "INPUT(d)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  t = XOR(d, keyinput0)\n\
                  q = DFF(t)\n\
                  y = BUFF(q)\n",
            // Key gate after the flop: the scan cell never sees the key.
            good: "INPUT(d)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   q = DFF(d)\n\
                   y = XOR(q, keyinput0)\n",
            full_scan: true,
        },
        LintFixture {
            rule: "C002",
            name: "key gate on a constant net",
            kind: FixtureKind::Verilog,
            // `c` is a wire the design drives to a constant — resynthesis
            // folds it away and exposes the key wire directly. A literal
            // constant mask (the good twin) is the legitimate XorMask
            // idiom and must stay unflagged.
            bad: "module sab(input a, input lock_key_0, output y);\n\
                  wire c;\n\
                  assign c = 1'b0;\n\
                  assign y = a ^ (c ^ lock_key_0);\nendmodule",
            good: "module mask(input a, input lock_key_0, output y);\n\
                   assign y = a ^ (lock_key_0 ^ 1'b1);\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "C003",
            name: "key cone in one scan segment",
            kind: FixtureKind::Bench,
            // Four scanned flops; the key cone touches only q1 — one
            // contiguous slice of the chain isolates it.
            bad: "INPUT(d)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  t1 = XOR(d, keyinput0)\n\
                  q0 = DFF(d)\n\
                  q1 = DFF(t1)\n\
                  q2 = DFF(q1)\n\
                  q3 = DFF(q2)\n\
                  y = AND(q0, q3)\n",
            // The cone touches q1 and q3: not contiguous on the chain.
            good: "INPUT(d)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   t1 = XOR(d, keyinput0)\n\
                   t3 = XNOR(q2, keyinput0)\n\
                   q0 = DFF(d)\n\
                   q1 = DFF(t1)\n\
                   q2 = DFF(q1)\n\
                   q3 = DFF(t3)\n\
                   y = AND(q0, q3)\n",
            full_scan: true,
        },
        LintFixture {
            rule: "C004",
            name: "dead lock point",
            kind: FixtureKind::Verilog,
            // The key gates a net no output can ever observe.
            bad: "module deadlock(input a, input lock_key_0, output y);\n\
                  wire dead;\n\
                  assign dead = a ^ lock_key_0;\n\
                  assign y = a;\nendmodule",
            good: "module livelock(input a, input lock_key_0, output y);\n\
                   assign y = a ^ lock_key_0;\nendmodule",
            full_scan: false,
        },
        LintFixture {
            rule: "K001",
            name: "scan-unreachable key bit",
            kind: FixtureKind::Bench,
            // Bad: the key cone dead-ends combinationally — no output and
            // no scan cell ever depends on the bit, so the whole cone is
            // removal-prunable. Good: the cone is captured by a scanned
            // flop and *only* observable there — a scan-blind analysis
            // (C004-style) would still call it dead, the scan-aware one
            // must not.
            bad: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  t = XOR(a, keyinput0)\n\
                  q = DFF(b)\n\
                  y = BUFF(q)\n",
            good: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   t = XOR(a, keyinput0)\n\
                   q = DFF(t)\n\
                   y = BUFF(b)\n",
            full_scan: true,
        },
        LintFixture {
            rule: "K002",
            name: "constant-foldable key gate",
            kind: FixtureKind::Bench,
            // `z = a ^ a` is identically 0, so `t = k & z` is provably
            // constant under every key and input valuation: the ternary
            // fixpoint (with same-operand identities) proves the key gate
            // carries no function at all.
            bad: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  z = XOR(a, a)\n\
                  t = AND(keyinput0, z)\n\
                  y = OR(b, t)\n",
            good: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   t = XOR(a, keyinput0)\n\
                   y = OR(b, t)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "K003",
            name: "key cone behind a constant mux select",
            kind: FixtureKind::Bench,
            // The mux select `s = b ^ b` is provably 0, so the key-tainted
            // branch `t` is never selected: the lock is bypassed wholesale.
            bad: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  s = XOR(b, b)\n\
                  t = XOR(a, keyinput0)\n\
                  y = MUX(s, a, t)\n",
            good: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   t = XOR(a, keyinput0)\n\
                   y = MUX(b, a, t)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "K004",
            name: "terminal key gate on an unobfuscated output",
            kind: FixtureKind::Bench,
            // The key XOR is the last gate before the output and the rest
            // of the cone is key-free: an attacker peels the single gate.
            // Burying the key gate one level deeper is enough to silence
            // the rule.
            bad: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  t = AND(a, b)\n\
                  y = XOR(t, keyinput0)\n",
            good: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   t = XOR(a, keyinput0)\n\
                   y = AND(t, b)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "K005",
            name: "dead locked logic",
            kind: FixtureKind::Bench,
            // A key-tainted gate outside the live set: resynthesis sweeps
            // the locked cone (and the key bit) away.
            bad: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                  dead = XNOR(a, keyinput0)\n\
                  y = NOT(a)\n",
            good: "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\n\
                   y = XNOR(a, keyinput0)\n",
            full_scan: false,
        },
        LintFixture {
            rule: "K006",
            name: "taint-disjoint key partitions",
            kind: FixtureKind::Bench,
            // Two key bits with disjoint observable cones: each is
            // attackable on its own output, halving the effective key
            // space. Entangling both bits in one cone silences the rule.
            bad: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nINPUT(keyinput1)\n\
                  OUTPUT(y0)\nOUTPUT(y1)\n\
                  y0 = XOR(a, keyinput0)\n\
                  y1 = XOR(b, keyinput1)\n",
            good: "INPUT(a)\nINPUT(b)\nINPUT(keyinput0)\nINPUT(keyinput1)\n\
                   OUTPUT(y0)\nOUTPUT(y1)\n\
                   t = XOR(a, keyinput0)\n\
                   y0 = XOR(t, keyinput1)\n\
                   y1 = XOR(y0, b)\n",
            full_scan: false,
        },
    ]
}
