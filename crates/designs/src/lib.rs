//! Benchmark RTL designs for the RTLock evaluation (Table II).
//!
//! Six designs spanning small control-dominated circuits to large crypto
//! datapaths:
//!
//! | name | character | paper counterpart |
//! |------|-----------|-------------------|
//! | `b05` | FSM + ROM scan | ITC'99 b05 analogue |
//! | `b14` | 32-bit accumulator CPU with multiplier | ITC'99 b14 analogue |
//! | `b15` | fetch/decode pipeline + register file | ITC'99 b15 analogue |
//! | `sha1` | SHA-1 compression core | SHA1 |
//! | `aes128` | AES-128 with case-statement S-boxes | AES |
//! | `fibo` | Fibonacci engine | Fibo. |
//!
//! The ITC'99 originals are not redistributable, so b05/b14/b15 are
//! re-implementations matching the published size/character (see
//! DESIGN.md §S14). SHA-1 and AES-128 are functionally verified against
//! software references in this crate's tests.
//!
//! # Examples
//!
//! ```
//! let bench = rtlock_designs::catalog();
//! assert_eq!(bench.len(), 6);
//! let aes = rtlock_designs::by_name("aes128").expect("exists");
//! let module = aes.module().expect("parses");
//! assert_eq!(module.name, "aes128");
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod b05;
pub mod b14;
pub mod b15;
pub mod fibo;
pub mod lint_fixtures;
pub mod sha1;

pub use lint_fixtures::{lint_fixtures, FixtureKind, LintFixture};

use rtlock_rtl::{parse, Module, ParseError};

/// A named benchmark design.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Design name (also the Verilog module name).
    pub name: &'static str,
    /// Verilog source.
    pub source: String,
}

impl Benchmark {
    /// Parses the source into the RTL IR.
    ///
    /// # Errors
    ///
    /// Propagates parser errors (should not happen for shipped designs;
    /// covered by tests).
    pub fn module(&self) -> Result<Module, ParseError> {
        parse(&self.source)
    }
}

/// All six benchmarks, smallest first.
pub fn catalog() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "b05", source: b05::source() },
        Benchmark { name: "fibo", source: fibo::source() },
        Benchmark { name: "b14", source: b14::source() },
        Benchmark { name: "b15", source: b15::source() },
        Benchmark { name: "sha1", source: sha1::source() },
        Benchmark { name: "aes128", source: aes::source() },
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    catalog().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_parse() {
        for b in catalog() {
            let m = b.module().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(m.name, b.name);
            assert!(!m.inputs().is_empty());
            assert!(!m.outputs().is_empty());
        }
    }

    #[test]
    fn by_name_round_trips() {
        for b in catalog() {
            assert_eq!(by_name(b.name).unwrap().name, b.name);
        }
        assert!(by_name("nonexistent").is_none());
    }
}
