//! SHA-1 compression core ("SHA1" in Table II).
//!
//! Single 512-bit block per `start`, one round per clock (80 rounds), with
//! the message schedule kept in a 512-bit shifting window. Matches the
//! paper's SHA1 benchmark shape: ~516 primary inputs, ~162 outputs,
//! hundreds of flops.

/// Verilog source of the SHA-1 core.
pub fn source() -> String {
    r#"
module sha1(
  input clk,
  input rst,
  input start,
  input [511:0] block,
  output [159:0] digest,
  output reg ready,
  output busy
);
  localparam [1:0] H_IDLE = 2'd0, H_ROUND = 2'd1, H_FINAL = 2'd2;

  reg [1:0] hstate;
  reg [1:0] hstate_next;
  reg [31:0] h0;
  reg [31:0] h1;
  reg [31:0] h2;
  reg [31:0] h3;
  reg [31:0] h4;
  reg [31:0] a;
  reg [31:0] b;
  reg [31:0] c;
  reg [31:0] d;
  reg [31:0] e;
  reg [511:0] w;
  reg [6:0] t;

  wire [31:0] wt;
  wire [31:0] wx;
  wire [31:0] wnew;
  reg [31:0] f;
  reg [31:0] k;
  wire [31:0] temp;

  assign busy = hstate != H_IDLE;
  assign digest = {h0, h1, h2, h3, h4};

  // Current schedule word and the new word W[t+16].
  assign wt = w[511:480];
  assign wx = w[95:64] ^ w[255:224] ^ w[447:416] ^ w[511:480];
  assign wnew = {wx[30:0], wx[31]};

  always @(*) begin
    if (t < 7'd20) begin
      f = (b & c) | (~b & d);
      k = 32'h5A827999;
    end else begin
      if (t < 7'd40) begin
        f = b ^ c ^ d;
        k = 32'h6ED9EBA1;
      end else begin
        if (t < 7'd60) begin
          f = (b & c) | (b & d) | (c & d);
          k = 32'h8F1BBCDC;
        end else begin
          f = b ^ c ^ d;
          k = 32'hCA62C1D6;
        end
      end
    end
  end

  assign temp = {a[26:0], a[31:27]} + f + e + k + wt;

  always @(*) begin
    hstate_next = hstate;
    case (hstate)
      H_IDLE: begin
        if (start) hstate_next = H_ROUND;
      end
      H_ROUND: begin
        if (t == 7'd79) hstate_next = H_FINAL;
      end
      H_FINAL: begin
        hstate_next = H_IDLE;
      end
      default: begin
        hstate_next = H_IDLE;
      end
    endcase
  end

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      hstate <= 2'd0;
      h0 <= 32'h67452301;
      h1 <= 32'hEFCDAB89;
      h2 <= 32'h98BADCFE;
      h3 <= 32'h10325476;
      h4 <= 32'hC3D2E1F0;
      a <= 32'd0;
      b <= 32'd0;
      c <= 32'd0;
      d <= 32'd0;
      e <= 32'd0;
      w <= 512'd0;
      t <= 7'd0;
      ready <= 1'b0;
    end else begin
      hstate <= hstate_next;
      if (hstate == H_IDLE) begin
        if (start) begin
          h0 <= 32'h67452301;
          h1 <= 32'hEFCDAB89;
          h2 <= 32'h98BADCFE;
          h3 <= 32'h10325476;
          h4 <= 32'hC3D2E1F0;
          a <= 32'h67452301;
          b <= 32'hEFCDAB89;
          c <= 32'h98BADCFE;
          d <= 32'h10325476;
          e <= 32'hC3D2E1F0;
          w <= block;
          t <= 7'd0;
          ready <= 1'b0;
        end
      end
      if (hstate == H_ROUND) begin
        a <= temp;
        b <= a;
        c <= {b[1:0], b[31:2]};
        d <= c;
        e <= d;
        w <= {w[479:0], wnew};
        t <= t + 7'd1;
      end
      if (hstate == H_FINAL) begin
        h0 <= h0 + a;
        h1 <= h1 + b;
        h2 <= h2 + c;
        h3 <= h3 + d;
        h4 <= h4 + e;
        ready <= 1'b1;
      end
    end
  end
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    /// Reference software SHA-1 (single padded block).
    fn sha1_block(block: &[u8; 64]) -> [u32; 5] {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let mut h = [0x67452301u32, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        let [mut a, mut b, mut c, mut d, mut e] = h;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h
    }

    fn pad_short_message(msg: &[u8]) -> [u8; 64] {
        assert!(msg.len() < 56);
        let mut block = [0u8; 64];
        block[..msg.len()].copy_from_slice(msg);
        block[msg.len()] = 0x80;
        block[56..].copy_from_slice(&(msg.len() as u64 * 8).to_be_bytes());
        block
    }

    fn block_to_bv(block: &[u8; 64]) -> Bv {
        // block[0] ends up in bits [511:504] (big-endian into the port).
        let mut v = Bv::zeros(512);
        for (byte_idx, &byte) in block.iter().enumerate() {
            for bit in 0..8 {
                if byte >> (7 - bit) & 1 == 1 {
                    v.set(511 - (byte_idx * 8 + bit), true);
                }
            }
        }
        v
    }

    fn hw_digest(block: &[u8; 64]) -> [u32; 5] {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_by_name("rst", Bv::from_bool(true));
        sim.reset().unwrap();
        sim.set_by_name("rst", Bv::from_bool(false));
        sim.set_by_name("block", block_to_bv(block));
        sim.set_by_name("start", Bv::from_bool(true));
        sim.step().unwrap();
        sim.set_by_name("start", Bv::from_bool(false));
        for _ in 0..90 {
            sim.step().unwrap();
            if sim.get_by_name("ready").to_u64_lossy() == 1 {
                break;
            }
        }
        assert_eq!(sim.get_by_name("ready").to_u64_lossy(), 1, "core finished");
        let digest = sim.get_by_name("digest");
        let mut out = [0u32; 5];
        for (i, o) in out.iter_mut().enumerate() {
            *o = digest.slice(159 - 32 * i, 128 - 32 * i).to_u64_lossy() as u32;
        }
        out
    }

    #[test]
    fn hashes_abc_correctly() {
        let block = pad_short_message(b"abc");
        let expect = sha1_block(&block);
        assert_eq!(
            expect,
            [0xa9993e36, 0x4706816a, 0xba3e2571, 0x7850c26c, 0x9cd0d89d],
            "software reference sanity"
        );
        assert_eq!(hw_digest(&block), expect);
    }

    #[test]
    fn hashes_empty_message() {
        let block = pad_short_message(b"");
        assert_eq!(hw_digest(&block), sha1_block(&block));
    }

    #[test]
    fn hashes_longer_message() {
        let block = pad_short_message(b"The quick brown fox jumps over the lazy d");
        assert_eq!(hw_digest(&block), sha1_block(&block));
    }
}
