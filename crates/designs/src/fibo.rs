//! Fibonacci sequence engine ("Fibo." in Table II).
//!
//! Computes F(n) for an 8-bit `n` with a 3-state control FSM and a 64-bit
//! datapath, plus running checksum outputs to widen the observable surface
//! (the paper's Fibo has 91 outputs).

/// Verilog source of the Fibonacci engine.
pub fn source() -> String {
    r#"
module fibo(
  input clk,
  input rst,
  input start,
  input [7:0] n,
  output reg [63:0] fib,
  output reg [15:0] checksum,
  output reg [7:0] steps,
  output reg ready,
  output overflow
);
  localparam [1:0] S_IDLE = 2'd0, S_RUN = 2'd1, S_DONE = 2'd2;

  reg [1:0] state;
  reg [1:0] state_next;
  reg [63:0] a;
  reg [63:0] b;
  reg [7:0] count;

  assign overflow = a[63] & b[63];

  always @(*) begin
    state_next = state;
    case (state)
      S_IDLE: begin
        if (start) state_next = S_RUN;
      end
      S_RUN: begin
        if (count == 8'd0) state_next = S_DONE;
      end
      S_DONE: begin
        state_next = S_IDLE;
      end
      default: begin
        state_next = S_IDLE;
      end
    endcase
  end

  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      a <= 64'd0;
      b <= 64'd1;
      count <= 8'd0;
      fib <= 64'd0;
      checksum <= 16'd0;
      steps <= 8'd0;
      ready <= 1'b0;
    end else begin
      state <= state_next;
      if (state == S_IDLE) begin
        ready <= 1'b0;
        if (start) begin
          a <= 64'd0;
          b <= 64'd1;
          count <= n;
          checksum <= 16'd0;
          steps <= 8'd0;
        end
      end
      if (state == S_RUN) begin
        if (count != 8'd0) begin
          a <= b;
          b <= a + b;
          count <= count - 8'd1;
          checksum <= checksum + a[15:0];
          steps <= steps + 8'd1;
        end
      end
      if (state == S_DONE) begin
        fib <= a;
        ready <= 1'b1;
      end
    end
  end
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_rtl::{parse, sim::Simulator, Bv};

    #[test]
    fn computes_fibonacci_numbers() {
        let m = parse(&source()).unwrap();
        let mut sim = Simulator::new(&m);
        for (n, expect) in [(0u64, 0u64), (1, 1), (2, 1), (3, 2), (10, 55), (20, 6765)] {
            sim.set_by_name("rst", Bv::from_bool(true));
            sim.reset().unwrap();
            sim.set_by_name("rst", Bv::from_bool(false));
            sim.set_by_name("n", Bv::from_u64(8, n));
            sim.set_by_name("start", Bv::from_bool(true));
            sim.step().unwrap();
            sim.set_by_name("start", Bv::from_bool(false));
            let mut seen_ready = false;
            for _ in 0..(n + 8) {
                sim.step().unwrap();
                if sim.get_by_name("ready").to_u64_lossy() == 1 {
                    seen_ready = true;
                    break;
                }
            }
            assert!(seen_ready, "n={n} never became ready");
            assert_eq!(sim.get_by_name("fib").to_u64_lossy(), expect, "F({n})");
        }
    }

    #[test]
    fn has_an_extractable_fsm() {
        let m = parse(&source()).unwrap();
        let fsms = rtlock_rtl::fsm::extract(&m);
        assert_eq!(fsms.len(), 1);
        assert_eq!(fsms[0].states.len(), 3);
    }
}
