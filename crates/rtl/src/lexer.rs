//! Tokenizer for the synthesizable Verilog subset accepted by the parser.

use std::fmt;

/// A lexical token with its source position (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token's first character.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Unsized decimal number (e.g. `42`).
    Number(u64),
    /// Sized literal `<width>'<base><digits>` (e.g. `8'hFF`).
    Sized {
        /// Declared width.
        width: usize,
        /// Base character: `b`, `h`, `d`, or `o`.
        base: char,
        /// Digit text (underscores removed).
        digits: String,
    },
    /// A punctuation or operator symbol such as `(`, `<=`, `&&`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Sized { width, base, digits } => write!(f, "literal `{width}'{base}{digits}`"),
            TokenKind::Symbol(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Error produced when the input contains characters outside the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

const SYMBOLS: &[&str] = &[
    // Longest first so greedy matching is correct.
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~^", "^~", "@(", "(", ")", "[", "]", "{", "}", ",", ";", ":",
    "?", "=", "+", "-", "*", "&", "|", "^", "~", "!", "<", ">", "@", ".",
];

/// Tokenizes Verilog source.
///
/// Line (`//`) and block (`/* */`) comments are skipped. Numbers may contain
/// underscores.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or characters outside the
/// accepted subset.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_start = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let col = i - line_start + 1;
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError { message: "unterminated block comment".into(), line, col });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '`' || c == '\\' {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.push(Token { kind: TokenKind::Ident(text.trim_start_matches(['`', '\\']).to_string()), line, col });
            continue;
        }
        // Numbers (possibly sized).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                i += 1;
            }
            let num_text: String = bytes[start..i].iter().filter(|&&c| c != '_').collect();
            if i < bytes.len() && bytes[i] == '\'' {
                i += 1;
                if i >= bytes.len() {
                    return Err(LexError { message: "truncated sized literal".into(), line, col });
                }
                let base = bytes[i].to_ascii_lowercase();
                if !matches!(base, 'b' | 'h' | 'd' | 'o') {
                    return Err(LexError { message: format!("unsupported literal base `{base}`"), line, col });
                }
                i += 1;
                let dstart = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let digits: String = bytes[dstart..i].iter().filter(|&&c| c != '_').collect();
                if digits.is_empty() {
                    return Err(LexError { message: "sized literal has no digits".into(), line, col });
                }
                let width: usize = num_text
                    .parse()
                    .map_err(|_| LexError { message: format!("bad literal width `{num_text}`"), line, col })?;
                if width == 0 {
                    return Err(LexError { message: "zero-width literal".into(), line, col });
                }
                out.push(Token { kind: TokenKind::Sized { width, base, digits }, line, col });
            } else {
                let value: u64 = num_text
                    .parse()
                    .map_err(|_| LexError { message: format!("bad number `{num_text}`"), line, col })?;
                out.push(Token { kind: TokenKind::Number(value), line, col });
            }
            continue;
        }
        // Symbols, longest match first.
        let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let mut matched = None;
        for sym in SYMBOLS {
            if rest.starts_with(sym) {
                matched = Some(*sym);
                break;
            }
        }
        match matched {
            Some(sym) => {
                // `@(` is split back into `@` + `(` for simpler parsing.
                if sym == "@(" {
                    out.push(Token { kind: TokenKind::Symbol("@"), line, col });
                    out.push(Token { kind: TokenKind::Symbol("("), line, col: col + 1 });
                } else {
                    out.push(Token { kind: TokenKind::Symbol(sym), line, col });
                }
                i += sym.len();
            }
            None => {
                return Err(LexError { message: format!("unexpected character `{c}`"), line, col });
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line, col: bytes.len() - line_start + 1 });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_symbols() {
        let ks = kinds("assign y = a + 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("assign".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Symbol("="),
                TokenKind::Ident("a".into()),
                TokenKind::Symbol("+"),
                TokenKind::Number(42),
                TokenKind::Symbol(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn sized_literals() {
        let ks = kinds("8'hFF 4'b1010 10'd100");
        assert_eq!(ks[0], TokenKind::Sized { width: 8, base: 'h', digits: "FF".into() });
        assert_eq!(ks[1], TokenKind::Sized { width: 4, base: 'b', digits: "1010".into() });
        assert_eq!(ks[2], TokenKind::Sized { width: 10, base: 'd', digits: "100".into() });
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(kinds("1_000")[0], TokenKind::Number(1000));
        assert_eq!(kinds("16'hDE_AD")[0], TokenKind::Sized { width: 16, base: 'h', digits: "DEAD".into() });
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n/* block\nspanning */ b");
        assert_eq!(ks, vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]);
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        let ks = kinds("a <= b << 2");
        assert!(ks.contains(&TokenKind::Symbol("<=")));
        assert!(ks.contains(&TokenKind::Symbol("<<")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("8'q12").is_err());
        assert!(tokenize("0'b1").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
