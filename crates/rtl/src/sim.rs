//! Cycle-accurate two-state simulator for the RTL IR.
//!
//! The simulator is the *oracle* of the oracle-guided threat model: attacks
//! query it with input patterns and observe outputs. It is also used by the
//! RTLock verification step (step 6 of the flow) to check functional
//! equivalence under the correct key and output corruption under wrong keys.
//!
//! Semantics: registers assigned in clocked processes hold state across
//! [`Simulator::step`]; all other nets are recomputed to a combinational
//! fixpoint each evaluation. Clocked processes use non-blocking assignment
//! semantics, combinational processes blocking semantics.

use crate::ast::*;
use crate::bv::Bv;
use std::collections::HashMap;
use std::fmt;

/// Error raised when combinational logic does not reach a fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombLoopError {
    /// Name of a net still changing when the iteration budget ran out.
    pub net: String,
}

impl fmt::Display for CombLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational loop involving net `{}`", self.net)
    }
}

impl std::error::Error for CombLoopError {}

/// Interpreter state for one module.
///
/// # Examples
///
/// ```
/// use rtlock_rtl::{parse, sim::Simulator, bv::Bv};
///
/// let m = parse("module t(input [3:0] a, output [3:0] y); assign y = a + 4'd1; endmodule")?;
/// let mut sim = Simulator::new(&m);
/// sim.set_by_name("a", Bv::from_u64(4, 6));
/// sim.settle()?;
/// assert_eq!(sim.get_by_name("y"), Bv::from_u64(4, 7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    module: &'m Module,
    values: Vec<Bv>,
    /// Nets that behave as state (assigned by clocked processes).
    state_nets: Vec<bool>,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator with all nets zeroed.
    pub fn new(module: &'m Module) -> Self {
        let values = module.nets.iter().map(|n| Bv::zeros(n.width)).collect();
        let mut state_nets = vec![false; module.nets.len()];
        for p in &module.procs {
            if matches!(p.kind, ProcessKind::Seq { .. }) {
                mark_assigned(&p.body, &mut state_nets);
                mark_assigned(&p.reset_body, &mut state_nets);
            }
        }
        Simulator { module, values, state_nets }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// `true` if `net` holds sequential state.
    pub fn is_state(&self, net: NetId) -> bool {
        self.state_nets[net.index()]
    }

    /// Sets a net's current value (typically an input).
    ///
    /// # Panics
    ///
    /// Panics if the value width does not match the net width.
    pub fn set(&mut self, net: NetId, value: Bv) {
        assert_eq!(value.width(), self.module.width(net), "width mismatch setting {}", self.module.net(net).name);
        self.values[net.index()] = value;
    }

    /// Sets a net by name.
    ///
    /// # Panics
    ///
    /// Panics if no net has that name or on width mismatch.
    pub fn set_by_name(&mut self, name: &str, value: Bv) {
        let id = self.module.find_net(name).unwrap_or_else(|| panic!("no net named `{name}`"));
        self.set(id, value);
    }

    /// Reads a net's current value.
    pub fn get(&self, net: NetId) -> &Bv {
        &self.values[net.index()]
    }

    /// Reads a net by name.
    ///
    /// # Panics
    ///
    /// Panics if no net has that name.
    pub fn get_by_name(&self, name: &str) -> Bv {
        let id = self.module.find_net(name).unwrap_or_else(|| panic!("no net named `{name}`"));
        self.values[id.index()].clone()
    }

    /// Applies every clocked process's reset body and settles combinational
    /// logic. Call once before a simulation run.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if combinational logic oscillates.
    pub fn reset(&mut self) -> Result<(), CombLoopError> {
        for p in &self.module.procs {
            if let ProcessKind::Seq { .. } = p.kind {
                let mut staged = Vec::new();
                self.exec_nonblocking(&p.reset_body, &mut staged);
                for (lv, v) in staged {
                    self.write_lvalue(&lv, v);
                }
            }
        }
        self.settle()
    }

    /// Recomputes combinational nets to a fixpoint with current inputs and
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if no fixpoint is reached within the
    /// iteration budget (2 + number of nets).
    pub fn settle(&mut self) -> Result<(), CombLoopError> {
        let budget = self.module.nets.len() + 2;
        for _ in 0..budget {
            let before = self.values.clone();
            for a in &self.module.assigns {
                let v = self.eval(&a.rhs);
                self.write_lvalue(&a.lhs, v);
            }
            for p in &self.module.procs {
                if matches!(p.kind, ProcessKind::Comb) {
                    self.exec_blocking(&p.body);
                }
            }
            if self.values == before {
                return Ok(());
            }
        }
        let net = self
            .module
            .nets
            .iter()
            .enumerate()
            .find(|(i, _)| !self.state_nets[*i])
            .map(|(_, n)| n.name.clone())
            .unwrap_or_default();
        Err(CombLoopError { net })
    }

    /// Advances one clock cycle: settles, evaluates clocked processes with
    /// non-blocking semantics, commits state, settles again.
    ///
    /// Reset nets referenced by [`ResetSpec`]s are honored: when a process's
    /// reset is active, its reset body is applied instead of its main body.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if combinational logic oscillates.
    pub fn step(&mut self) -> Result<(), CombLoopError> {
        self.settle()?;
        let mut staged = Vec::new();
        for p in &self.module.procs {
            if let ProcessKind::Seq { reset, .. } = &p.kind {
                let in_reset = reset.as_ref().is_some_and(|r| {
                    let v = self.values[r.net.index()].reduce_or();
                    v == r.active_high
                });
                if in_reset {
                    self.exec_nonblocking(&p.reset_body, &mut staged);
                } else {
                    self.exec_nonblocking(&p.body, &mut staged);
                }
            }
        }
        for (lv, v) in staged {
            self.write_lvalue(&lv, v);
        }
        self.settle()
    }

    /// Runs a whole input trace: for each cycle, applies the input map,
    /// steps the clock, and records the listed outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CombLoopError`] if combinational logic oscillates.
    pub fn run_trace(
        &mut self,
        trace: &[HashMap<NetId, Bv>],
        observe: &[NetId],
    ) -> Result<Vec<Vec<Bv>>, CombLoopError> {
        let mut out = Vec::with_capacity(trace.len());
        for cycle in trace {
            for (&net, v) in cycle {
                self.set(net, v.clone());
            }
            self.step()?;
            out.push(observe.iter().map(|&o| self.values[o.index()].clone()).collect());
        }
        Ok(out)
    }

    fn write_lvalue(&mut self, lv: &Lvalue, value: Bv) {
        let w = self.module.width(lv.net);
        match lv.range {
            None => {
                self.values[lv.net.index()] = value.resize(w);
            }
            Some((hi, lo)) => {
                let v = value.resize(hi - lo + 1);
                let slot = &mut self.values[lv.net.index()];
                for i in lo..=hi {
                    let bit = v.bit(i - lo);
                    slot.set(i, bit);
                }
            }
        }
    }

    fn exec_blocking(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    let v = self.eval(rhs);
                    self.write_lvalue(lhs, v);
                }
                Stmt::If { cond, then_, else_ } => {
                    if self.eval(cond).reduce_or() {
                        self.exec_blocking(then_);
                    } else {
                        self.exec_blocking(else_);
                    }
                }
                Stmt::Case { subject, arms, default } => {
                    let subj = self.eval(subject);
                    let arm = arms.iter().find(|a| a.labels.iter().any(|l| l.resize(subj.width()) == subj));
                    match arm {
                        Some(a) => self.exec_blocking(&a.body),
                        None => self.exec_blocking(default),
                    }
                }
            }
        }
    }

    fn exec_nonblocking(&self, stmts: &[Stmt], staged: &mut Vec<(Lvalue, Bv)>) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    staged.push((lhs.clone(), self.eval(rhs)));
                }
                Stmt::If { cond, then_, else_ } => {
                    if self.eval(cond).reduce_or() {
                        self.exec_nonblocking(then_, staged);
                    } else {
                        self.exec_nonblocking(else_, staged);
                    }
                }
                Stmt::Case { subject, arms, default } => {
                    let subj = self.eval(subject);
                    let arm = arms.iter().find(|a| a.labels.iter().any(|l| l.resize(subj.width()) == subj));
                    match arm {
                        Some(a) => self.exec_nonblocking(&a.body, staged),
                        None => self.exec_nonblocking(default, staged),
                    }
                }
            }
        }
    }

    /// Evaluates an expression against current net values.
    pub fn eval(&self, e: &Expr) -> Bv {
        match e {
            Expr::Const(c) => c.clone(),
            Expr::Ref(n) => self.values[n.index()].clone(),
            Expr::Slice { net, hi, lo } => self.values[net.index()].slice(*hi, *lo),
            Expr::IndexDyn { net, index } => {
                let idx = self.eval(index).to_u64_lossy() as usize;
                let v = &self.values[net.index()];
                if idx < v.width() {
                    Bv::from_bool(v.bit(idx))
                } else {
                    Bv::zeros(1)
                }
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg);
                match op {
                    UnaryOp::Not => a.not(),
                    UnaryOp::LogicNot => Bv::from_bool(!a.reduce_or()),
                    UnaryOp::Neg => a.neg(),
                    UnaryOp::RedAnd => Bv::from_bool(a.reduce_and()),
                    UnaryOp::RedOr => Bv::from_bool(a.reduce_or()),
                    UnaryOp::RedXor => Bv::from_bool(a.reduce_xor()),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                let w = a.width().max(b.width());
                let (a, b) = (a.resize(w), b.resize(w));
                match op {
                    BinaryOp::And => a.and(&b),
                    BinaryOp::Or => a.or(&b),
                    BinaryOp::Xor => a.xor(&b),
                    BinaryOp::Xnor => a.xor(&b).not(),
                    BinaryOp::Add => a.add(&b),
                    BinaryOp::Sub => a.sub(&b),
                    BinaryOp::Mul => a.mul(&b),
                    BinaryOp::Shl => a.shl(b.to_u64_lossy().min(w as u64) as usize),
                    BinaryOp::Shr => a.shr(b.to_u64_lossy().min(w as u64) as usize),
                    BinaryOp::Eq => Bv::from_bool(a == b),
                    BinaryOp::Ne => Bv::from_bool(a != b),
                    BinaryOp::Lt => Bv::from_bool(a.ult(&b)),
                    BinaryOp::Le => Bv::from_bool(!b.ult(&a)),
                    BinaryOp::Gt => Bv::from_bool(b.ult(&a)),
                    BinaryOp::Ge => Bv::from_bool(!a.ult(&b)),
                    BinaryOp::LogicAnd => Bv::from_bool(a.reduce_or() && b.reduce_or()),
                    BinaryOp::LogicOr => Bv::from_bool(a.reduce_or() || b.reduce_or()),
                }
            }
            Expr::Ternary { cond, then_, else_ } => {
                let t = self.eval(then_);
                let f = self.eval(else_);
                let w = t.width().max(f.width());
                if self.eval(cond).reduce_or() {
                    t.resize(w)
                } else {
                    f.resize(w)
                }
            }
            Expr::Concat(parts) => {
                let vals: Vec<Bv> = parts.iter().map(|p| self.eval(p)).collect();
                let mut it = vals.into_iter();
                let first = it.next().expect("concat is non-empty");
                it.fold(first, |acc, v| acc.concat(&v))
            }
            Expr::Repeat { times, expr } => self.eval(expr).repeat(*times),
        }
    }
}

fn mark_assigned(stmts: &[Stmt], flags: &mut Vec<bool>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, .. } => flags[lhs.net.index()] = true,
            Stmt::If { then_, else_, .. } => {
                mark_assigned(then_, flags);
                mark_assigned(else_, flags);
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    mark_assigned(&a.body, flags);
                }
                mark_assigned(default, flags);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn combinational_add() {
        let m =
            parse("module t(input [7:0] a, input [7:0] b, output [7:0] y); assign y = a + b; endmodule").unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("a", Bv::from_u64(8, 250));
        s.set_by_name("b", Bv::from_u64(8, 10));
        s.settle().unwrap();
        assert_eq!(s.get_by_name("y"), Bv::from_u64(8, 4));
    }

    #[test]
    fn chained_assigns_reach_fixpoint() {
        let m = parse(
            "module t(input a, output y); wire w1; wire w2; assign w2 = ~w1; assign w1 = a; assign y = w2; endmodule",
        )
        .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("a", Bv::from_bool(true));
        s.settle().unwrap();
        assert_eq!(s.get_by_name("y"), Bv::from_bool(false));
    }

    #[test]
    fn comb_loop_detected() {
        let m = parse("module t(output y); wire w; assign w = ~w; assign y = w; endmodule").unwrap();
        let mut s = Simulator::new(&m);
        assert!(s.settle().is_err());
    }

    #[test]
    fn counter_counts() {
        let m = parse(
            "module t(input clk, input rst, output reg [3:0] q);\n\
             always @(posedge clk or posedge rst) begin if (rst) q <= 4'd0; else q <= q + 4'd1; end\nendmodule",
        )
        .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("rst", Bv::from_bool(true));
        s.reset().unwrap();
        s.step().unwrap();
        assert_eq!(s.get_by_name("q"), Bv::from_u64(4, 0), "held in reset");
        s.set_by_name("rst", Bv::from_bool(false));
        for _ in 0..5 {
            s.step().unwrap();
        }
        assert_eq!(s.get_by_name("q"), Bv::from_u64(4, 5));
    }

    #[test]
    fn nonblocking_swaps() {
        let m = parse(
            "module t(input clk, output reg a, output reg b);\n\
             always @(posedge clk) begin a <= b; b <= a; end\nendmodule",
        )
        .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("a", Bv::from_bool(true));
        s.set_by_name("b", Bv::from_bool(false));
        s.step().unwrap();
        assert_eq!(s.get_by_name("a"), Bv::from_bool(false));
        assert_eq!(s.get_by_name("b"), Bv::from_bool(true));
    }

    #[test]
    fn fsm_walks_states() {
        let m = parse(
            "module t(input clk, input rst, input go, output reg [1:0] s);\n\
             reg [1:0] s_next;\n\
             always @(*) begin\n\
               s_next = s;\n\
               case (s)\n\
                 2'd0: begin if (go) s_next = 2'd1; end\n\
                 2'd1: begin s_next = 2'd2; end\n\
                 2'd2: begin s_next = 2'd0; end\n\
               endcase\n\
             end\n\
             always @(posedge clk or posedge rst) begin if (rst) s <= 2'd0; else s <= s_next; end\nendmodule",
        )
        .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("rst", Bv::from_bool(true));
        s.reset().unwrap();
        s.set_by_name("rst", Bv::from_bool(false));
        s.set_by_name("go", Bv::from_bool(false));
        s.step().unwrap();
        assert_eq!(s.get_by_name("s"), Bv::from_u64(2, 0), "stays without go");
        s.set_by_name("go", Bv::from_bool(true));
        s.step().unwrap();
        assert_eq!(s.get_by_name("s"), Bv::from_u64(2, 1));
        s.step().unwrap();
        assert_eq!(s.get_by_name("s"), Bv::from_u64(2, 2));
        s.step().unwrap();
        assert_eq!(s.get_by_name("s"), Bv::from_u64(2, 0));
    }

    #[test]
    fn part_select_assignment() {
        let m = parse(
            "module t(input [1:0] a, output [3:0] y); assign y[1:0] = a; assign y[3:2] = ~a; endmodule",
        )
        .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("a", Bv::from_u64(2, 0b01));
        s.settle().unwrap();
        assert_eq!(s.get_by_name("y"), Bv::from_u64(4, 0b1001));
    }

    #[test]
    fn dynamic_index_reads_selected_bit() {
        let m = parse("module t(input [7:0] a, input [2:0] i, output y); assign y = a[i]; endmodule").unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("a", Bv::from_u64(8, 0b0010_0000));
        s.set_by_name("i", Bv::from_u64(3, 5));
        s.settle().unwrap();
        assert_eq!(s.get_by_name("y"), Bv::from_bool(true));
    }

    #[test]
    fn run_trace_records_outputs() {
        let m = parse(
            "module t(input clk, input rst, input d, output reg q);\n\
             always @(posedge clk or posedge rst) begin if (rst) q <= 1'b0; else q <= d; end\nendmodule",
        )
        .unwrap();
        let d = m.find_net("d").unwrap();
        let rst = m.find_net("rst").unwrap();
        let q = m.find_net("q").unwrap();
        let mut s = Simulator::new(&m);
        s.reset().unwrap();
        let mk = |dv: bool, rv: bool| {
            let mut h = HashMap::new();
            h.insert(d, Bv::from_bool(dv));
            h.insert(rst, Bv::from_bool(rv));
            h
        };
        let trace = vec![mk(true, false), mk(false, false), mk(true, true)];
        let outs = s.run_trace(&trace, &[q]).unwrap();
        assert_eq!(outs[0][0], Bv::from_bool(true));
        assert_eq!(outs[1][0], Bv::from_bool(false));
        assert_eq!(outs[2][0], Bv::from_bool(false), "reset wins");
    }

    #[test]
    fn ternary_width_balancing() {
        let m = parse("module t(input c, input [3:0] a, output [3:0] y); assign y = c ? a : 1'b1; endmodule")
            .unwrap();
        let mut s = Simulator::new(&m);
        s.set_by_name("c", Bv::from_bool(false));
        s.set_by_name("a", Bv::from_u64(4, 9));
        s.settle().unwrap();
        assert_eq!(s.get_by_name("y"), Bv::from_u64(4, 1));
    }
}
