//! Arbitrary-width two-state bit vectors.
//!
//! [`Bv`] is the value type used throughout the RTL simulator and the
//! synthesis front end: a fixed-width vector of bits stored little-endian in
//! `u64` limbs. Widths are explicit and all operations are width-checked so
//! that RTL semantics (truncation, zero-extension) are applied deliberately
//! at call sites rather than by accident.
//!
//! # Examples
//!
//! ```
//! use rtlock_rtl::bv::Bv;
//!
//! let a = Bv::from_u64(8, 0xF0);
//! let b = Bv::from_u64(8, 0x0F);
//! assert_eq!(a.or(&b), Bv::from_u64(8, 0xFF));
//! assert_eq!(a.add(&b), Bv::from_u64(8, 0xFF));
//! assert_eq!(format!("{}", Bv::from_u64(4, 0b1010)), "4'b1010");
//! ```

use std::fmt;

/// A fixed-width two-state bit vector (no X/Z states).
///
/// Bit 0 is the least significant bit. Unused high bits of the top limb are
/// always kept zero (a normalized representation), so equality and hashing
/// are structural.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: usize,
    limbs: Vec<u64>,
}

fn limbs_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

impl Bv {
    /// All-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "bit vector width must be positive");
        Bv { width, limbs: vec![0; limbs_for(width)] }
    }

    /// All-one vector of the given width.
    pub fn ones(width: usize) -> Self {
        let mut v = Bv::zeros(width);
        for l in &mut v.limbs {
            *l = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Builds a vector from the low `width` bits of `value`.
    ///
    /// Values wider than `width` are truncated.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut v = Bv::zeros(width);
        v.limbs[0] = value;
        v.normalize();
        v
    }

    /// Builds a one-bit vector from a boolean.
    pub fn from_bool(value: bool) -> Self {
        Bv::from_u64(1, value as u64)
    }

    /// Builds a vector from bits given least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = Bv::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Parses a binary string, most-significant bit first (e.g. `"1010"`).
    ///
    /// Underscores are ignored. Returns `None` on empty or non-binary input.
    pub fn from_binary_str(s: &str) -> Option<Self> {
        let digits: Vec<bool> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        if digits.is_empty() {
            return None;
        }
        let mut bits = digits;
        bits.reverse();
        Some(Bv::from_bits(&bits))
    }

    /// Parses a hexadecimal string, most-significant digit first.
    ///
    /// Underscores are ignored; the resulting width is `4 * digits` unless a
    /// target width is supplied via [`Bv::resize`] afterwards.
    pub fn from_hex_str(s: &str) -> Option<Self> {
        let digits: Vec<u64> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| c.to_digit(16).map(u64::from))
            .collect::<Option<Vec<_>>>()?;
        if digits.is_empty() {
            return None;
        }
        let mut v = Bv::zeros(digits.len() * 4);
        for (pos, d) in digits.iter().rev().enumerate() {
            for b in 0..4 {
                if d >> b & 1 == 1 {
                    v.set(pos * 4 + b, true);
                }
            }
        }
        Some(v)
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.width, "bit index {index} out of range for width {}", self.width);
        self.limbs[index / 64] >> (index % 64) & 1 == 1
    }

    /// Writes a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.width, "bit index {index} out of range for width {}", self.width);
        let mask = 1u64 << (index % 64);
        if value {
            self.limbs[index / 64] |= mask;
        } else {
            self.limbs[index / 64] &= !mask;
        }
    }

    /// `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// The low 64 bits as an integer (bits above 64 are ignored).
    pub fn to_u64_lossy(&self) -> u64 {
        self.limbs[0]
    }

    /// The value as `u64` if it fits, otherwise `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Iterator over bits, least significant first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(|i| self.bit(i))
    }

    fn normalize(&mut self) {
        let extra = self.limbs.len() * 64 - self.width;
        if extra > 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= u64::MAX >> extra;
        }
    }

    /// Zero-extends or truncates to `width`.
    pub fn resize(&self, width: usize) -> Bv {
        let mut out = Bv::zeros(width);
        for i in 0..width.min(self.width) {
            out.set(i, self.bit(i));
        }
        out
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bv {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.normalize();
        out
    }

    fn zip_with(&self, rhs: &Bv, f: impl Fn(u64, u64) -> u64) -> Bv {
        assert_eq!(self.width, rhs.width, "width mismatch in bitwise op");
        let limbs = self.limbs.iter().zip(&rhs.limbs).map(|(&a, &b)| f(a, b)).collect();
        let mut out = Bv { width: self.width, limbs };
        out.normalize();
        out
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&self, rhs: &Bv) -> Bv {
        self.zip_with(rhs, |a, b| a & b)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&self, rhs: &Bv) -> Bv {
        self.zip_with(rhs, |a, b| a | b)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&self, rhs: &Bv) -> Bv {
        self.zip_with(rhs, |a, b| a ^ b)
    }

    /// Modular addition (wraps at `2^width`). Panics on width mismatch.
    pub fn add(&self, rhs: &Bv) -> Bv {
        assert_eq!(self.width, rhs.width, "width mismatch in add");
        let mut out = Bv::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Modular subtraction (wraps at `2^width`). Panics on width mismatch.
    pub fn sub(&self, rhs: &Bv) -> Bv {
        // a - b = a + ~b + 1 in two's complement.
        let one = Bv::from_u64(self.width, 1);
        self.add(&rhs.not()).add(&one)
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Bv {
        Bv::zeros(self.width).sub(self)
    }

    /// Modular multiplication (truncated to `width`). Panics on width mismatch.
    pub fn mul(&self, rhs: &Bv) -> Bv {
        assert_eq!(self.width, rhs.width, "width mismatch in mul");
        let mut acc = Bv::zeros(self.width);
        let mut shifted = self.clone();
        for i in 0..self.width {
            if rhs.bit(i) {
                acc = acc.add(&shifted);
            }
            shifted = shifted.shl(1);
        }
        acc
    }

    /// Logical shift left by `amount` bits (zero fill).
    pub fn shl(&self, amount: usize) -> Bv {
        let mut out = Bv::zeros(self.width);
        for i in amount..self.width {
            out.set(i, self.bit(i - amount));
        }
        out
    }

    /// Logical shift right by `amount` bits (zero fill).
    pub fn shr(&self, amount: usize) -> Bv {
        let mut out = Bv::zeros(self.width);
        for i in 0..self.width.saturating_sub(amount) {
            out.set(i, self.bit(i + amount));
        }
        out
    }

    /// Unsigned comparison: `self < rhs`. Panics on width mismatch.
    pub fn ult(&self, rhs: &Bv) -> bool {
        assert_eq!(self.width, rhs.width, "width mismatch in comparison");
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != rhs.limbs[i] {
                return self.limbs[i] < rhs.limbs[i];
            }
        }
        false
    }

    /// AND-reduction over all bits.
    pub fn reduce_and(&self) -> bool {
        *self == Bv::ones(self.width)
    }

    /// OR-reduction over all bits.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// XOR-reduction (parity) over all bits.
    pub fn reduce_xor(&self) -> bool {
        self.limbs.iter().fold(0u32, |acc, l| acc ^ l.count_ones()) % 2 == 1
    }

    /// Extracts bits `[hi:lo]` inclusive (Verilog slice order).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn slice(&self, hi: usize, lo: usize) -> Bv {
        assert!(hi >= lo && hi < self.width, "invalid slice [{hi}:{lo}] of width {}", self.width);
        let mut out = Bv::zeros(hi - lo + 1);
        for i in lo..=hi {
            out.set(i - lo, self.bit(i));
        }
        out
    }

    /// Concatenation: `self` becomes the high part (Verilog `{self, low}`).
    pub fn concat(&self, low: &Bv) -> Bv {
        let mut out = Bv::zeros(self.width + low.width);
        for i in 0..low.width {
            out.set(i, low.bit(i));
        }
        for i in 0..self.width {
            out.set(low.width + i, self.bit(i));
        }
        out
    }

    /// Repeats `self`, `times` times (Verilog `{times{self}}`).
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`.
    pub fn repeat(&self, times: usize) -> Bv {
        assert!(times > 0, "repeat count must be positive");
        let mut out = self.clone();
        for _ in 1..times {
            out = out.concat(self);
        }
        out
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bv({self})")
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.width.div_ceil(4);
        for d in (0..digits).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let idx = d * 4 + b;
                if idx < self.width && self.bit(idx) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{nib:x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Bv::from_u64(8, 0b1010_0101);
        assert_eq!(v.width(), 8);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(7));
        assert_eq!(v.to_u64(), Some(0xA5));
    }

    #[test]
    fn wide_values_span_limbs() {
        let mut v = Bv::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.count_ones(), 3);
        assert!(v.bit(64));
        assert!(v.bit(129));
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn from_u64_truncates() {
        let v = Bv::from_u64(4, 0xFF);
        assert_eq!(v, Bv::from_u64(4, 0xF));
    }

    #[test]
    fn not_keeps_width_normalized() {
        let v = Bv::from_u64(4, 0b0101).not();
        assert_eq!(v, Bv::from_u64(4, 0b1010));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn add_wraps_modulo_width() {
        let a = Bv::from_u64(8, 200);
        let b = Bv::from_u64(8, 100);
        assert_eq!(a.add(&b), Bv::from_u64(8, 44));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Bv::ones(65);
        let one = Bv::from_u64(65, 1);
        assert!(a.add(&one).is_zero());
    }

    #[test]
    fn sub_is_inverse_of_add() {
        let a = Bv::from_u64(16, 0x1234);
        let b = Bv::from_u64(16, 0xFFFF);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_matches_u64_semantics() {
        let a = Bv::from_u64(16, 300);
        let b = Bv::from_u64(16, 250);
        assert_eq!(a.mul(&b).to_u64(), Some((300u64 * 250) & 0xFFFF));
    }

    #[test]
    fn shifts() {
        let v = Bv::from_u64(8, 0b0000_0110);
        assert_eq!(v.shl(2), Bv::from_u64(8, 0b0001_1000));
        assert_eq!(v.shr(1), Bv::from_u64(8, 0b0000_0011));
        assert_eq!(v.shl(9), Bv::zeros(8));
        assert_eq!(v.shr(9), Bv::zeros(8));
    }

    #[test]
    fn comparison_is_unsigned() {
        let a = Bv::from_u64(8, 0x80);
        let b = Bv::from_u64(8, 0x7F);
        assert!(b.ult(&a));
        assert!(!a.ult(&b));
        assert!(!a.ult(&a));
    }

    #[test]
    fn reductions() {
        assert!(Bv::ones(5).reduce_and());
        assert!(!Bv::from_u64(5, 0b10111).reduce_and());
        assert!(Bv::from_u64(5, 0b00100).reduce_or());
        assert!(!Bv::zeros(5).reduce_or());
        assert!(Bv::from_u64(5, 0b00111).reduce_xor());
        assert!(!Bv::from_u64(5, 0b00110).reduce_xor());
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let v = Bv::from_u64(12, 0xABC);
        let hi = v.slice(11, 8);
        let lo = v.slice(7, 0);
        assert_eq!(hi.concat(&lo), v);
        assert_eq!(hi.to_u64(), Some(0xA));
    }

    #[test]
    fn repeat_builds_patterns() {
        let v = Bv::from_u64(2, 0b10);
        assert_eq!(v.repeat(3), Bv::from_u64(6, 0b101010));
    }

    #[test]
    fn parse_binary_and_hex() {
        assert_eq!(Bv::from_binary_str("1010").unwrap(), Bv::from_u64(4, 0b1010));
        assert_eq!(Bv::from_binary_str("1_0a"), None);
        assert_eq!(Bv::from_hex_str("fF").unwrap(), Bv::from_u64(8, 0xFF));
        assert_eq!(Bv::from_hex_str(""), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bv::from_u64(4, 0b1001)), "4'b1001");
        assert_eq!(format!("{:x}", Bv::from_u64(12, 0xABC)), "abc");
        assert_eq!(format!("{:x}", Bv::from_u64(9, 0x1FF)), "1ff");
    }

    #[test]
    fn resize_extends_and_truncates() {
        let v = Bv::from_u64(4, 0b1111);
        assert_eq!(v.resize(8), Bv::from_u64(8, 0b0000_1111));
        assert_eq!(v.resize(2), Bv::from_u64(2, 0b11));
    }

    #[test]
    fn neg_is_twos_complement() {
        let v = Bv::from_u64(8, 1);
        assert_eq!(v.neg(), Bv::from_u64(8, 0xFF));
        assert_eq!(Bv::zeros(8).neg(), Bv::zeros(8));
    }
}
