//! Finite-state-machine extraction from the RTL IR.
//!
//! This reproduces the role of FSMX (\[32\] in the paper): it identifies the
//! control FSM of a design — the state register, the encoded states, the
//! transition structure, and the initial state — so that the FSM-based
//! locking transforms (initialization locking, incorrect transitions, state
//! skipping, bypass states, inherent-signal locking) can target it.
//!
//! Two common coding idioms are recognized:
//! 1. **Two-process style**: a combinational `case (state)` computing a
//!    `state_next` net, plus a clocked `state <= state_next`.
//! 2. **One-process style**: a clocked `case (state)` assigning `state`
//!    directly.

use crate::ast::*;
use crate::bv::Bv;
use std::collections::BTreeSet;

/// One extracted transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state encoding.
    pub from: Bv,
    /// Destination state encoding.
    pub to: Bv,
    /// `true` when the transition is taken under a nested condition
    /// (`if`/inner `case`), `false` when unconditional within its arm.
    pub guarded: bool,
}

/// An extracted finite state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    /// The state register.
    pub state_reg: NetId,
    /// The net carrying the next-state value (equals `state_reg` in
    /// one-process style).
    pub next_net: NetId,
    /// All observed state encodings, sorted.
    pub states: Vec<Bv>,
    /// Extracted transitions.
    pub transitions: Vec<Transition>,
    /// Initial state from the reset body, when present.
    pub initial: Option<Bv>,
    /// Index of the process containing the transition `case`.
    pub case_proc: usize,
}

impl Fsm {
    /// Width of the state encoding in bits.
    pub fn state_width(&self, module: &Module) -> usize {
        module.width(self.state_reg)
    }

    /// Transitions leaving `state`.
    pub fn successors(&self, state: &Bv) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| &t.from == state).collect()
    }

    /// Longest acyclic distance (in transitions) from the initial state to
    /// each state; used by RTLock to prefer *deep* states for BMC
    /// resilience. States unreachable from the initial state get `None`.
    pub fn depth_from_initial(&self) -> Vec<(Bv, Option<usize>)> {
        let Some(init) = &self.initial else {
            return self.states.iter().map(|s| (s.clone(), None)).collect();
        };
        // BFS shortest path (cycles make longest-path ill-defined).
        let mut depth: Vec<Option<usize>> = vec![None; self.states.len()];
        let idx = |s: &Bv| self.states.iter().position(|x| x == s);
        if let Some(i0) = idx(init) {
            depth[i0] = Some(0);
            let mut queue = std::collections::VecDeque::from([init.clone()]);
            while let Some(cur) = queue.pop_front() {
                let d = depth[idx(&cur).expect("queued states are known")].expect("queued");
                for t in self.successors(&cur) {
                    if let Some(j) = idx(&t.to) {
                        if depth[j].is_none() {
                            depth[j] = Some(d + 1);
                            queue.push_back(t.to.clone());
                        }
                    }
                }
            }
        }
        self.states.iter().cloned().zip(depth).collect()
    }
}

/// Extracts every FSM found in the module.
///
/// # Examples
///
/// ```
/// let m = rtlock_rtl::parse(r#"
/// module t(input clk, input rst, input go, output reg [1:0] s);
///   reg [1:0] s_next;
///   always @(*) begin
///     s_next = s;
///     case (s)
///       2'd0: begin if (go) s_next = 2'd1; end
///       2'd1: begin s_next = 2'd0; end
///     endcase
///   end
///   always @(posedge clk or posedge rst) begin
///     if (rst) s <= 2'd0; else s <= s_next;
///   end
/// endmodule"#)?;
/// let fsms = rtlock_rtl::fsm::extract(&m);
/// assert_eq!(fsms.len(), 1);
/// assert_eq!(fsms[0].states.len(), 2);
/// # Ok::<(), rtlock_rtl::ParseError>(())
/// ```
pub fn extract(module: &Module) -> Vec<Fsm> {
    let mut fsms = Vec::new();

    // Step 1: find state registers and their next nets from clocked procs.
    // candidates: (state_reg, next_net, initial)
    let mut candidates: Vec<(NetId, NetId, Option<Bv>)> = Vec::new();
    for p in &module.procs {
        if !matches!(p.kind, ProcessKind::Seq { .. }) {
            continue;
        }
        // Simple `state <= state_next` updates at the top level of the body.
        for s in &p.body {
            if let Stmt::Assign { lhs, rhs } = s {
                if let (None, Expr::Ref(src)) = (&lhs.range, rhs) {
                    let initial = find_reset_const(&p.reset_body, lhs.net);
                    candidates.push((lhs.net, *src, initial));
                }
            }
        }
        // One-process style: `case (state)` directly in the clocked body.
        for s in &p.body {
            if let Stmt::Case { subject: Expr::Ref(state), .. } = s {
                let initial = find_reset_const(&p.reset_body, *state);
                candidates.push((*state, *state, initial));
            }
        }
    }

    // Step 2: for each candidate, find a `case` over the state register that
    // assigns constants to the next net.
    for (state_reg, next_net, initial) in candidates {
        for (pi, p) in module.procs.iter().enumerate() {
            let Some((arms_states, transitions)) = find_case_transitions(&p.body, state_reg, next_net) else {
                continue;
            };
            if transitions.is_empty() {
                continue;
            }
            let mut states: BTreeSet<Bv> = arms_states.into_iter().collect();
            for t in &transitions {
                states.insert(t.from.clone());
                states.insert(t.to.clone());
            }
            if let Some(init) = &initial {
                states.insert(init.clone());
            }
            if states.len() < 2 {
                continue;
            }
            fsms.push(Fsm {
                state_reg,
                next_net,
                states: states.into_iter().collect(),
                transitions,
                initial: initial.clone(),
                case_proc: pi,
            });
        }
    }

    // Deduplicate by state register (two-process candidates can match twice).
    fsms.sort_by_key(|f| (f.state_reg, std::cmp::Reverse(f.transitions.len())));
    fsms.dedup_by_key(|f| f.state_reg);
    fsms
}

fn find_reset_const(reset_body: &[Stmt], target: NetId) -> Option<Bv> {
    for s in reset_body {
        if let Stmt::Assign { lhs, rhs } = s {
            if lhs.net == target && lhs.range.is_none() {
                if let Expr::Const(c) = rhs {
                    return Some(c.clone());
                }
            }
        }
    }
    None
}

/// Searches `stmts` (recursively) for `case (state_reg)` and harvests
/// constant transitions to `next_net`. Returns (arm labels, transitions).
fn find_case_transitions(stmts: &[Stmt], state_reg: NetId, next_net: NetId) -> Option<(Vec<Bv>, Vec<Transition>)> {
    for s in stmts {
        match s {
            Stmt::Case { subject: Expr::Ref(n), arms, default: _ } if *n == state_reg => {
                let mut labels = Vec::new();
                let mut transitions = Vec::new();
                for arm in arms {
                    for from in &arm.labels {
                        labels.push(from.clone());
                        harvest_assigns(&arm.body, next_net, from, false, &mut transitions);
                    }
                }
                return Some((labels, transitions));
            }
            Stmt::If { then_, else_, .. } => {
                if let Some(found) = find_case_transitions(then_, state_reg, next_net) {
                    return Some(found);
                }
                if let Some(found) = find_case_transitions(else_, state_reg, next_net) {
                    return Some(found);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    if let Some(found) = find_case_transitions(&a.body, state_reg, next_net) {
                        return Some(found);
                    }
                }
                if let Some(found) = find_case_transitions(default, state_reg, next_net) {
                    return Some(found);
                }
            }
            Stmt::Assign { .. } => {}
        }
    }
    None
}

fn harvest_assigns(stmts: &[Stmt], next_net: NetId, from: &Bv, guarded: bool, out: &mut Vec<Transition>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if lhs.net == next_net && lhs.range.is_none() {
                    if let Expr::Const(to) = rhs {
                        out.push(Transition { from: from.clone(), to: to.resize(from.width()), guarded });
                    }
                }
            }
            Stmt::If { then_, else_, .. } => {
                harvest_assigns(then_, next_net, from, true, out);
                harvest_assigns(else_, next_net, from, true, out);
            }
            Stmt::Case { arms, default, .. } => {
                for a in arms {
                    harvest_assigns(&a.body, next_net, from, true, out);
                }
                harvest_assigns(default, next_net, from, true, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const TWO_PROC: &str = "module t(input clk, input rst, input go, input stop, output reg [1:0] s);\n\
        reg [1:0] s_next;\n\
        always @(*) begin\n\
          s_next = s;\n\
          case (s)\n\
            2'd0: begin if (go) s_next = 2'd1; end\n\
            2'd1: begin s_next = 2'd2; end\n\
            2'd2: begin if (stop) s_next = 2'd0; else s_next = 2'd1; end\n\
          endcase\n\
        end\n\
        always @(posedge clk or posedge rst) begin if (rst) s <= 2'd0; else s <= s_next; end\n\
        endmodule";

    #[test]
    fn extracts_two_process_fsm() {
        let m = parse(TWO_PROC).unwrap();
        let fsms = extract(&m);
        assert_eq!(fsms.len(), 1);
        let f = &fsms[0];
        assert_eq!(m.net(f.state_reg).name, "s");
        assert_eq!(m.net(f.next_net).name, "s_next");
        assert_eq!(f.states.len(), 3);
        assert_eq!(f.initial, Some(Bv::from_u64(2, 0)));
        assert_eq!(f.transitions.len(), 4);
    }

    #[test]
    fn guarded_flag_set_for_conditional_transitions() {
        let m = parse(TWO_PROC).unwrap();
        let f = &extract(&m)[0];
        let s0 = Bv::from_u64(2, 0);
        let t01 = f.successors(&s0);
        assert_eq!(t01.len(), 1);
        assert!(t01[0].guarded);
        let s1 = Bv::from_u64(2, 1);
        assert!(!f.successors(&s1)[0].guarded);
    }

    #[test]
    fn extracts_one_process_fsm() {
        let m = parse(
            "module t(input clk, input rst, input go, output reg [1:0] s);\n\
             always @(posedge clk or posedge rst) begin\n\
               if (rst) s <= 2'd0;\n\
               else begin\n\
                 case (s)\n\
                   2'd0: begin if (go) s <= 2'd1; end\n\
                   2'd1: begin s <= 2'd3; end\n\
                   2'd3: begin s <= 2'd0; end\n\
                 endcase\n\
               end\n\
             end\nendmodule",
        )
        .unwrap();
        let fsms = extract(&m);
        assert_eq!(fsms.len(), 1);
        assert_eq!(fsms[0].states.len(), 3);
        assert_eq!(fsms[0].transitions.len(), 3);
        assert_eq!(fsms[0].initial, Some(Bv::from_u64(2, 0)));
    }

    #[test]
    fn depth_from_initial() {
        let m = parse(TWO_PROC).unwrap();
        let f = &extract(&m)[0];
        let depths = f.depth_from_initial();
        let get = |v: u64| depths.iter().find(|(s, _)| *s == Bv::from_u64(2, v)).unwrap().1;
        assert_eq!(get(0), Some(0));
        assert_eq!(get(1), Some(1));
        assert_eq!(get(2), Some(2));
    }

    #[test]
    fn no_fsm_in_pure_datapath() {
        let m = parse("module t(input [7:0] a, output [7:0] y); assign y = a + 8'd1; endmodule").unwrap();
        assert!(extract(&m).is_empty());
    }

    #[test]
    fn ignores_single_state_case() {
        let m = parse(
            "module t(input clk, output reg [1:0] s);\n\
             always @(posedge clk) begin case (s) 2'd0: begin s <= 2'd0; end endcase end\nendmodule",
        )
        .unwrap();
        assert!(extract(&m).is_empty(), "one state is not an FSM");
    }
}
