//! Pretty-printer emitting the IR back as synthesizable Verilog.
//!
//! `parse(print(m))` round-trips to a structurally equal module (modulo
//! normalization the parser already performed), which the test suite checks.

use crate::ast::*;

/// Renders a module as Verilog source.
///
/// # Examples
///
/// ```
/// let m = rtlock_rtl::parse("module t(input a, output y); assign y = ~a; endmodule")?;
/// let src = rtlock_rtl::print(&m);
/// assert!(src.contains("assign y = ~(a);"));
/// # Ok::<(), rtlock_rtl::ParseError>(())
/// ```
pub fn print(module: &Module) -> String {
    let mut out = String::new();
    let ports: Vec<String> = module
        .ports
        .iter()
        .map(|&p| {
            let n = module.net(p);
            let dir = match n.dir {
                Some(Dir::Input) => "input",
                Some(Dir::Output) => "output",
                None => unreachable!("port without direction"),
            };
            let kind = if n.kind == NetKind::Reg { " reg" } else { "" };
            format!("{dir}{kind}{} {}", range_str(n.width), n.name)
        })
        .collect();
    out.push_str(&format!("module {}(\n  {}\n);\n", module.name, ports.join(",\n  ")));

    for n in &module.nets {
        if n.dir.is_some() {
            continue;
        }
        let kw = match n.kind {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        };
        out.push_str(&format!("  {kw}{} {};\n", range_str(n.width), n.name));
    }

    for a in &module.assigns {
        out.push_str(&format!("  assign {} = {};\n", lvalue_str(module, &a.lhs), expr_str(module, &a.rhs)));
    }

    for p in &module.procs {
        match &p.kind {
            ProcessKind::Comb => {
                out.push_str("  always @(*) begin\n");
                for s in &p.body {
                    print_stmt(module, s, 2, false, &mut out);
                }
                out.push_str("  end\n");
            }
            ProcessKind::Seq { clock, reset } => {
                let clk = &module.net(*clock).name;
                match reset {
                    Some(r) if r.asynchronous => {
                        let edge = if r.active_high { "posedge" } else { "negedge" };
                        let rname = &module.net(r.net).name;
                        out.push_str(&format!("  always @(posedge {clk} or {edge} {rname}) begin\n"));
                        let cond = if r.active_high { rname.clone() } else { format!("!{rname}") };
                        out.push_str(&format!("    if ({cond}) begin\n"));
                        for s in &p.reset_body {
                            print_stmt(module, s, 3, true, &mut out);
                        }
                        out.push_str("    end else begin\n");
                        for s in &p.body {
                            print_stmt(module, s, 3, true, &mut out);
                        }
                        out.push_str("    end\n");
                    }
                    _ => {
                        out.push_str(&format!("  always @(posedge {clk}) begin\n"));
                        for s in &p.body {
                            print_stmt(module, s, 2, true, &mut out);
                        }
                    }
                }
                out.push_str("  end\n");
            }
        }
    }
    out.push_str("endmodule\n");
    out
}

fn range_str(width: usize) -> String {
    if width == 1 {
        String::new()
    } else {
        format!(" [{}:0]", width - 1)
    }
}

fn lvalue_str(module: &Module, lv: &Lvalue) -> String {
    let name = &module.net(lv.net).name;
    match lv.range {
        None => name.clone(),
        Some((hi, lo)) if hi == lo => format!("{name}[{hi}]"),
        Some((hi, lo)) => format!("{name}[{hi}:{lo}]"),
    }
}

fn print_stmt(module: &Module, stmt: &Stmt, depth: usize, nonblocking: bool, out: &mut String) {
    let ind = "  ".repeat(depth + 1);
    let op = if nonblocking { "<=" } else { "=" };
    match stmt {
        Stmt::Assign { lhs, rhs } => {
            out.push_str(&format!("{ind}{} {op} {};\n", lvalue_str(module, lhs), expr_str(module, rhs)));
        }
        Stmt::If { cond, then_, else_ } => {
            out.push_str(&format!("{ind}if ({}) begin\n", expr_str(module, cond)));
            for s in then_ {
                print_stmt(module, s, depth + 1, nonblocking, out);
            }
            if else_.is_empty() {
                out.push_str(&format!("{ind}end\n"));
            } else {
                out.push_str(&format!("{ind}end else begin\n"));
                for s in else_ {
                    print_stmt(module, s, depth + 1, nonblocking, out);
                }
                out.push_str(&format!("{ind}end\n"));
            }
        }
        Stmt::Case { subject, arms, default } => {
            out.push_str(&format!("{ind}case ({})\n", expr_str(module, subject)));
            for arm in arms {
                let labels: Vec<String> = arm.labels.iter().map(|l| l.to_string()).collect();
                out.push_str(&format!("{ind}  {}: begin\n", labels.join(", ")));
                for s in &arm.body {
                    print_stmt(module, s, depth + 2, nonblocking, out);
                }
                out.push_str(&format!("{ind}  end\n"));
            }
            if !default.is_empty() {
                out.push_str(&format!("{ind}  default: begin\n"));
                for s in default {
                    print_stmt(module, s, depth + 2, nonblocking, out);
                }
                out.push_str(&format!("{ind}  end\n"));
            }
            out.push_str(&format!("{ind}endcase\n"));
        }
    }
}

fn expr_str(module: &Module, e: &Expr) -> String {
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::Ref(n) => module.net(*n).name.clone(),
        Expr::Slice { net, hi, lo } if hi == lo => format!("{}[{hi}]", module.net(*net).name),
        Expr::Slice { net, hi, lo } => format!("{}[{hi}:{lo}]", module.net(*net).name),
        Expr::IndexDyn { net, index } => format!("{}[{}]", module.net(*net).name, expr_str(module, index)),
        Expr::Unary { op, arg } => {
            let sym = match op {
                UnaryOp::Not => "~",
                UnaryOp::LogicNot => "!",
                UnaryOp::Neg => "-",
                UnaryOp::RedAnd => "&",
                UnaryOp::RedOr => "|",
                UnaryOp::RedXor => "^",
            };
            format!("{sym}({})", expr_str(module, arg))
        }
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::Xnor => "~^",
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::LogicAnd => "&&",
                BinaryOp::LogicOr => "||",
            };
            format!("({} {sym} {})", expr_str(module, lhs), expr_str(module, rhs))
        }
        Expr::Ternary { cond, then_, else_ } => {
            format!("({} ? {} : {})", expr_str(module, cond), expr_str(module, then_), expr_str(module, else_))
        }
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| expr_str(module, p)).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repeat { times, expr } => format!("{{{times}{{{}}}}}", expr_str(module, expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let m1 = parse(src).unwrap();
        let printed = print(&m1);
        let m2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(m1.assigns, m2.assigns, "assign mismatch for:\n{printed}");
        assert_eq!(m1.procs, m2.procs, "process mismatch for:\n{printed}");
        assert_eq!(m1.ports.len(), m2.ports.len());
    }

    #[test]
    fn round_trip_combinational() {
        round_trip("module t(input [7:0] a, input [7:0] b, output [7:0] y); assign y = (a ^ b) + 8'd3; endmodule");
    }

    #[test]
    fn round_trip_sequential_with_reset() {
        round_trip(
            "module t(input clk, input rst, input [3:0] d, output reg [3:0] q);\n\
             always @(posedge clk or posedge rst) begin if (rst) q <= 4'd0; else q <= d + 4'd1; end\nendmodule",
        );
    }

    #[test]
    fn round_trip_fsm_case() {
        round_trip(
            "module t(input clk, input rst, input go, output reg [1:0] s);\n\
             reg [1:0] s_next;\n\
             always @(*) begin\n\
               case (s)\n 2'd0: begin if (go) s_next = 2'd1; else s_next = 2'd0; end\n\
               2'd1: begin s_next = 2'd2; end\n default: begin s_next = 2'd0; end\n endcase\n\
             end\n\
             always @(posedge clk or posedge rst) begin if (rst) s <= 2'd0; else s <= s_next; end\nendmodule",
        );
    }

    #[test]
    fn round_trip_concat_repeat_slice() {
        round_trip(
            "module t(input [7:0] a, output [15:0] y, output z);\n\
             assign y = {a[3:0], {3{a[7]}}, a[4], a[7:4]};\n assign z = ^(a & 8'hF0);\nendmodule",
        );
    }

    #[test]
    fn printed_output_contains_declarations() {
        let m = parse("module t(input a, output y); wire w; assign w = ~a; assign y = w; endmodule").unwrap();
        let s = print(&m);
        assert!(s.contains("wire w;"));
        assert!(s.contains("input a"));
    }
}
