//! Typed intermediate representation for synthesizable RTL.
//!
//! The IR models a single flat Verilog module: declared nets with widths,
//! continuous assignments, and `always` processes (combinational or clocked).
//! It is produced by the [parser](crate::parser), printed back to Verilog by
//! the [printer](crate::printer), interpreted by the
//! [simulator](crate::sim), and lowered to gates by the synthesis crate.
//!
//! Hierarchy is deliberately not modelled (benchmarks are flat); the parser
//! rejects module instantiations with a clear diagnostic.

use crate::bv::Bv;
use std::collections::HashMap;
use std::fmt;

/// Index of a declared net within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The net's position in [`Module::nets`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Module input.
    Input,
    /// Module output.
    Output,
}

/// Storage class of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire`: driven by continuous assignments or combinational processes.
    Wire,
    /// `reg`: assigned within processes (may still elaborate to wires).
    Reg,
}

/// A declared net (wire or reg) with an explicit bit width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Source-level name.
    pub name: String,
    /// Width in bits (>= 1).
    pub width: usize,
    /// Wire or reg.
    pub kind: NetKind,
    /// Port direction if this net is a port.
    pub dir: Option<Dir>,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise NOT (`~`).
    Not,
    /// Logical NOT (`!`), yields 1 bit.
    LogicNot,
    /// Arithmetic negation (`-`).
    Neg,
    /// AND reduction (`&`), yields 1 bit.
    RedAnd,
    /// OR reduction (`|`), yields 1 bit.
    RedOr,
    /// XOR reduction (`^`), yields 1 bit.
    RedXor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND (`&`).
    And,
    /// Bitwise OR (`|`).
    Or,
    /// Bitwise XOR (`^`).
    Xor,
    /// Bitwise XNOR (`~^`).
    Xnor,
    /// Addition (`+`), modular.
    Add,
    /// Subtraction (`-`), modular.
    Sub,
    /// Multiplication (`*`), truncated.
    Mul,
    /// Logical shift left (`<<`).
    Shl,
    /// Logical shift right (`>>`).
    Shr,
    /// Equality (`==`), yields 1 bit.
    Eq,
    /// Inequality (`!=`), yields 1 bit.
    Ne,
    /// Unsigned less-than (`<`), yields 1 bit.
    Lt,
    /// Unsigned less-or-equal (`<=`), yields 1 bit.
    Le,
    /// Unsigned greater-than (`>`), yields 1 bit.
    Gt,
    /// Unsigned greater-or-equal (`>=`), yields 1 bit.
    Ge,
    /// Logical AND (`&&`), yields 1 bit.
    LogicAnd,
    /// Logical OR (`||`), yields 1 bit.
    LogicOr,
}

impl BinaryOp {
    /// `true` for operators whose result is a single bit.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicAnd
                | BinaryOp::LogicOr
        )
    }

    /// `true` for the arithmetic operators RTLock considers lockable.
    pub fn is_arith(self) -> bool {
        matches!(self, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Shl | BinaryOp::Shr)
    }
}

/// An RTL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A sized constant.
    Const(Bv),
    /// Full reference to a net.
    Ref(NetId),
    /// Constant part-select `net[hi:lo]` (single bit when `hi == lo`).
    Slice {
        /// Sliced net.
        net: NetId,
        /// High bit index (inclusive).
        hi: usize,
        /// Low bit index (inclusive).
        lo: usize,
    },
    /// Dynamic single-bit select `net[index]`.
    IndexDyn {
        /// Indexed net.
        net: NetId,
        /// Bit index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation. Operands are implicitly zero-extended to the wider
    /// side before the operation (Verilog self-determined contexts are
    /// approximated by this rule).
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conditional `cond ? then_ : else_`.
    Ternary {
        /// Condition (reduced to 1 bit by OR-reduction).
        cond: Box<Expr>,
        /// Value when the condition is true.
        then_: Box<Expr>,
        /// Value when the condition is false.
        else_: Box<Expr>,
    },
    /// Concatenation `{parts[0], parts[1], ...}` — `parts[0]` is the MSB part.
    Concat(Vec<Expr>),
    /// Replication `{times{expr}}`.
    Repeat {
        /// Replication count.
        times: usize,
        /// Replicated expression.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a full net reference.
    pub fn net(id: NetId) -> Expr {
        Expr::Ref(id)
    }

    /// Convenience constructor for a sized constant.
    pub fn constant(width: usize, value: u64) -> Expr {
        Expr::Const(Bv::from_u64(width, value))
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for a unary operation.
    pub fn unary(op: UnaryOp, arg: Expr) -> Expr {
        Expr::Unary { op, arg: Box::new(arg) }
    }

    /// Convenience constructor for a conditional.
    pub fn ternary(cond: Expr, then_: Expr, else_: Expr) -> Expr {
        Expr::Ternary { cond: Box::new(cond), then_: Box::new(then_), else_: Box::new(else_) }
    }

    /// Collects every net referenced by this expression into `out`.
    pub fn collect_refs(&self, out: &mut Vec<NetId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Ref(n) => out.push(*n),
            Expr::Slice { net, .. } => out.push(*net),
            Expr::IndexDyn { net, index } => {
                out.push(*net);
                index.collect_refs(out);
            }
            Expr::Unary { arg, .. } => arg.collect_refs(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_refs(out);
                rhs.collect_refs(out);
            }
            Expr::Ternary { cond, then_, else_ } => {
                cond.collect_refs(out);
                then_.collect_refs(out);
                else_.collect_refs(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_refs(out);
                }
            }
            Expr::Repeat { expr, .. } => expr.collect_refs(out),
        }
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Ref(_) | Expr::Slice { .. } => {}
            Expr::IndexDyn { index, .. } => index.visit(f),
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Ternary { cond, then_, else_ } => {
                cond.visit(f);
                then_.visit(f);
                else_.visit(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.visit(f);
                }
            }
            Expr::Repeat { expr, .. } => expr.visit(f),
        }
    }

    /// Mutable pre-order visit of every sub-expression (including `self`).
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Ref(_) | Expr::Slice { .. } => {}
            Expr::IndexDyn { index, .. } => index.visit_mut(f),
            Expr::Unary { arg, .. } => arg.visit_mut(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_mut(f);
                rhs.visit_mut(f);
            }
            Expr::Ternary { cond, then_, else_ } => {
                cond.visit_mut(f);
                then_.visit_mut(f);
                else_.visit_mut(f);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.visit_mut(f);
                }
            }
            Expr::Repeat { expr, .. } => expr.visit_mut(f),
        }
    }
}

/// Assignment target: a net or a constant part-select of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lvalue {
    /// Target net.
    pub net: NetId,
    /// Optional `[hi:lo]` range; `None` assigns the full net.
    pub range: Option<(usize, usize)>,
}

impl Lvalue {
    /// Full-net target.
    pub fn whole(net: NetId) -> Lvalue {
        Lvalue { net, range: None }
    }

    /// Part-select target.
    pub fn sliced(net: NetId, hi: usize, lo: usize) -> Lvalue {
        Lvalue { net, range: Some((hi, lo)) }
    }
}

/// A continuous assignment (`assign lhs = rhs;`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Target.
    pub lhs: Lvalue,
    /// Driven expression.
    pub rhs: Expr,
}

/// A procedural statement inside an `always` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Procedural assignment. Blocking vs non-blocking is determined by the
    /// enclosing [`ProcessKind`]: clocked processes use non-blocking
    /// semantics, combinational processes use blocking semantics.
    Assign {
        /// Target.
        lhs: Lvalue,
        /// Source expression.
        rhs: Expr,
    },
    /// `if`/`else`.
    If {
        /// Condition (OR-reduced to 1 bit).
        cond: Expr,
        /// Taken branch.
        then_: Vec<Stmt>,
        /// Else branch (may be empty).
        else_: Vec<Stmt>,
    },
    /// `case` over constant labels.
    Case {
        /// Discriminant.
        subject: Expr,
        /// Arms: each is a set of constant labels plus a body.
        arms: Vec<CaseArm>,
        /// `default:` body (may be empty).
        default: Vec<Stmt>,
    },
}

/// One arm of a [`Stmt::Case`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// Constant labels matching this arm.
    pub labels: Vec<Bv>,
    /// Statements executed when any label matches.
    pub body: Vec<Stmt>,
}

/// Visits every expression in a statement list, in the canonical order
/// used by CDFG site addressing: `Assign` rhs; `If` cond, then-branch,
/// else-branch; `Case` subject, arms, default.
pub fn visit_stmt_exprs(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::Assign { rhs, .. } => f(rhs),
            Stmt::If { cond, then_, else_ } => {
                f(cond);
                visit_stmt_exprs(then_, f);
                visit_stmt_exprs(else_, f);
            }
            Stmt::Case { subject, arms, default } => {
                f(subject);
                for a in arms {
                    visit_stmt_exprs(&a.body, f);
                }
                visit_stmt_exprs(default, f);
            }
        }
    }
}

/// Mutable counterpart of [`visit_stmt_exprs`] (same order), used by the
/// locking transforms to rewrite addressed sites.
pub fn visit_stmt_exprs_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    for s in stmts {
        match s {
            Stmt::Assign { rhs, .. } => f(rhs),
            Stmt::If { cond, then_, else_ } => {
                f(cond);
                visit_stmt_exprs_mut(then_, f);
                visit_stmt_exprs_mut(else_, f);
            }
            Stmt::Case { subject, arms, default } => {
                f(subject);
                for a in arms {
                    visit_stmt_exprs_mut(&mut a.body, f);
                }
                visit_stmt_exprs_mut(default, f);
            }
        }
    }
}

/// Synchronous/asynchronous reset description for a clocked process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetSpec {
    /// Reset net (1 bit).
    pub net: NetId,
    /// `true` if the reset is active-high.
    pub active_high: bool,
    /// `true` if the reset appears in the sensitivity list (async).
    pub asynchronous: bool,
}

/// Flavor of an `always` process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessKind {
    /// `always @(*)` — combinational.
    Comb,
    /// `always @(posedge clock ...)` — clocked.
    Seq {
        /// Clock net (1 bit, posedge).
        clock: NetId,
        /// Optional reset.
        reset: Option<ResetSpec>,
    },
}

/// An `always` process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    /// Combinational or clocked.
    pub kind: ProcessKind,
    /// Body statements. For a clocked process with a reset, the parser
    /// normalizes the body so that `body` is the non-reset branch and
    /// `reset_body` holds the reset assignments.
    pub body: Vec<Stmt>,
    /// Assignments performed while in reset (empty without a reset).
    pub reset_body: Vec<Stmt>,
}

/// A flat RTL module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Declared nets; ports carry `dir: Some(_)`.
    pub nets: Vec<Net>,
    /// Port order as declared in the header.
    pub ports: Vec<NetId>,
    /// Continuous assignments.
    pub assigns: Vec<Assign>,
    /// `always` processes.
    pub procs: Vec<Process>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), nets: Vec::new(), ports: Vec::new(), assigns: Vec::new(), procs: Vec::new() }
    }

    /// Declares a net and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn add_net(&mut self, name: impl Into<String>, width: usize, kind: NetKind) -> NetId {
        assert!(width > 0, "net width must be positive");
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: name.into(), width, kind, dir: None });
        id
    }

    /// Declares a port net and returns its id.
    pub fn add_port(&mut self, name: impl Into<String>, width: usize, dir: Dir, kind: NetKind) -> NetId {
        let id = self.add_net(name, width, kind);
        self.nets[id.index()].dir = Some(dir);
        self.ports.push(id);
        id
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n.name == name).map(|i| NetId(i as u32))
    }

    /// The net record for `id`.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Width of net `id`.
    pub fn width(&self, id: NetId) -> usize {
        self.nets[id.index()].width
    }

    /// Ids of all input ports, in declaration order.
    pub fn inputs(&self) -> Vec<NetId> {
        self.ports.iter().copied().filter(|&p| self.net(p).dir == Some(Dir::Input)).collect()
    }

    /// Ids of all output ports, in declaration order.
    pub fn outputs(&self) -> Vec<NetId> {
        self.ports.iter().copied().filter(|&p| self.net(p).dir == Some(Dir::Output)).collect()
    }

    /// Computes the result width of an expression under this module's nets.
    pub fn expr_width(&self, e: &Expr) -> usize {
        match e {
            Expr::Const(c) => c.width(),
            Expr::Ref(n) => self.width(*n),
            Expr::Slice { hi, lo, .. } => hi - lo + 1,
            Expr::IndexDyn { .. } => 1,
            Expr::Unary { op, arg } => match op {
                UnaryOp::Not | UnaryOp::Neg => self.expr_width(arg),
                UnaryOp::LogicNot | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
            },
            Expr::Binary { op, lhs, rhs } => {
                if op.is_predicate() {
                    1
                } else {
                    self.expr_width(lhs).max(self.expr_width(rhs))
                }
            }
            Expr::Ternary { then_, else_, .. } => self.expr_width(then_).max(self.expr_width(else_)),
            Expr::Concat(parts) => parts.iter().map(|p| self.expr_width(p)).sum(),
            Expr::Repeat { times, expr } => times * self.expr_width(expr),
        }
    }

    /// Generates a fresh net name that does not collide with existing nets.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let existing: HashMap<&str, ()> = self.nets.iter().map(|n| (n.name.as_str(), ())).collect();
        let mut i = 0usize;
        loop {
            let cand = format!("{prefix}_{i}");
            if !existing.contains_key(cand.as_str()) {
                return cand;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        let mut m = Module::new("t");
        let a = m.add_port("a", 8, Dir::Input, NetKind::Wire);
        let b = m.add_port("b", 8, Dir::Input, NetKind::Wire);
        let y = m.add_port("y", 8, Dir::Output, NetKind::Wire);
        m.assigns.push(Assign { lhs: Lvalue::whole(y), rhs: Expr::binary(BinaryOp::Add, Expr::net(a), Expr::net(b)) });
        m
    }

    #[test]
    fn ports_are_partitioned_by_direction() {
        let m = sample();
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.outputs().len(), 1);
        assert_eq!(m.net(m.outputs()[0]).name, "y");
    }

    #[test]
    fn find_net_by_name() {
        let m = sample();
        assert_eq!(m.find_net("b"), Some(NetId(1)));
        assert_eq!(m.find_net("zz"), None);
    }

    #[test]
    fn expr_width_rules() {
        let m = sample();
        let a = m.find_net("a").unwrap();
        let e = Expr::binary(BinaryOp::Eq, Expr::net(a), Expr::constant(8, 3));
        assert_eq!(m.expr_width(&e), 1);
        let add = Expr::binary(BinaryOp::Add, Expr::net(a), Expr::constant(4, 3));
        assert_eq!(m.expr_width(&add), 8);
        let cat = Expr::Concat(vec![Expr::net(a), Expr::constant(3, 1)]);
        assert_eq!(m.expr_width(&cat), 11);
        let rep = Expr::Repeat { times: 3, expr: Box::new(Expr::net(a)) };
        assert_eq!(m.expr_width(&rep), 24);
    }

    #[test]
    fn collect_refs_finds_all_nets() {
        let m = sample();
        let a = m.find_net("a").unwrap();
        let b = m.find_net("b").unwrap();
        let e = Expr::ternary(
            Expr::binary(BinaryOp::Lt, Expr::net(a), Expr::net(b)),
            Expr::net(a),
            Expr::net(b),
        );
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        assert_eq!(refs.len(), 4);
        assert!(refs.contains(&a) && refs.contains(&b));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut m = sample();
        m.add_net("t_0", 1, NetKind::Wire);
        assert_eq!(m.fresh_name("t"), "t_1");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_net_rejected() {
        Module::new("x").add_net("w", 0, NetKind::Wire);
    }
}
