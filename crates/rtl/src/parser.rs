//! Recursive-descent parser for a synthesizable Verilog-2001 subset.
//!
//! Accepted constructs: one flat module (ANSI or non-ANSI port style),
//! `wire`/`reg` declarations with ranges, `localparam`, continuous
//! `assign`s, `always @(*)` and `always @(posedge clk [or (pos|neg)edge rst])`
//! processes with `begin/end`, `if`/`else`, `case`, blocking and non-blocking
//! assignments, and the expression grammar used by the IR.
//!
//! Not accepted (by design, with diagnostics): module instantiation,
//! `initial` blocks, delays, four-state literals (`x`/`z`), generate blocks.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! module adder(input [3:0] a, input [3:0] b, output [3:0] y);
//!   assign y = a + b;
//! endmodule
//! "#;
//! let module = rtlock_rtl::parse(src)?;
//! assert_eq!(module.name, "adder");
//! # Ok::<(), rtlock_rtl::ParseError>(())
//! ```

use crate::ast::*;
use crate::bv::Bv;
use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Error produced when the source is outside the accepted subset or
/// malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses Verilog source into a [`Module`].
///
/// # Errors
///
/// Returns [`ParseError`] for lexical errors, syntax errors, undeclared
/// identifiers, and constructs outside the supported subset.
pub fn parse(src: &str) -> Result<Module, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError { message: e.message, line: e.line, col: e.col })?;
    Parser { tokens, pos: 0, params: HashMap::new(), expr_depth: 0 }.parse_module()
}

/// Maximum expression nesting depth (guards the recursive-descent stack).
const MAX_EXPR_DEPTH: usize = 96;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: HashMap<String, Bv>,
    expr_depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn col(&self) -> usize {
        self.tokens[self.pos].col
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), line: self.line(), col: self.col() })
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`, found {}", self.peek()))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    // ---- constants -----------------------------------------------------

    fn const_u64(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(n)
            }
            TokenKind::Ident(name) => {
                if let Some(v) = self.params.get(&name) {
                    let v = v
                        .to_u64()
                        .ok_or_else(|| ParseError { message: format!("parameter `{name}` too wide"), line: self.line(), col: self.col() })?;
                    self.bump();
                    Ok(v)
                } else {
                    self.err(format!("expected constant, found unknown identifier `{name}`"))
                }
            }
            TokenKind::Sized { .. } => {
                let bv = self.sized_literal()?;
                bv.to_u64().ok_or_else(|| ParseError { message: "constant too wide".into(), line: self.line(), col: self.col() })
            }
            other => self.err(format!("expected constant, found {other}")),
        }
    }

    fn sized_literal(&mut self) -> Result<Bv, ParseError> {
        let line = self.line();
        let col = self.col();
        match self.bump() {
            TokenKind::Sized { width, base, digits } => {
                let val = match base {
                    'b' => Bv::from_binary_str(&digits),
                    'h' => Bv::from_hex_str(&digits),
                    'o' => {
                        let mut acc = Bv::zeros(digits.len() * 3 + 1);
                        for c in digits.chars() {
                            let d = c.to_digit(8).ok_or_else(|| ParseError {
                                message: format!("bad octal digit `{c}`"),
                                line,
                                col,
                            })?;
                            acc = acc.shl(3).or(&Bv::from_u64(acc.width(), d as u64));
                        }
                        Some(acc)
                    }
                    'd' => digits.parse::<u64>().ok().map(|v| Bv::from_u64(64, v)),
                    _ => None,
                };
                let val = val.ok_or_else(|| ParseError {
                    message: format!("malformed literal digits `{digits}` (x/z are not supported)"),
                    line,
                    col,
                })?;
                Ok(val.resize(width))
            }
            other => Err(ParseError { message: format!("expected sized literal, found {other}"), line, col }),
        }
    }

    /// Parses an optional `[msb:lsb]` range; returns the width.
    fn opt_range(&mut self) -> Result<usize, ParseError> {
        if self.eat_symbol("[") {
            let msb = self.const_u64()? as usize;
            self.expect_symbol(":")?;
            let lsb = self.const_u64()? as usize;
            self.expect_symbol("]")?;
            if lsb != 0 {
                return self.err("only [N:0] ranges are supported");
            }
            Ok(msb + 1)
        } else {
            Ok(1)
        }
    }

    // ---- module --------------------------------------------------------

    fn parse_module(mut self) -> Result<Module, ParseError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut module = Module::new(name);
        self.expect_symbol("(")?;
        // ANSI header?
        if self.peek_keyword("input") || self.peek_keyword("output") {
            loop {
                let dir = if self.eat_keyword("input") {
                    Dir::Input
                } else if self.eat_keyword("output") {
                    Dir::Output
                } else {
                    return self.err("expected `input` or `output` in ANSI port list");
                };
                let kind = if self.eat_keyword("reg") {
                    NetKind::Reg
                } else {
                    self.eat_keyword("wire");
                    NetKind::Wire
                };
                let width = self.opt_range()?;
                let pname = self.expect_ident()?;
                self.declare(&mut module, &pname, width, kind, Some(dir))?;
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            self.expect_symbol(";")?;
        } else {
            // Non-ANSI: names only, directions declared in the body.
            let mut names = Vec::new();
            if !matches!(self.peek(), TokenKind::Symbol(")")) {
                loop {
                    names.push(self.expect_ident()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            }
            self.expect_symbol(")")?;
            self.expect_symbol(";")?;
            // Remember header order; declarations come later.
            for n in &names {
                // Placeholder nets; re-declared (widened) by body port decls.
                self.declare(&mut module, n, 1, NetKind::Wire, None)?;
            }
        }

        // Body items.
        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            match self.peek().clone() {
                TokenKind::Eof => return self.err("unexpected end of input, expected `endmodule`"),
                TokenKind::Ident(kw) => match kw.as_str() {
                    "input" | "output" => self.port_decl(&mut module)?,
                    "wire" | "reg" => self.net_decl(&mut module)?,
                    "localparam" | "parameter" => {
                        self.bump();
                        self.param_decl()?;
                    }
                    "assign" => {
                        self.bump();
                        self.continuous_assign(&mut module)?;
                    }
                    "always" => {
                        self.bump();
                        self.always_block(&mut module)?;
                    }
                    "initial" => return self.err("`initial` blocks are not supported in the synthesizable subset"),
                    "generate" => return self.err("`generate` blocks are not supported"),
                    _ => {
                        return self.err(format!(
                            "unsupported item starting with `{kw}` (module instantiation is not supported; flatten the design)"
                        ))
                    }
                },
                other => return self.err(format!("unexpected {other}")),
            }
        }
        Ok(module)
    }

    fn declare(
        &mut self,
        module: &mut Module,
        name: &str,
        width: usize,
        kind: NetKind,
        dir: Option<Dir>,
    ) -> Result<NetId, ParseError> {
        if let Some(existing) = module.find_net(name) {
            // Non-ANSI header placeholder being refined by a body decl,
            // or a port getting its reg-ness from a later `reg` decl.
            let net = &mut module.nets[existing.index()];
            if net.dir.is_none() && dir.is_some() {
                net.dir = dir;
                net.width = width;
                net.kind = kind;
                module.ports.push(existing);
                return Ok(existing);
            }
            if net.dir.is_some() && dir.is_none() {
                if width != 1 && net.width != width {
                    return self.err(format!("conflicting widths for `{name}`"));
                }
                net.kind = kind;
                return Ok(existing);
            }
            return self.err(format!("duplicate declaration of `{name}`"));
        }
        Ok(match dir {
            Some(d) => module.add_port(name, width, d, kind),
            None => module.add_net(name, width, kind),
        })
    }

    fn port_decl(&mut self, module: &mut Module) -> Result<(), ParseError> {
        let dir = if self.eat_keyword("input") { Dir::Input } else { self.expect_keyword("output").map(|_| Dir::Output)? };
        let kind = if self.eat_keyword("reg") {
            NetKind::Reg
        } else {
            self.eat_keyword("wire");
            NetKind::Wire
        };
        let width = self.opt_range()?;
        loop {
            let name = self.expect_ident()?;
            self.declare(module, &name, width, kind, Some(dir))?;
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")
    }

    fn net_decl(&mut self, module: &mut Module) -> Result<(), ParseError> {
        let kind = if self.eat_keyword("reg") { NetKind::Reg } else { self.expect_keyword("wire").map(|_| NetKind::Wire)? };
        let width = self.opt_range()?;
        loop {
            let name = self.expect_ident()?;
            if self.eat_symbol("[") {
                return self.err(format!("memories (`reg [..] {name} [..]`) are not supported"));
            }
            self.declare(module, &name, width, kind, None)?;
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")
    }

    fn param_decl(&mut self) -> Result<(), ParseError> {
        let width = self.opt_range()?;
        loop {
            let name = self.expect_ident()?;
            self.expect_symbol("=")?;
            let value = match self.peek().clone() {
                TokenKind::Sized { .. } => self.sized_literal()?,
                TokenKind::Number(n) => {
                    self.bump();
                    Bv::from_u64(if width > 1 { width } else { 32 }, n)
                }
                other => return self.err(format!("expected parameter value, found {other}")),
            };
            let value = if width > 1 { value.resize(width) } else { value };
            self.params.insert(name, value);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")
    }

    fn continuous_assign(&mut self, module: &mut Module) -> Result<(), ParseError> {
        loop {
            let lhs = self.lvalue(module)?;
            self.expect_symbol("=")?;
            let rhs = self.expr(module)?;
            module.assigns.push(Assign { lhs, rhs });
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")
    }

    fn lvalue(&mut self, module: &Module) -> Result<Lvalue, ParseError> {
        let name = self.expect_ident()?;
        let net = module
            .find_net(&name)
            .ok_or_else(|| ParseError { message: format!("assignment to undeclared net `{name}`"), line: self.line(), col: self.col() })?;
        if self.eat_symbol("[") {
            let hi = self.const_u64()? as usize;
            let lo = if self.eat_symbol(":") { self.const_u64()? as usize } else { hi };
            self.expect_symbol("]")?;
            if hi < lo || hi >= module.width(net) {
                return self.err(format!("slice [{hi}:{lo}] out of range for `{name}`"));
            }
            Ok(Lvalue::sliced(net, hi, lo))
        } else {
            Ok(Lvalue::whole(net))
        }
    }

    fn always_block(&mut self, module: &mut Module) -> Result<(), ParseError> {
        self.expect_symbol("@")?;
        self.expect_symbol("(")?;
        let kind = if self.eat_symbol("*") {
            self.expect_symbol(")")?;
            ProcessKind::Comb
        } else if self.peek_keyword("posedge") || self.peek_keyword("negedge") {
            self.expect_keyword("posedge")?;
            let clk_name = self.expect_ident()?;
            let clock = module
                .find_net(&clk_name)
                .ok_or_else(|| ParseError { message: format!("unknown clock `{clk_name}`"), line: self.line(), col: self.col() })?;
            let mut reset = None;
            if self.eat_keyword("or") {
                let active_high = if self.eat_keyword("posedge") {
                    true
                } else {
                    self.expect_keyword("negedge")?;
                    false
                };
                let rname = self.expect_ident()?;
                let rnet = module
                    .find_net(&rname)
                    .ok_or_else(|| ParseError { message: format!("unknown reset `{rname}`"), line: self.line(), col: self.col() })?;
                reset = Some(ResetSpec { net: rnet, active_high, asynchronous: true });
            }
            self.expect_symbol(")")?;
            ProcessKind::Seq { clock, reset }
        } else {
            // Plain sensitivity list `always @(a or b)` treated as comb.
            loop {
                self.expect_ident()?;
                if !self.eat_keyword("or") && !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            ProcessKind::Comb
        };

        let body = self.stmt(module)?;
        let mut process = Process { kind, body, reset_body: Vec::new() };

        // Normalize async reset: the body must be `if (reset-cond) A else B`.
        if let ProcessKind::Seq { reset: Some(spec), .. } = &process.kind {
            let spec = spec.clone();
            if process.body.len() == 1 {
                if let Stmt::If { cond, then_, else_ } = &process.body[0] {
                    if Self::is_reset_cond(cond, &spec) {
                        process.reset_body = then_.clone();
                        process.body = else_.clone();
                        module.procs.push(process);
                        return Ok(());
                    }
                }
            }
            return self.err("async-reset process body must be `if (<reset>) ... else ...`");
        }
        module.procs.push(process);
        Ok(())
    }

    fn is_reset_cond(cond: &Expr, spec: &ResetSpec) -> bool {
        match (cond, spec.active_high) {
            (Expr::Ref(n), true) => *n == spec.net,
            (Expr::Unary { op: UnaryOp::LogicNot | UnaryOp::Not, arg }, false) => {
                matches!(**arg, Expr::Ref(n) if n == spec.net)
            }
            _ => false,
        }
    }

    fn stmt(&mut self, module: &Module) -> Result<Vec<Stmt>, ParseError> {
        if self.eat_keyword("begin") {
            let mut stmts = Vec::new();
            while !self.eat_keyword("end") {
                if matches!(self.peek(), TokenKind::Eof) {
                    return self.err("unexpected end of input inside `begin`");
                }
                stmts.extend(self.stmt(module)?);
            }
            return Ok(stmts);
        }
        if self.eat_keyword("if") {
            self.expect_symbol("(")?;
            let cond = self.expr(module)?;
            self.expect_symbol(")")?;
            let then_ = self.stmt(module)?;
            let else_ = if self.eat_keyword("else") { self.stmt(module)? } else { Vec::new() };
            return Ok(vec![Stmt::If { cond, then_, else_ }]);
        }
        if self.eat_keyword("case") {
            self.expect_symbol("(")?;
            let subject = self.expr(module)?;
            self.expect_symbol(")")?;
            let subj_w = module.expr_width(&subject);
            let mut arms = Vec::new();
            let mut default = Vec::new();
            loop {
                if self.eat_keyword("endcase") {
                    break;
                }
                if self.eat_keyword("default") {
                    self.eat_symbol(":");
                    default = self.stmt(module)?;
                    continue;
                }
                let mut labels = Vec::new();
                loop {
                    let label = match self.peek().clone() {
                        TokenKind::Sized { .. } => self.sized_literal()?.resize(subj_w),
                        TokenKind::Number(n) => {
                            self.bump();
                            Bv::from_u64(subj_w, n)
                        }
                        TokenKind::Ident(name) => {
                            let v = self
                                .params
                                .get(&name)
                                .cloned()
                                .ok_or_else(|| ParseError {
                                    message: format!("case label `{name}` is not a localparam"),
                                    line: self.line(),
                                    col: self.col(),
                                })?;
                            self.bump();
                            v.resize(subj_w)
                        }
                        other => return self.err(format!("expected case label, found {other}")),
                    };
                    labels.push(label);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(":")?;
                let body = self.stmt(module)?;
                arms.push(CaseArm { labels, body });
            }
            return Ok(vec![Stmt::Case { subject, arms, default }]);
        }
        // Assignment.
        let lhs = self.lvalue(module)?;
        if !self.eat_symbol("=") && !self.eat_symbol("<=") {
            return self.err(format!("expected `=` or `<=`, found {}", self.peek()));
        }
        let rhs = self.expr(module)?;
        self.expect_symbol(";")?;
        Ok(vec![Stmt::Assign { lhs, rhs }])
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, module: &Module) -> Result<Expr, ParseError> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return self.err(format!("expression nesting deeper than {MAX_EXPR_DEPTH} levels"));
        }
        let result = (|| {
            let cond = self.logic_or(module)?;
            if self.eat_symbol("?") {
                let then_ = self.expr(module)?;
                self.expect_symbol(":")?;
                let else_ = self.expr(module)?;
                Ok(Expr::ternary(cond, then_, else_))
            } else {
                Ok(cond)
            }
        })();
        self.expr_depth -= 1;
        result
    }

    fn binary_level(
        &mut self,
        module: &Module,
        ops: &[(&str, BinaryOp)],
        next: fn(&mut Self, &Module) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self, module)?;
        'outer: loop {
            for (sym, op) in ops {
                if matches!(self.peek(), TokenKind::Symbol(s) if s == sym) {
                    self.bump();
                    let rhs = next(self, module)?;
                    lhs = Expr::binary(*op, lhs, rhs);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("||", BinaryOp::LogicOr)], Self::logic_and)
    }
    fn logic_and(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("&&", BinaryOp::LogicAnd)], Self::bit_or)
    }
    fn bit_or(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("|", BinaryOp::Or)], Self::bit_xor)
    }
    fn bit_xor(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("^", BinaryOp::Xor), ("~^", BinaryOp::Xnor), ("^~", BinaryOp::Xnor)], Self::bit_and)
    }
    fn bit_and(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("&", BinaryOp::And)], Self::equality)
    }
    fn equality(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)], Self::relational)
    }
    fn relational(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(
            m,
            &[("<", BinaryOp::Lt), ("<=", BinaryOp::Le), (">", BinaryOp::Gt), (">=", BinaryOp::Ge)],
            Self::shift,
        )
    }
    fn shift(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)], Self::additive)
    }
    fn additive(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)], Self::multiplicative)
    }
    fn multiplicative(&mut self, m: &Module) -> Result<Expr, ParseError> {
        self.binary_level(m, &[("*", BinaryOp::Mul)], Self::unary)
    }

    fn unary(&mut self, m: &Module) -> Result<Expr, ParseError> {
        for (sym, op) in [
            ("~", UnaryOp::Not),
            ("!", UnaryOp::LogicNot),
            ("-", UnaryOp::Neg),
            ("&", UnaryOp::RedAnd),
            ("|", UnaryOp::RedOr),
            ("^", UnaryOp::RedXor),
        ] {
            if matches!(self.peek(), TokenKind::Symbol(s) if *s == sym) {
                self.bump();
                let arg = self.unary(m)?;
                return Ok(Expr::unary(op, arg));
            }
        }
        self.primary(m)
    }

    fn primary(&mut self, module: &Module) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Sized { .. } => Ok(Expr::Const(self.sized_literal()?)),
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Const(Bv::from_u64(32, n)))
            }
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expr(module)?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            TokenKind::Symbol("{") => {
                self.bump();
                // Could be a repeat `{N{expr}}` or a concat `{a, b, ...}`.
                let save = self.pos;
                if let TokenKind::Number(times) = self.peek().clone() {
                    self.bump();
                    if self.eat_symbol("{") {
                        // The replicated operand may itself be a
                        // concatenation list: `{2{a, b}}`.
                        let mut parts = vec![self.expr(module)?];
                        while self.eat_symbol(",") {
                            parts.push(self.expr(module)?);
                        }
                        self.expect_symbol("}")?;
                        self.expect_symbol("}")?;
                        if times == 0 {
                            return self.err("zero replication count");
                        }
                        let inner = if parts.len() == 1 { parts.remove(0) } else { Expr::Concat(parts) };
                        return Ok(Expr::Repeat { times: times as usize, expr: Box::new(inner) });
                    }
                    self.pos = save;
                }
                let mut parts = vec![self.expr(module)?];
                while self.eat_symbol(",") {
                    parts.push(self.expr(module)?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if let Some(v) = self.params.get(&name) {
                    return Ok(Expr::Const(v.clone()));
                }
                let net = module
                    .find_net(&name)
                    .ok_or_else(|| ParseError { message: format!("undeclared identifier `{name}`"), line: self.line(), col: self.col() })?;
                if self.eat_symbol("[") {
                    // Constant slice or dynamic single-bit index.
                    let save = self.pos;
                    let maybe_const = self.const_u64();
                    match maybe_const {
                        Ok(hi) if self.eat_symbol(":") => {
                            let lo = self.const_u64()? as usize;
                            self.expect_symbol("]")?;
                            let hi = hi as usize;
                            if hi < lo || hi >= module.width(net) {
                                return self.err(format!("slice [{hi}:{lo}] out of range for `{name}`"));
                            }
                            return Ok(Expr::Slice { net, hi, lo });
                        }
                        Ok(idx) if self.eat_symbol("]") => {
                            let idx = idx as usize;
                            if idx >= module.width(net) {
                                return self.err(format!("index {idx} out of range for `{name}`"));
                            }
                            return Ok(Expr::Slice { net, hi: idx, lo: idx });
                        }
                        _ => {
                            self.pos = save;
                            let index = self.expr(module)?;
                            self.expect_symbol("]")?;
                            return Ok(Expr::IndexDyn { net, index: Box::new(index) });
                        }
                    }
                }
                Ok(Expr::Ref(net))
            }
            other => self.err(format!("unexpected {other} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ansi_module_with_assign() {
        let m = parse("module t(input [7:0] a, input [7:0] b, output [7:0] y); assign y = a & b; endmodule").unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.assigns.len(), 1);
    }

    #[test]
    fn non_ansi_ports() {
        let m = parse(
            "module t(a, y);\n input [3:0] a;\n output reg [3:0] y;\n always @(*) begin y = a + 4'd1; end\nendmodule",
        )
        .unwrap();
        assert_eq!(m.inputs().len(), 1);
        assert_eq!(m.outputs().len(), 1);
        assert_eq!(m.net(m.outputs()[0]).kind, NetKind::Reg);
        assert_eq!(m.procs.len(), 1);
    }

    #[test]
    fn clocked_process_with_async_reset_is_normalized() {
        let m = parse(
            "module t(input clk, input rst, input [3:0] d, output reg [3:0] q);\n\
             always @(posedge clk or posedge rst) begin\n\
               if (rst) q <= 4'd0; else q <= d;\n\
             end\nendmodule",
        )
        .unwrap();
        let p = &m.procs[0];
        assert!(matches!(p.kind, ProcessKind::Seq { reset: Some(_), .. }));
        assert_eq!(p.reset_body.len(), 1);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn negedge_reset() {
        let m = parse(
            "module t(input clk, input rst_n, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= ~q;\n\
             end\nendmodule",
        )
        .unwrap();
        match &m.procs[0].kind {
            ProcessKind::Seq { reset: Some(r), .. } => assert!(!r.active_high),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn case_with_localparam_labels() {
        let m = parse(
            "module t(input [1:0] s, output reg [3:0] y);\n\
             localparam [1:0] A = 2'd0, B = 2'd1;\n\
             always @(*) begin\n\
               case (s)\n\
                 A: y = 4'd1;\n\
                 B: y = 4'd2;\n\
                 default: y = 4'd0;\n\
               endcase\n\
             end\nendmodule",
        )
        .unwrap();
        match &m.procs[0].body[0] {
            Stmt::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].labels[0], Bv::from_u64(2, 0));
                assert_eq!(default.len(), 1);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn precedence_add_binds_tighter_than_compare() {
        let m = parse("module t(input [3:0] a, output y); assign y = a + 4'd1 == 4'd3; endmodule").unwrap();
        match &m.assigns[0].rhs {
            Expr::Binary { op: BinaryOp::Eq, lhs, .. } => {
                assert!(matches!(**lhs, Expr::Binary { op: BinaryOp::Add, .. }));
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn concat_and_repeat() {
        let m = parse("module t(input [3:0] a, output [11:0] y); assign y = {a, {2{2'b10}}, a}; endmodule").unwrap();
        assert_eq!(m.expr_width(&m.assigns[0].rhs), 12);
    }

    #[test]
    fn dynamic_index() {
        let m = parse("module t(input [7:0] a, input [2:0] i, output y); assign y = a[i]; endmodule").unwrap();
        assert!(matches!(m.assigns[0].rhs, Expr::IndexDyn { .. }));
    }

    #[test]
    fn rejects_instantiation() {
        let e = parse("module t(input a); sub u0(a); endmodule").unwrap_err();
        assert!(e.message.contains("instantiation"), "{e}");
    }

    #[test]
    fn rejects_undeclared_net() {
        assert!(parse("module t(input a, output y); assign y = zz; endmodule").is_err());
    }

    #[test]
    fn rejects_out_of_range_slice() {
        assert!(parse("module t(input [3:0] a, output y); assign y = a[4]; endmodule").is_err());
    }

    #[test]
    fn rejects_initial_blocks() {
        let e = parse("module t(output reg y); initial y = 0; endmodule").unwrap_err();
        assert!(e.message.contains("initial"));
    }

    #[test]
    fn part_select_lvalue() {
        let m = parse("module t(input [1:0] a, output [3:0] y); assign y[1:0] = a; assign y[3:2] = a; endmodule")
            .unwrap();
        assert_eq!(m.assigns.len(), 2);
        assert_eq!(m.assigns[1].lhs.range, Some((3, 2)));
    }

    #[test]
    fn le_in_condition_is_comparison() {
        let m = parse(
            "module t(input clk, input [3:0] a, output reg y);\n\
             always @(posedge clk) begin if (a <= 4'd3) y <= 1'b1; else y <= 1'b0; end\nendmodule",
        )
        .unwrap();
        match &m.procs[0].body[0] {
            Stmt::If { cond, .. } => assert!(matches!(cond, Expr::Binary { op: BinaryOp::Le, .. })),
            other => panic!("expected if, got {other:?}"),
        }
    }
}
