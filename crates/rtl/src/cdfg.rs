//! Control/data-flow analysis over the RTL IR.
//!
//! RTLock's step 1 ("Analyzing the RTL") tracks assets, critical operations
//! and structures through the design. The paper uses JasperGold for CDFG
//! extraction; this module provides the equivalent structural facts:
//! a net-level dependency graph, forward/backward reachability (asset flow),
//! sequential depth (register stages between a net and the primary outputs,
//! which drives the BMC-resilience scoring of locking candidates), and a
//! census of operations and constants (the locking-candidate universe).

use crate::ast::*;
use crate::bv::Bv;
use std::collections::{HashSet, VecDeque};

/// Where in the module a candidate site lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteLoc {
    /// Inside `Module::assigns[index]`.
    Assign {
        /// Index into [`Module::assigns`].
        index: usize,
    },
    /// Inside `Module::procs[index]` (body or reset body).
    Proc {
        /// Index into [`Module::procs`].
        index: usize,
    },
}

/// An arithmetic/logic operation found in the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSite {
    /// Operator.
    pub op: BinaryOp,
    /// Result width.
    pub width: usize,
    /// Location.
    pub loc: SiteLoc,
    /// Sequence number of this op within its location (pre-order).
    pub ordinal: usize,
}

/// A constant literal found in the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstSite {
    /// The literal value.
    pub value: Bv,
    /// Location.
    pub loc: SiteLoc,
    /// Sequence number of this constant within its location (pre-order).
    pub ordinal: usize,
}

/// Net-level control/data-flow graph of a module.
#[derive(Debug, Clone)]
pub struct Cdfg {
    /// For each net: nets it reads (data and control fanin).
    pub fanin: Vec<Vec<NetId>>,
    /// For each net: nets that read it.
    pub fanout: Vec<Vec<NetId>>,
    /// Nets assigned by clocked processes (registers).
    pub registers: Vec<NetId>,
    /// Operation census.
    pub ops: Vec<OpSite>,
    /// Constant census (1-bit constants and case labels are excluded; case
    /// labels are handled by FSM extraction instead).
    pub consts: Vec<ConstSite>,
}

impl Cdfg {
    /// Builds the CDFG for a module.
    pub fn build(module: &Module) -> Cdfg {
        let n = module.nets.len();
        let mut fanin: Vec<HashSet<NetId>> = vec![HashSet::new(); n];
        let mut registers = Vec::new();
        let mut ops = Vec::new();
        let mut consts = Vec::new();

        // `ordinal` is the pre-order node index across *all* expressions of
        // a location, so (loc, ordinal) uniquely addresses a node — the
        // locking transforms rely on this.
        let scan_expr = |e: &Expr,
                         loc: SiteLoc,
                         ordinal: &mut usize,
                         ops: &mut Vec<OpSite>,
                         consts: &mut Vec<ConstSite>,
                         module: &Module| {
            e.visit(&mut |sub| {
                match sub {
                    Expr::Binary { op, .. } => {
                        ops.push(OpSite { op: *op, width: module.expr_width(sub), loc, ordinal: *ordinal });
                    }
                    Expr::Const(c) if c.width() > 1 => {
                        consts.push(ConstSite { value: c.clone(), loc, ordinal: *ordinal });
                    }
                    _ => {}
                }
                *ordinal += 1;
            });
        };

        for (i, a) in module.assigns.iter().enumerate() {
            let loc = SiteLoc::Assign { index: i };
            let mut refs = Vec::new();
            a.rhs.collect_refs(&mut refs);
            fanin[a.lhs.net.index()].extend(refs);
            let mut ordinal = 0usize;
            scan_expr(&a.rhs, loc, &mut ordinal, &mut ops, &mut consts, module);
        }

        for (pi, p) in module.procs.iter().enumerate() {
            let loc = SiteLoc::Proc { index: pi };
            let mut targets = vec![false; n];
            collect_stmt_deps(&p.body, &mut Vec::new(), &mut fanin, &mut targets);
            collect_stmt_deps(&p.reset_body, &mut Vec::new(), &mut fanin, &mut targets);
            let mut ordinal = 0usize;
            visit_stmt_exprs(&p.body, &mut |e| scan_expr(e, loc, &mut ordinal, &mut ops, &mut consts, module));
            if let ProcessKind::Seq { reset, .. } = &p.kind {
                for (idx, &t) in targets.iter().enumerate() {
                    if t {
                        registers.push(NetId(idx as u32));
                        // A normalized async reset still controls every
                        // register this process writes.
                        if let Some(r) = reset {
                            fanin[idx].insert(r.net);
                        }
                    }
                }
            }
        }

        let mut fanout: Vec<Vec<NetId>> = vec![Vec::new(); n];
        for (to, srcs) in fanin.iter().enumerate() {
            for s in srcs {
                fanout[s.index()].push(NetId(to as u32));
            }
        }
        let fanin = fanin.into_iter().map(|s| s.into_iter().collect()).collect();
        registers.sort();
        registers.dedup();
        Cdfg { fanin, fanout, registers, ops, consts }
    }

    /// Nets reachable forward from `seeds` (asset propagation).
    pub fn reach_forward(&self, seeds: &[NetId]) -> HashSet<NetId> {
        self.reach(seeds, &self.fanout)
    }

    /// Nets reachable backward from `seeds` (cone of influence).
    pub fn reach_backward(&self, seeds: &[NetId]) -> HashSet<NetId> {
        self.reach(seeds, &self.fanin)
    }

    fn reach(&self, seeds: &[NetId], edges: &[Vec<NetId>]) -> HashSet<NetId> {
        let mut seen: HashSet<NetId> = seeds.iter().copied().collect();
        let mut queue: VecDeque<NetId> = seeds.iter().copied().collect();
        while let Some(x) = queue.pop_front() {
            for &next in &edges[x.index()] {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// Minimum number of register stages on any path from `net` to an
    /// output port, or `None` if no output is reachable.
    ///
    /// Deeper nets make better BMC-resistant locking points: a BMC attack
    /// must unroll at least this many frames before a corruption introduced
    /// at `net` becomes observable.
    pub fn seq_depth_to_output(&self, module: &Module, net: NetId) -> Option<usize> {
        let is_reg: HashSet<NetId> = self.registers.iter().copied().collect();
        // BFS over fanout counting register crossings (0-1 BFS).
        let mut dist: Vec<Option<usize>> = vec![None; module.nets.len()];
        let mut dq: VecDeque<NetId> = VecDeque::new();
        dist[net.index()] = Some(0);
        dq.push_back(net);
        while let Some(x) = dq.pop_front() {
            let d = dist[x.index()].expect("queued nets have distances");
            for &nx in &self.fanout[x.index()] {
                let step = usize::from(is_reg.contains(&nx));
                let nd = d + step;
                if dist[nx.index()].is_none_or(|old| nd < old) {
                    dist[nx.index()] = Some(nd);
                    if step == 0 {
                        dq.push_front(nx);
                    } else {
                        dq.push_back(nx);
                    }
                }
            }
        }
        module
            .outputs()
            .iter()
            .filter_map(|&o| dist[o.index()])
            .min()
    }
}

fn collect_stmt_deps(
    stmts: &[Stmt],
    control: &mut Vec<NetId>,
    fanin: &mut [HashSet<NetId>],
    targets: &mut [bool],
) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let mut refs = Vec::new();
                rhs.collect_refs(&mut refs);
                refs.extend(control.iter().copied());
                fanin[lhs.net.index()].extend(refs);
                targets[lhs.net.index()] = true;
            }
            Stmt::If { cond, then_, else_ } => {
                let mut crefs = Vec::new();
                cond.collect_refs(&mut crefs);
                let depth = control.len();
                control.extend(crefs);
                collect_stmt_deps(then_, control, fanin, targets);
                collect_stmt_deps(else_, control, fanin, targets);
                control.truncate(depth);
            }
            Stmt::Case { subject, arms, default } => {
                let mut crefs = Vec::new();
                subject.collect_refs(&mut crefs);
                let depth = control.len();
                control.extend(crefs);
                for a in arms {
                    collect_stmt_deps(&a.body, control, fanin, targets);
                }
                collect_stmt_deps(default, control, fanin, targets);
                control.truncate(depth);
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn pipeline() -> Module {
        parse(
            "module t(input clk, input rst, input [7:0] a, output [7:0] y);\n\
             reg [7:0] s1; reg [7:0] s2;\n\
             wire [7:0] w;\n\
             assign w = a + 8'd7;\n\
             always @(posedge clk or posedge rst) begin\n\
               if (rst) begin s1 <= 8'd0; s2 <= 8'd0; end\n\
               else begin s1 <= w; s2 <= s1 * 8'd3; end\n\
             end\n\
             assign y = s2;\nendmodule",
        )
        .unwrap()
    }

    #[test]
    fn registers_are_detected() {
        let m = pipeline();
        let g = Cdfg::build(&m);
        let names: Vec<&str> = g.registers.iter().map(|&r| m.net(r).name.as_str()).collect();
        assert_eq!(names, vec!["s1", "s2"]);
    }

    #[test]
    fn forward_reach_follows_pipeline() {
        let m = pipeline();
        let g = Cdfg::build(&m);
        let a = m.find_net("a").unwrap();
        let reached = g.reach_forward(&[a]);
        for n in ["w", "s1", "s2", "y"] {
            assert!(reached.contains(&m.find_net(n).unwrap()), "missing {n}");
        }
    }

    #[test]
    fn backward_reach_is_cone_of_influence() {
        let m = pipeline();
        let g = Cdfg::build(&m);
        let y = m.find_net("y").unwrap();
        let cone = g.reach_backward(&[y]);
        assert!(cone.contains(&m.find_net("a").unwrap()));
        assert!(cone.contains(&m.find_net("rst").unwrap()), "control deps count");
    }

    #[test]
    fn seq_depth_counts_register_stages() {
        let m = pipeline();
        let g = Cdfg::build(&m);
        let a = m.find_net("a").unwrap();
        let s2 = m.find_net("s2").unwrap();
        assert_eq!(g.seq_depth_to_output(&m, a), Some(2));
        assert_eq!(g.seq_depth_to_output(&m, s2), Some(0));
    }

    #[test]
    fn census_finds_ops_and_consts() {
        let m = pipeline();
        let g = Cdfg::build(&m);
        let ops: Vec<BinaryOp> = g.ops.iter().map(|o| o.op).collect();
        assert!(ops.contains(&BinaryOp::Add));
        assert!(ops.contains(&BinaryOp::Mul));
        // 8'd7 and 8'd3 plus reset constants.
        assert!(g.consts.iter().any(|c| c.value == Bv::from_u64(8, 7)));
        assert!(g.consts.iter().any(|c| c.value == Bv::from_u64(8, 3)));
    }

    #[test]
    fn control_dependencies_feed_fanin() {
        let m = parse(
            "module t(input c, input a, input b, output reg y);\n\
             always @(*) begin if (c) y = a; else y = b; end\nendmodule",
        )
        .unwrap();
        let g = Cdfg::build(&m);
        let y = m.find_net("y").unwrap();
        let c = m.find_net("c").unwrap();
        assert!(g.fanin[y.index()].contains(&c));
    }
}
