//! RTL front end for the RTLock reproduction.
//!
//! This crate provides everything RTLock needs to *see* and *transform* a
//! design at the register-transfer level:
//!
//! * [`bv`] — arbitrary-width two-state bit vectors ([`bv::Bv`]);
//! * [`ast`] — the typed RTL IR ([`ast::Module`], [`ast::Expr`], …);
//! * [`parser`] — a Verilog-2001-subset parser ([`parse`]);
//! * [`printer`] — Verilog emission ([`print()`]);
//! * [`sim`] — a cycle-accurate two-state simulator ([`sim::Simulator`]),
//!   which doubles as the oracle in oracle-guided attacks;
//! * [`cdfg`] — control/data-flow analysis ([`cdfg::Cdfg`]);
//! * [`fsm`] — FSMX-style finite-state-machine extraction ([`fsm::extract`]).
//!
//! # Examples
//!
//! Parse, analyze and simulate a small design:
//!
//! ```
//! use rtlock_rtl::{parse, sim::Simulator, cdfg::Cdfg, bv::Bv};
//!
//! let m = parse(r#"
//! module acc(input clk, input rst, input [7:0] d, output reg [7:0] sum);
//!   always @(posedge clk or posedge rst) begin
//!     if (rst) sum <= 8'd0; else sum <= sum + d;
//!   end
//! endmodule"#)?;
//!
//! let graph = Cdfg::build(&m);
//! assert_eq!(graph.registers.len(), 1);
//!
//! let mut sim = Simulator::new(&m);
//! sim.reset()?;
//! sim.set_by_name("d", Bv::from_u64(8, 5));
//! sim.step()?;
//! sim.step()?;
//! assert_eq!(sim.get_by_name("sum"), Bv::from_u64(8, 10));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bv;
pub mod cdfg;
pub mod fsm;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sim;

pub use ast::{Assign, BinaryOp, CaseArm, Dir, Expr, Lvalue, Module, Net, NetId, NetKind, Process, ProcessKind, ResetSpec, Stmt, UnaryOp};
pub use bv::Bv;
pub use parser::{parse, ParseError};
pub use printer::print;
