//! Parser robustness: arbitrary input must produce `Err`, never a panic,
//! and near-miss mutations of valid sources must not crash either.

use proptest::prelude::*;
use rtlock_rtl::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn arbitrary_bytes_never_panic(s in "\\PC*") {
        let _ = parse(&s);
    }

    #[test]
    fn arbitrary_tokens_never_panic(words in proptest::collection::vec(
        prop_oneof![
            Just("module".to_string()),
            Just("endmodule".to_string()),
            Just("input".to_string()),
            Just("output".to_string()),
            Just("assign".to_string()),
            Just("always".to_string()),
            Just("case".to_string()),
            Just("begin".to_string()),
            Just("end".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just("=".to_string()),
            Just(";".to_string()),
            Just("8'hFF".to_string()),
            Just("x".to_string()),
            Just("y".to_string()),
        ],
        0..40,
    )) {
        let _ = parse(&words.join(" "));
    }

    #[test]
    fn truncations_of_valid_source_never_panic(cut in 0usize..400) {
        let src = "module t(input clk, input rst, input [7:0] a, output reg [7:0] y);\n\
                   always @(posedge clk or posedge rst) begin\n\
                   if (rst) y <= 8'd0; else y <= (a + 8'd3) ^ {4'b1010, a[3:0]};\n\
                   end\nendmodule";
        let cut = cut.min(src.len());
        // Cut on a char boundary (ASCII source, so every byte is one).
        let _ = parse(&src[..cut]);
    }
}

#[test]
fn deep_nesting_parses_up_to_the_limit_and_errors_beyond() {
    let nested = |depth: usize| {
        let mut expr = String::from("a");
        for _ in 0..depth {
            expr = format!("({expr} + 8'd1)");
        }
        format!("module t(input [7:0] a, output [7:0] y); assign y = {expr}; endmodule")
    };
    assert!(parse(&nested(64)).is_ok(), "reasonable depth parses");
    let err = parse(&nested(400)).expect_err("absurd depth is rejected, not a crash");
    assert!(err.message.contains("nesting"), "{err}");
}
