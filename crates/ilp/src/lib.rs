//! 0/1 integer linear programming by branch-and-bound.
//!
//! RTLock's step 4 ("Selection of Cases") formulates locking-candidate
//! selection as an ILP (\[33\] in the paper): binary variables select locking
//! cases, `≥` rows enforce the attack-resilience target, `≤` rows cap the
//! area budget, mutual-exclusion rows keep at most one case per locking
//! point, and the objective minimizes the number (or cost) of selected
//! cases. Problem sizes are tens of variables, for which exhaustive
//! branch-and-bound with constraint-slack pruning is exact and fast.
//!
//! # Examples
//!
//! ```
//! use rtlock_ilp::{IlpProblem, Sense};
//!
//! // Pick a cheapest subset with total value >= 10.
//! let mut p = IlpProblem::minimize(vec![3.0, 5.0, 4.0]);
//! p.add_constraint(vec![(0, 6.0), (1, 8.0), (2, 5.0)], Sense::Ge, 10.0);
//! let sol = p.solve().expect("feasible");
//! assert_eq!(sol.assignment, vec![true, false, true]);
//! assert_eq!(sol.objective, 7.0);
//! ```

#![warn(missing_docs)]

use rtlock_governor::CancelToken;
use std::fmt;

/// Constraint direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ coeffs·x ≤ rhs`
    Le,
    /// `Σ coeffs·x ≥ rhs`
    Ge,
}

/// One linear constraint over binary variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients as `(variable, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    fn check(&self, x: &[bool]) -> bool {
        let lhs: f64 = self.coeffs.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum();
        match self.sense {
            Sense::Le => lhs <= self.rhs + 1e-9,
            Sense::Ge => lhs >= self.rhs - 1e-9,
        }
    }
}

/// A 0/1 minimization problem.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpProblem {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Value of each binary variable.
    pub assignment: Vec<bool>,
    /// Objective value `Σ cᵢ·xᵢ`.
    pub objective: f64,
}

/// Result of a budget-aware solve ([`IlpProblem::solve_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IlpOutcome {
    /// The best feasible assignment found, if any.
    pub solution: Option<IlpSolution>,
    /// `true` when the search ran to exhaustion: the solution is proven
    /// optimal, and `None` proves infeasibility. `false` means the node
    /// budget or the cancel token cut the search short — the solution (if
    /// any) is an incumbent, and `None` proves nothing.
    pub complete: bool,
}

/// Error for malformed constraint references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOutOfRange {
    /// The offending variable index.
    pub var: usize,
}

impl fmt::Display for VarOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "variable x{} out of range", self.var)
    }
}

impl std::error::Error for VarOutOfRange {}

impl IlpProblem {
    /// Creates a problem minimizing `Σ objective[i]·x[i]`.
    pub fn minimize(objective: Vec<f64>) -> IlpProblem {
        IlpProblem { objective, constraints: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        for &(i, _) in &coeffs {
            assert!(i < self.num_vars(), "variable x{i} out of range");
        }
        self.constraints.push(Constraint { coeffs, sense, rhs });
    }

    /// Adds `Σ x[i] ≤ 1` over the given variables (mutual exclusion — at
    /// most one locking case per locking point).
    pub fn add_mutual_exclusion(&mut self, vars: &[usize]) {
        let coeffs = vars.iter().map(|&v| (v, 1.0)).collect();
        self.add_constraint(coeffs, Sense::Le, 1.0);
    }

    /// Solves to optimality (within a node budget). Returns `None` when
    /// infeasible (or when the budget expired before any feasible
    /// assignment was found).
    ///
    /// Branch-and-bound: depth-first over variables, pruning on (a) an
    /// incumbent bound using the sum of negative remaining coefficients and
    /// (b) per-constraint slack infeasibility. Variables are ordered by
    /// decreasing total `≥`-row contribution so feasible covers are found
    /// early; a 4M-node budget bounds worst-case instances, in which case
    /// the best incumbent found is returned (possibly suboptimal).
    pub fn solve(&self) -> Option<IlpSolution> {
        self.solve_with(&CancelToken::unlimited()).solution
    }

    /// Solves under a cooperative [`CancelToken`] (polled every few
    /// thousand branch nodes) in addition to the node budget, reporting
    /// whether the search completed. An interrupted search returns the
    /// best incumbent found so far — possibly `None`, which then proves
    /// nothing about feasibility.
    pub fn solve_with(&self, cancel: &CancelToken) -> IlpOutcome {
        // One up-front poll so an already-fired token (zero deadline,
        // fault injection) stops even problems too small to hit the
        // in-search poll interval.
        if cancel.should_stop().is_some() {
            return IlpOutcome { solution: None, complete: false };
        }
        let n = self.num_vars();
        // Branch order: largest |objective| first, then largest coverage of
        // `≥` rows, so bounds and feasibility bite early.
        let mut ge_weight = vec![0.0f64; n];
        for c in &self.constraints {
            if c.sense == Sense::Ge {
                for &(i, coeff) in &c.coeffs {
                    ge_weight[i] += coeff.max(0.0);
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.objective[b]
                .abs()
                .total_cmp(&self.objective[a].abs())
                .then(ge_weight[b].total_cmp(&ge_weight[a]))
        });

        let mut best: Option<IlpSolution> = None;
        let mut x = vec![false; n];
        let mut fixed = vec![false; n];
        let mut search = Search { nodes: 0, stopped: false, cancel };
        self.branch(&order, 0, &mut x, &mut fixed, 0.0, &mut best, &mut search);
        IlpOutcome { solution: best, complete: !search.stopped }
    }

    /// Node budget for [`IlpProblem::solve`].
    const NODE_BUDGET: u64 = 4_000_000;

    /// How often (in nodes) the cancel token is polled. Power of two so
    /// the check is a mask, keeping `Instant::now()` off the hot path.
    const CANCEL_POLL_MASK: u64 = 0xFFF;

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        order: &[usize],
        depth: usize,
        x: &mut Vec<bool>,
        fixed: &mut Vec<bool>,
        cost: f64,
        best: &mut Option<IlpSolution>,
        search: &mut Search<'_>,
    ) {
        if search.stopped {
            return;
        }
        search.nodes += 1;
        if search.nodes > Self::NODE_BUDGET
            || (search.nodes & Self::CANCEL_POLL_MASK == 0 && search.cancel.should_stop().is_some())
        {
            search.stopped = true;
            return;
        }
        // Objective bound: remaining free vars can only lower the cost by
        // the sum of their negative coefficients.
        let free_gain: f64 = order[depth..]
            .iter()
            .map(|&i| self.objective[i].min(0.0))
            .sum();
        if let Some(b) = best {
            if cost + free_gain >= b.objective - 1e-9 {
                return;
            }
        }
        // Constraint slack pruning.
        for c in &self.constraints {
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for &(i, coeff) in &c.coeffs {
                if fixed[i] {
                    if x[i] {
                        lo += coeff;
                        hi += coeff;
                    }
                } else {
                    lo += coeff.min(0.0);
                    hi += coeff.max(0.0);
                }
            }
            let feasible = match c.sense {
                Sense::Le => lo <= c.rhs + 1e-9,
                Sense::Ge => hi >= c.rhs - 1e-9,
            };
            if !feasible {
                return;
            }
        }
        if depth == order.len() {
            debug_assert!(self.constraints.iter().all(|c| c.check(x)));
            if best.as_ref().is_none_or(|b| cost < b.objective - 1e-9) {
                *best = Some(IlpSolution { assignment: x.clone(), objective: cost });
            }
            return;
        }
        let v = order[depth];
        fixed[v] = true;
        // Explore the cheaper branch first; before any incumbent exists,
        // try selecting first so a feasible cover appears quickly.
        let cheap_first = self.objective[v] >= 0.0 && best.is_some();
        let try_order = if cheap_first { [false, true] } else { [true, false] };
        for val in try_order {
            x[v] = val;
            let dc = if val { self.objective[v] } else { 0.0 };
            self.branch(order, depth + 1, x, fixed, cost + dc, best, search);
        }
        x[v] = false;
        fixed[v] = false;
    }
}

/// Mutable search state threaded through [`IlpProblem::branch`].
struct Search<'a> {
    nodes: u64,
    stopped: bool,
    cancel: &'a CancelToken,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimum_is_all_zero() {
        let p = IlpProblem::minimize(vec![1.0, 2.0, 3.0]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.assignment, vec![false, false, false]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn covers_resilience_target_cheaply() {
        // RTLock-shaped: resilience >= 100, area <= 20, min #cases.
        let mut p = IlpProblem::minimize(vec![1.0, 1.0, 1.0, 1.0]);
        p.add_constraint(vec![(0, 80.0), (1, 30.0), (2, 60.0), (3, 10.0)], Sense::Ge, 100.0);
        p.add_constraint(vec![(0, 12.0), (1, 4.0), (2, 9.0), (3, 2.0)], Sense::Le, 20.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.objective, 2.0, "two cases suffice");
        // 0+2: res 140, area 21 > 20 -> infeasible; must be 0+1 (110, 16).
        assert_eq!(sol.assignment, vec![true, true, false, false]);
    }

    #[test]
    fn mutual_exclusion_respected() {
        let mut p = IlpProblem::minimize(vec![1.0, 1.0, 1.0]);
        p.add_constraint(vec![(0, 5.0), (1, 5.0), (2, 5.0)], Sense::Ge, 10.0);
        p.add_mutual_exclusion(&[0, 1]);
        let sol = p.solve().unwrap();
        assert!(!(sol.assignment[0] && sol.assignment[1]));
        assert_eq!(sol.objective, 2.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut p = IlpProblem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Ge, 3.0);
        assert!(p.solve().is_none());
    }

    #[test]
    fn negative_costs_turn_variables_on() {
        let p = IlpProblem::minimize(vec![-2.0, 1.0, -0.5]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.assignment, vec![true, false, true]);
        assert_eq!(sol.objective, -2.5);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut seed = 0x1234_5678u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _round in 0..50 {
            let n = 8;
            let obj: Vec<f64> = (0..n).map(|_| (rnd() % 21) as f64 - 10.0).collect();
            let mut p = IlpProblem::minimize(obj.clone());
            let mut cons = Vec::new();
            for _ in 0..4 {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for i in 0..n {
                    if rnd() % 2 == 0 {
                        coeffs.push((i, (rnd() % 11) as f64 - 5.0));
                    }
                }
                if coeffs.is_empty() {
                    continue;
                }
                let sense = if rnd() % 2 == 0 { Sense::Le } else { Sense::Ge };
                let rhs = (rnd() % 11) as f64 - 5.0;
                p.add_constraint(coeffs.clone(), sense, rhs);
                cons.push((coeffs, sense, rhs));
            }
            // Brute force.
            let mut best: Option<(f64, u32)> = None;
            for mask in 0..1u32 << n {
                let x: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
                let ok = cons.iter().all(|(coeffs, sense, rhs)| {
                    let lhs: f64 = coeffs.iter().map(|&(i, c)| if x[i] { c } else { 0.0 }).sum();
                    match sense {
                        Sense::Le => lhs <= rhs + 1e-9,
                        Sense::Ge => lhs >= rhs - 1e-9,
                    }
                });
                if ok {
                    let cost: f64 = (0..n).map(|i| if x[i] { obj[i] } else { 0.0 }).sum();
                    if best.is_none() || cost < best.expect("set").0 - 1e-9 {
                        best = Some((cost, mask));
                    }
                }
            }
            let sol = p.solve();
            match (best, sol) {
                (None, None) => {}
                (Some((cost, _)), Some(s)) => {
                    assert!((cost - s.objective).abs() < 1e-6, "objective mismatch: {cost} vs {}", s.objective)
                }
                (b, s) => panic!("feasibility mismatch: brute {b:?} vs bb {:?}", s.map(|s| s.objective)),
            }
        }
    }

    #[test]
    fn solve_with_unlimited_token_is_complete() {
        let mut p = IlpProblem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 5.0), (1, 5.0)], Sense::Ge, 5.0);
        let out = p.solve_with(&CancelToken::unlimited());
        assert!(out.complete);
        assert_eq!(out.solution.unwrap().objective, 1.0);
    }

    #[test]
    fn expired_token_yields_incomplete_outcome() {
        use rtlock_governor::Deadline;
        let mut p = IlpProblem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 5.0), (1, 5.0)], Sense::Ge, 5.0);
        let token = CancelToken::with_deadline(Deadline::after(std::time::Duration::ZERO));
        let out = p.solve_with(&token);
        assert!(!out.complete, "expired deadline must not claim optimality");
        assert!(out.solution.is_none());
    }

    #[test]
    fn incomplete_infeasible_proves_nothing() {
        // Same infeasible problem as `infeasible_returns_none`, but with a
        // cancelled token: `complete` distinguishes "proved infeasible"
        // from "gave up".
        let mut p = IlpProblem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Sense::Ge, 3.0);
        let exhaustive = p.solve_with(&CancelToken::unlimited());
        assert!(exhaustive.complete && exhaustive.solution.is_none());
        let token = CancelToken::unlimited();
        token.cancel();
        let cut = p.solve_with(&token);
        assert!(!cut.complete && cut.solution.is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_variable() {
        let mut p = IlpProblem::minimize(vec![1.0]);
        p.add_constraint(vec![(3, 1.0)], Sense::Le, 1.0);
    }
}
