//! External kill-and-resume acceptance: drive the `rtlock-campaign`
//! binary, abort it mid-campaign via the seeded crash hook
//! (`--crash-after-events`), resume with the same journal, and require
//! the final report to be byte-identical to an uninterrupted run — at
//! thread counts 1 and 8, across several crash points, including a
//! crash-during-resume (resume-after-resume).

use std::path::{Path, PathBuf};
use std::process::Command;

const DESIGNS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rtlock_crash_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn campaign(journal: &Path, out: &Path, threads: usize, crash_after: Option<u64>) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rtlock-campaign"));
    cmd.arg("--journal")
        .arg(journal)
        .arg("--tiny")
        .arg(DESIGNS.to_string())
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--out")
        .arg(out);
    if let Some(n) = crash_after {
        cmd.arg("--crash-after-events").arg(n.to_string());
    }
    cmd
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn killed_campaign_resumes_byte_identical() {
    for threads in [1usize, 8] {
        let dir = temp_dir(&format!("t{threads}"));

        // Uninterrupted baseline.
        let base_out = dir.join("base.txt");
        let status = campaign(&dir.join("base.journal"), &base_out, threads, None)
            .status()
            .expect("spawn baseline");
        assert!(status.success(), "baseline run failed (threads {threads})");
        let baseline = read(&base_out);
        assert!(baseline.contains("== tiny0 =="), "report has content:\n{baseline}");

        // Kill after 1, 2 and 3 journal appends, then resume each.
        for crash_after in [1u64, 2, 3] {
            let journal = dir.join(format!("crash{crash_after}.journal"));
            let out = dir.join(format!("crash{crash_after}.txt"));

            let status = campaign(&journal, &out, threads, Some(crash_after))
                .status()
                .expect("spawn crashing run");
            assert!(
                !status.success(),
                "armed run must die by abort (threads {threads}, crash {crash_after})"
            );
            assert!(!out.exists(), "a killed campaign must not have written its report");
            assert!(journal.exists(), "the journal survives the kill");

            let status =
                campaign(&journal, &out, threads, None).status().expect("spawn resume");
            assert!(status.success(), "resume failed (threads {threads}, crash {crash_after})");
            assert_eq!(
                read(&out),
                baseline,
                "resumed report differs (threads {threads}, crash {crash_after})"
            );
        }

        // Crash during the *resume* as well: kill at event 1, resume but
        // kill again one event later, then finish. Two generations of
        // journal recovery compose.
        let journal = dir.join("double.journal");
        let out = dir.join("double.txt");
        let status =
            campaign(&journal, &out, threads, Some(1)).status().expect("spawn first crash");
        assert!(!status.success());
        let status =
            campaign(&journal, &out, threads, Some(1)).status().expect("spawn second crash");
        assert!(!status.success());
        let status = campaign(&journal, &out, threads, None).status().expect("spawn final");
        assert!(status.success(), "double-crash resume failed (threads {threads})");
        assert_eq!(read(&out), baseline, "double-crash report differs (threads {threads})");

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn journal_torn_by_kill_still_resumes() {
    // Simulate a kill that tears the final record: truncate the journal
    // mid-record after a partial campaign, then resume. The store heals
    // the tail and the campaign still converges to the baseline.
    let dir = temp_dir("torn");
    let base_out = dir.join("base.txt");
    assert!(campaign(&dir.join("base.journal"), &base_out, 2, None)
        .status()
        .expect("baseline")
        .success());
    let baseline = read(&base_out);

    let journal = dir.join("torn.journal");
    let out = dir.join("torn.txt");
    assert!(!campaign(&journal, &out, 2, Some(2)).status().expect("crash run").success());
    let bytes = std::fs::read(&journal).expect("read journal");
    assert!(bytes.len() > 10, "journal holds records");
    std::fs::write(&journal, &bytes[..bytes.len() - 7]).expect("tear the tail");

    assert!(campaign(&journal, &out, 2, None).status().expect("resume").success());
    assert_eq!(read(&out), baseline, "torn-tail resume differs");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
