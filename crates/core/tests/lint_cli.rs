//! Black-box tests for the `rtlock-lint` binary: rule filtering, SARIF
//! output, and the documented exit-code contract (0 clean / 1 deny /
//! 2 usage error).

use std::io::Write;
use std::process::Command;

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rtlock-lint")).args(args).output().expect("spawns")
}

fn write_tmp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtlock-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("tmp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

/// The S001 fixture's bad half: a combinational loop, a `Deny` rule.
fn bad_source() -> &'static str {
    rtlock_designs::lint_fixtures()
        .iter()
        .find(|f| f.rule == "S001")
        .expect("S001 fixture")
        .bad
}

#[test]
fn clean_input_exits_zero_and_denied_input_exits_one() {
    let clean = write_tmp("clean.v", "module ok(input a, output y);\nassign y = a;\nendmodule\n");
    let out = lint(&[clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let bad = write_tmp("loop.v", bad_source());
    let out = lint(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn rule_filter_restricts_the_run() {
    let bad = write_tmp("loop2.v", bad_source());
    let path = bad.to_str().unwrap();
    // S001 selected: the loop still denies.
    let out = lint(&["--rule", "S001", path]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Only an unrelated rule selected: the loop is invisible, exit 0.
    let out = lint(&["--rule", "S004", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Comma lists work.
    let out = lint(&["--rule", "S004,S001", path]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn unknown_rule_or_flag_is_a_usage_error() {
    let out = lint(&["--rule", "Z999", "--all-designs"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown rule id"),
        "{out:?}"
    );
    let out = lint(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(2), "no inputs is a usage error: {out:?}");
}

#[test]
fn sarif_output_is_one_document_with_rule_metadata() {
    let bad = write_tmp("loop3.v", bad_source());
    let out = lint(&["--format", "sarif", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "deny findings still drive the exit code: {out:?}");
    let doc = String::from_utf8(out.stdout).expect("utf8");
    assert!(doc.trim_start().starts_with('{'), "single JSON document:\n{doc}");
    assert!(doc.contains("\"2.1.0\""), "SARIF version:\n{doc}");
    assert!(doc.contains("\"S001\""), "rule id surfaces:\n{doc}");
    assert!(doc.contains("\"error\""), "deny maps to error level:\n{doc}");
}
