//! In-process checkpoint/resume and retry acceptance for the catalog
//! runner.
//!
//! * A journaled campaign interrupted after **any** prefix of its events
//!   resumes to a `CatalogReport` whose canonical rendering is
//!   byte-identical to an uninterrupted run, at any thread count — and a
//!   fully replayed resume executes (and journals) nothing.
//! * The retry supervisor: a design whose stage panics transiently N−1
//!   times completes on attempt N, with the deterministic backoff
//!   schedule recorded in both the report and the journal; permanent
//!   errors are classified, recorded once, and never retried.

use rtlock::database::DatabaseConfig;
use rtlock::journal::{self, CampaignJournal};
use rtlock::select::SelectionSpec;
use rtlock::{
    lock_catalog_parallel, lock_catalog_resumable, lock_catalog_sequential, CatalogEntry,
    CatalogJob, DesignStatus, Fault, FaultPlan, LockError, RtlLockConfig, RunBudget,
};
use rtlock_exec::Executor;
use rtlock_governor::CancelToken;
use rtlock_store::{ErrorClass, Event, RetryPolicy};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tiny_module(tag: u8) -> rtlock_rtl::Module {
    rtlock_rtl::parse(&format!(
        r#"
module tiny{tag}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h2{};
  end
endmodule"#,
        13 + tag,
        tag % 10
    ))
    .expect("parses")
}

fn quick_config() -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
        spec: SelectionSpec {
            min_resilience: 30.0,
            max_area_pct: 40.0,
            ..SelectionSpec::default()
        },
        verify_cycles: 16,
        scan: None,
        ..RtlLockConfig::default()
    }
}

fn tiny_job(n: u8, budget: RunBudget, retry: RetryPolicy) -> CatalogJob {
    CatalogJob {
        entries: (0..n)
            .map(|i| CatalogEntry {
                name: format!("tiny{i}"),
                module: tiny_module(i),
                config: quick_config(),
            })
            .collect(),
        budget,
        portfolio: None,
        retry,
        cache: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rtlock_journal_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_journaled(job: &CatalogJob, path: &Path, threads: usize) -> (rtlock::CatalogReport, u64) {
    let (mut journal, recovery) = CampaignJournal::open(path).expect("open journal");
    let report = lock_catalog_resumable(
        job,
        &Executor::new(threads),
        &CancelToken::unlimited(),
        &mut journal,
        &recovery.events,
    );
    (report, journal.appended())
}

fn recovered_events(path: &Path) -> Vec<Event> {
    let (_, recovery) = CampaignJournal::open(path).expect("reopen journal");
    recovery.events
}

#[test]
fn resumed_catalog_is_byte_identical_at_any_prefix() {
    let job = tiny_job(4, RunBudget::unlimited(), RetryPolicy::default());
    let baseline =
        lock_catalog_parallel(&job, &Executor::new(2), &CancelToken::unlimited()).canonical();

    let dir = temp_dir("prefix");
    let full_path = dir.join("full.journal");
    let (full, appended) = run_journaled(&job, &full_path, 2);
    assert_eq!(full.canonical(), baseline, "fresh journaled run");
    assert_eq!(appended, 4, "one design_finished per design");

    let events = recovered_events(&full_path);
    for k in 0..=events.len() {
        for threads in [1, 4] {
            // A journal holding the first k events is exactly what a kill
            // after the k-th append leaves behind.
            let path = dir.join(format!("prefix{k}_t{threads}.journal"));
            {
                let (mut journal, _) = CampaignJournal::open(&path).expect("open prefix");
                for event in &events[..k] {
                    journal.append(event).expect("seed prefix");
                }
            }
            let (resumed, _) = run_journaled(&job, &path, threads);
            assert_eq!(resumed.canonical(), baseline, "prefix {k} threads {threads}");
            let replayed = resumed
                .designs
                .iter()
                .filter(|(_, st)| matches!(st, DesignStatus::Replayed(_)))
                .count();
            assert_eq!(replayed, k.min(4), "prefix {k}: journaled designs replay");
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resume_after_resume_executes_nothing_new() {
    let job = tiny_job(3, RunBudget::unlimited(), RetryPolicy::default());
    let dir = temp_dir("twice");
    let path = dir.join("catalog.journal");

    let (first, first_appended) = run_journaled(&job, &path, 2);
    assert_eq!(first_appended, 3);
    let (second, second_appended) = run_journaled(&job, &path, 2);
    assert_eq!(second_appended, 0, "fully replayed resume appends nothing");
    assert_eq!(second.canonical(), first.canonical());
    let (third, third_appended) = run_journaled(&job, &path, 1);
    assert_eq!(third_appended, 0);
    assert_eq!(third.canonical(), first.canonical());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stale_journal_for_a_different_campaign_is_ignored() {
    let job = tiny_job(2, RunBudget::unlimited(), RetryPolicy::default());
    let baseline =
        lock_catalog_parallel(&job, &Executor::new(2), &CancelToken::unlimited()).canonical();

    let dir = temp_dir("stale");
    let path = dir.join("stale.journal");
    {
        let (mut journal, _) = CampaignJournal::open(&path).expect("open");
        // Same index, different design name: a journal from another
        // campaign must not replay into this one.
        journal
            .append(&journal::design_finished_event(0, "other_design", true, "key_bits: 9\n"))
            .expect("append");
        // Out-of-range index: ignored, not a panic.
        journal
            .append(&journal::design_finished_event(7, "tiny0", true, "key_bits: 9\n"))
            .expect("append");
    }
    let (report, appended) = run_journaled(&job, &path, 2);
    assert_eq!(report.canonical(), baseline, "stale records are ignored");
    assert_eq!(appended, 2, "both designs re-ran and re-journaled");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn transient_faults_retry_to_success_with_deterministic_backoff() {
    let policy = RetryPolicy {
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        ..RetryPolicy::attempts(3)
    };
    // Two charges: attempts 1 and 2 panic at Verify, attempt 3 succeeds.
    let budget = RunBudget {
        fault_plan: FaultPlan::none().inject_transient(
            rtlock::Stage::Verify,
            Fault::Panic,
            2,
        ),
        ..RunBudget::unlimited()
    };
    let job = tiny_job(1, budget, policy.clone());

    let dir = temp_dir("retry");
    let path = dir.join("retry.journal");
    let (report, _) = run_journaled(&job, &path, 1);

    assert_eq!(report.completed(), 1, "{}", report.canonical());
    assert_eq!(report.retries.len(), 2, "attempts 1 and 2 failed: {:?}", report.retries);
    for (i, record) in report.retries.iter().enumerate() {
        let retry_no = (i + 1) as u32;
        assert_eq!(record.index, 0);
        assert_eq!(record.attempt, retry_no);
        assert_eq!(record.class, ErrorClass::Transient);
        assert!(
            record.detail.contains("verify") && record.detail.contains("panicked"),
            "transient detail names the panicking stage: {}",
            record.detail
        );
        assert_eq!(
            record.backoff,
            Some(policy.backoff(retry_no)),
            "backoff follows the policy's deterministic schedule"
        );
    }
    // The same schedule landed in the journal, before the crash could.
    let retries: Vec<_> = recovered_events(&path)
        .iter()
        .filter_map(journal::parse_retry)
        .collect();
    assert_eq!(retries.len(), 2);
    for (i, (scope, name, record)) in retries.iter().enumerate() {
        assert_eq!(scope, "catalog");
        assert_eq!(name, "tiny0");
        assert_eq!(record.attempt, (i + 1) as u32);
        assert_eq!(record.backoff, Some(policy.backoff((i + 1) as u32)));
    }

    // Sequential twin parity: same faults, same retries, same report.
    let seq_budget = RunBudget {
        fault_plan: FaultPlan::none().inject_transient(
            rtlock::Stage::Verify,
            Fault::Panic,
            2,
        ),
        ..RunBudget::unlimited()
    };
    let seq_job = tiny_job(1, seq_budget, policy.clone());
    let seq = lock_catalog_sequential(&seq_job, &CancelToken::unlimited());
    assert_eq!(seq.canonical(), report.canonical());
    assert_eq!(seq.retries, report.retries);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn permanent_failures_are_never_retried() {
    // A statically injected empty enumeration makes the design fail with
    // NoCandidates on every attempt — a permanent, structural error.
    let budget = RunBudget {
        fault_plan: FaultPlan::none().inject(rtlock::Stage::Enumerate, Fault::EmptyResult),
        ..RunBudget::unlimited()
    };
    let job = tiny_job(1, budget, RetryPolicy::attempts(3));

    let dir = temp_dir("permanent");
    let path = dir.join("permanent.journal");
    let (report, appended) = run_journaled(&job, &path, 1);

    assert!(
        matches!(&report.designs[0].1, DesignStatus::Failed(LockError::NoCandidates)),
        "{}",
        report.canonical()
    );
    assert_eq!(
        report.retries.len(),
        1,
        "exactly one record — classified, never re-attempted: {:?}",
        report.retries
    );
    assert_eq!(report.retries[0].class, ErrorClass::Permanent);
    assert_eq!(report.retries[0].attempt, 1);
    assert_eq!(report.retries[0].backoff, None, "no backoff: nothing follows a permanent error");
    assert_eq!(appended, 2, "one retry event, one design_finished");

    // The failure is final: a resume replays it without re-running.
    let (resumed, resumed_appended) = run_journaled(&job, &path, 1);
    assert_eq!(resumed_appended, 0);
    assert_eq!(resumed.canonical(), report.canonical());
    assert!(matches!(&resumed.designs[0].1, DesignStatus::Replayed(r) if !r.completed));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
