//! Robustness suite for the governed flow: every stage × every injected
//! fault must end in a structured [`LockError`] or a degradation-flagged
//! but valid [`rtlock::LockedDesign`] — never a hang and never an
//! uncontrolled unwind out of [`rtlock::lock_governed`].

use rtlock::database::DatabaseConfig;
use rtlock::flow::{lock_governed, LockError, RtlLockConfig};
use rtlock::governor::{Fault, FaultPlan, RunBudget, Stage};
use rtlock::select::SelectionSpec;
use rtlock_rtl::{parse, Module};
use std::time::{Duration, Instant};

const SRC: &str = "module t(input clk, input rst, input go, input [7:0] d, output reg [7:0] y, output busy);\n\
    reg [1:0] st; reg [1:0] st_next;\n\
    assign busy = st != 2'd0;\n\
    always @(*) begin\n\
      st_next = st;\n\
      case (st)\n\
        2'd0: begin if (go) st_next = 2'd1; end\n\
        2'd1: begin st_next = 2'd2; end\n\
        2'd2: begin st_next = 2'd0; end\n\
      endcase\n\
    end\n\
    always @(posedge clk or posedge rst) begin\n\
      if (rst) begin st <= 2'd0; y <= 8'd0; end\n\
      else begin\n\
        st <= st_next;\n\
        if (st == 2'd1) y <= (d + 8'd37) ^ 8'h5A;\n\
      end\n\
    end\nendmodule";

fn module() -> Module {
    parse(SRC).unwrap()
}

fn quick() -> RtlLockConfig {
    RtlLockConfig {
        database: DatabaseConfig {
            sat_probe: false,
            cosim_cycles: 16,
            corruption_samples: 1,
            ..DatabaseConfig::default()
        },
        spec: SelectionSpec {
            min_resilience: 150.0,
            max_area_pct: 30.0,
            min_key_bits: 4,
            ..SelectionSpec::default()
        },
        verify_cycles: 24,
        ..RtlLockConfig::default()
    }
}

fn budget_with(stage: Stage, fault: Fault) -> RunBudget {
    RunBudget::unlimited().with_faults(FaultPlan::none().inject(stage, fault))
}

#[test]
fn injected_panic_at_every_stage_becomes_a_structured_error() {
    let m = module();
    for stage in Stage::ALL {
        let out = lock_governed(&m, &quick(), &budget_with(stage, Fault::Panic));
        match (stage, out) {
            // The lint/analysis gates are advisory machinery: a panic
            // inside them degrades the run (with the captured payload
            // message on the report) instead of failing a lockable design.
            (Stage::PreLint | Stage::PostLint | Stage::Analyze, Ok(out)) => {
                let deg = out
                    .report
                    .degradations
                    .iter()
                    .find(|d| d.stage == stage)
                    .unwrap_or_else(|| panic!("stage {stage}: tolerated panic not degraded"));
                assert!(deg.detail.contains("injected fault"), "stage {stage}: {}", deg.detail);
                // The stage outcome carries the payload message itself.
                let rec = out
                    .report
                    .stage_outcomes
                    .iter()
                    .find(|o| o.stage == stage)
                    .expect("stage outcome recorded");
                match &rec.status {
                    rtlock::governor::StageStatus::Panicked(msg) => {
                        assert!(msg.contains("injected fault"), "stage {stage}: {msg}")
                    }
                    other => panic!("stage {stage}: expected Panicked outcome, got {other:?}"),
                }
            }
            (_, Err(LockError::StagePanic { stage: reported, message })) => {
                assert_eq!(reported, stage, "panic attributed to the wrong stage");
                assert!(message.contains("injected fault"), "stage {stage}: {message}");
            }
            (stage, other) => panic!("stage {stage}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn injected_timeout_at_every_stage_degrades_or_errors() {
    let m = module();
    for stage in Stage::ALL {
        let out = lock_governed(&m, &quick(), &budget_with(stage, Fault::Timeout));
        match (stage, out) {
            // The first two stages have no cheaper fallback when their
            // deadline is already gone at entry.
            (Stage::Elaborate, Err(LockError::Timeout { stage: s })) => assert_eq!(s, stage),
            (Stage::Enumerate, Err(LockError::Timeout { stage: s })) => assert_eq!(s, stage),
            // Database degrades to structural estimates.
            (Stage::Database, Ok(out)) => {
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::Database));
                assert_eq!(out.report.verified_mismatch_rate, 0.0);
            }
            // Selection falls back to greedy.
            (Stage::Select, Ok(out)) => {
                assert!(!out.report.used_ilp, "greedy fallback expected");
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::Select));
            }
            // Transform and scan locking are cheap must-run stages: a
            // timeout there is absorbed and the run stays fully valid.
            (Stage::Transform | Stage::ScanLock, Ok(out)) => {
                assert_eq!(out.report.verified_mismatch_rate, 0.0);
            }
            // Verification returns a flagged partial verdict.
            (Stage::Verify, Ok(out)) => {
                assert!(out.report.partial_verification);
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::Verify));
            }
            // An out-of-budget pre-lock lint gate skips its rules and
            // records the gap instead of blocking the flow.
            (Stage::PreLint, Ok(out)) => {
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::PreLint));
                let rep = out.report.pre_lint.as_ref().expect("gate ran, rules skipped");
                assert!(!rep.skipped.is_empty());
            }
            // The post-lock gate skips entirely (synthesizing the locked
            // netlist is not free) and records the degradation.
            (Stage::PostLint, Ok(out)) => {
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::PostLint));
                assert!(out.report.post_lint.is_none());
            }
            // So does the dataflow analysis gate.
            (Stage::Analyze, Ok(out)) => {
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::Analyze));
                assert!(out.report.analysis.is_none());
            }
            (stage, other) => panic!("stage {stage}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn injected_empty_result_at_every_stage_is_handled() {
    let m = module();
    for stage in Stage::ALL {
        let out = lock_governed(&m, &quick(), &budget_with(stage, Fault::EmptyResult));
        match (stage, out) {
            (Stage::Elaborate, Err(LockError::Synthesis(msg))) => {
                assert!(msg.contains("injected"), "{msg}");
            }
            (Stage::Enumerate | Stage::Database | Stage::Transform, Err(LockError::NoCandidates)) => {}
            // An empty selection recovers through the greedy fallback.
            (Stage::Select, Ok(out)) => assert!(!out.report.used_ilp),
            (Stage::Verify, Ok(out)) => {
                assert!(out.report.partial_verification, "zero-evidence verdict must be flagged");
            }
            (Stage::ScanLock, Ok(out)) => {
                assert!(out.scan_policy.is_none(), "scan locking skipped");
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::ScanLock));
            }
            // A skipped lint gate is a recorded degradation, never a
            // silent pass.
            (Stage::PreLint, Ok(out)) => {
                assert!(out.report.pre_lint.is_none());
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::PreLint));
            }
            (Stage::PostLint, Ok(out)) => {
                assert!(out.report.post_lint.is_none());
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::PostLint));
            }
            (Stage::Analyze, Ok(out)) => {
                assert!(out.report.analysis.is_none());
                assert!(out.report.degradations.iter().any(|d| d.stage == Stage::Analyze));
            }
            (stage, other) => panic!("stage {stage}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn injected_sabotage_at_transform_is_rejected_by_the_post_lock_gate() {
    let m = module();
    let out = lock_governed(&m, &quick(), &budget_with(Stage::Transform, Fault::Sabotage));
    match out {
        Err(LockError::LintRejected { stage, findings }) => {
            assert_eq!(stage, Stage::PostLint);
            assert!(findings.iter().any(|d| d.rule == "C002"), "findings: {findings:?}");
        }
        other => panic!("expected LintRejected at post_lint, got {other:?}"),
    }
    // Sabotage anywhere else is a no-op: the flow completes clean.
    let ok = lock_governed(&m, &quick(), &budget_with(Stage::Verify, Fault::Sabotage));
    assert!(ok.is_ok(), "got {ok:?}");
}

#[test]
fn select_timeout_without_fallback_is_a_structured_timeout() {
    let m = module();
    let mut cfg = quick();
    cfg.greedy_fallback = false;
    let out = lock_governed(&m, &cfg, &budget_with(Stage::Select, Fault::Timeout));
    assert!(matches!(out, Err(LockError::Timeout { stage: Stage::Select })), "got {out:?}");
}

#[test]
fn infeasible_ilp_with_fallback_uses_greedy() {
    let m = module();
    let mut cfg = quick();
    // Unreachable resilience: the ILP proves infeasibility, greedy packs
    // what the area budget allows.
    cfg.spec.min_resilience = 1e12;
    cfg.spec.min_key_bits = 0;
    let out = lock_governed(&m, &cfg, &RunBudget::unlimited()).unwrap();
    assert!(!out.report.used_ilp);
    assert!(!out.applied.is_empty());
}

#[test]
fn seeded_fault_plans_never_unwind_out_of_the_flow() {
    let m = module();
    for seed in 0..24u64 {
        let budget = RunBudget::unlimited().with_faults(FaultPlan::seeded(seed));
        // Ok or Err are both acceptable — what is not acceptable is a
        // panic crossing this call boundary, which would fail the test.
        let _ = lock_governed(&m, &quick(), &budget);
    }
}

#[test]
fn ungoverned_runs_report_no_degradations() {
    let m = module();
    let out = lock_governed(&m, &quick(), &RunBudget::unlimited()).unwrap();
    assert!(out.report.degradations.is_empty());
    assert!(!out.report.partial_verification);
}

#[test]
fn expired_wall_clock_budget_fails_fast_with_a_timeout() {
    let m = module();
    let start = Instant::now();
    let out = lock_governed(&m, &quick(), &RunBudget::with_wall_clock(Duration::ZERO));
    assert!(
        matches!(out, Err(LockError::Timeout { stage: Stage::Elaborate })),
        "got {out:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(5), "fail-fast took {:?}", start.elapsed());
}

/// The acceptance check: locking the largest bundled design under an
/// aggressive wall-clock budget must come back (with a degraded result or
/// a structured error) within a small multiple of the budget. The budget
/// is calibrated against this machine's cost of one base synthesis so the
/// test measures governance overshoot, not raw hardware speed.
#[test]
fn aggressive_wall_clock_budget_is_honored_on_b15() {
    let m = rtlock_designs::by_name("b15").expect("bundled").module().expect("parses");

    // Calibrate: one elaborate+optimize of the design itself — the largest
    // single unit of un-interruptible work the flow performs.
    let cal = Instant::now();
    let mut n = rtlock_synth::elaborate(&m).expect("b15 synthesizes");
    rtlock_synth::optimize(&mut n);
    let unit = cal.elapsed();

    let budget_limit = (unit * 2).max(Duration::from_millis(200));
    // Full probing on every candidate (the ungoverned cost) would dwarf
    // this; sat probes stay on to make the budget do real work.
    let config = RtlLockConfig {
        database: DatabaseConfig { cosim_cycles: 16, corruption_samples: 1, ..DatabaseConfig::default() },
        verify_cycles: 24,
        ..RtlLockConfig::default()
    };

    let start = Instant::now();
    let out = lock_governed(&m, &config, &RunBudget::with_wall_clock(budget_limit));
    let elapsed = start.elapsed();

    // Allowance: ~2× the budget plus bounded per-stage overshoot — the
    // in-flight candidate probe, the degraded synthesis-free database
    // sweep, and the mandatory scan-lock stage (≈ one synthesis unit per
    // mandatory step).
    let allowance = budget_limit * 2 + unit * 6 + Duration::from_secs(2);
    assert!(elapsed <= allowance, "took {elapsed:?}, budget {budget_limit:?}, allowance {allowance:?}");

    match out {
        Ok(out) => {
            assert!(
                !out.report.degradations.is_empty() || out.report.partial_verification,
                "a run this tight must either degrade or be genuinely fast"
            );
            assert_eq!(out.report.verified_mismatch_rate, 0.0);
        }
        Err(e) => {
            // Structured failure is acceptable; hangs and unwinds are not.
            let _ = e.to_string();
        }
    }
}
