//! Resource-governed flow execution: run budgets, per-stage deadlines,
//! panic isolation and deterministic fault injection.
//!
//! The seven-step flow ([`crate::flow::lock_governed`]) runs every stage
//! through this module's harness:
//!
//! * a [`RunBudget`] carries one wall-clock budget for the whole run plus
//!   optional per-stage soft deadlines; each stage receives a
//!   [`CancelToken`](rtlock_governor::CancelToken) tightened to the earlier
//!   of the two, and the long-running engines (synthesis fixpoint, ILP
//!   branch-and-bound, SAT probes, ATPG, co-simulation) poll it
//!   cooperatively;
//! * every stage body executes under [`std::panic::catch_unwind`], so a
//!   bug in one engine surfaces as a structured
//!   [`LockError::StagePanic`](crate::flow::LockError::StagePanic) instead
//!   of tearing down the caller;
//! * when a soft deadline fires, the flow degrades instead of failing —
//!   ILP falls back to greedy selection, database probing falls back to
//!   structural estimates, verification returns a reduced-cycle verdict —
//!   and each such step is recorded as a [`Degradation`] in the final
//!   [`FlowReport`](crate::flow::FlowReport);
//! * a [`FaultPlan`] injects panics, timeouts or empty results at any
//!   named stage, deterministically, so the degradation ladder itself is
//!   testable.

use rtlock_governor::{CancelToken, Deadline};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// The stages of the RTLock flow, in execution order: the seven locking
/// steps plus the two lint gates that bracket them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Step 1: elaborate the original RTL (validates it synthesizes).
    Elaborate,
    /// Pre-lock lint gate: static analysis of the input module and its
    /// elaborated netlist before any locking work is spent on it.
    PreLint,
    /// Step 2: enumerate locking candidates.
    Enumerate,
    /// Step 3: build the offline case database (synthesis + attack probes).
    Database,
    /// Step 4: ILP case selection.
    Select,
    /// Step 5: apply the locking transforms to the RTL.
    Transform,
    /// Step 6: co-simulation verification.
    Verify,
    /// Step 7: partial scan insertion + scan locking.
    ScanLock,
    /// Post-lock lint gate: static analysis of the locked design (key and
    /// scan rules included) before it is handed back.
    PostLint,
}

impl Stage {
    /// All stages, in flow order.
    pub const ALL: [Stage; 9] = [
        Stage::Elaborate,
        Stage::PreLint,
        Stage::Enumerate,
        Stage::Database,
        Stage::Select,
        Stage::Transform,
        Stage::Verify,
        Stage::ScanLock,
        Stage::PostLint,
    ];

    /// Stable lowercase name (used in reports and fault plans).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Elaborate => "elaborate",
            Stage::PreLint => "pre_lint",
            Stage::Enumerate => "enumerate",
            Stage::Database => "database",
            Stage::Select => "select",
            Stage::Transform => "transform",
            Stage::Verify => "verify",
            Stage::ScanLock => "scan_lock",
            Stage::PostLint => "post_lint",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault the harness can inject at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The stage body panics (exercises the `catch_unwind` isolation).
    Panic,
    /// The stage behaves as if its deadline already expired when it
    /// started (exercises the degradation ladder without sleeping).
    Timeout,
    /// The stage produces an empty result (no candidates, no viable rows,
    /// empty selection — whatever "empty" means for that stage).
    EmptyResult,
    /// The stage deliberately corrupts its own output (currently only
    /// meaningful at [`Stage::Transform`], where it plants a key gate on a
    /// constant-driven net; a no-op elsewhere). Exercises the post-lock
    /// lint gate: the sabotage passes functional verification with the
    /// correct key but must be rejected by rule `C002`.
    Sabotage,
}

impl Fault {
    const ALL: [Fault; 4] = [Fault::Panic, Fault::Timeout, Fault::EmptyResult, Fault::Sabotage];
}

/// A deterministic fault-injection plan: which [`Fault`] (if any) to
/// trigger at each stage. Used by the robustness test-suite to prove every
/// stage degrades into a structured error or a flagged result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    injections: Vec<(Stage, Fault)>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an injection (builder-style).
    #[must_use]
    pub fn inject(mut self, stage: Stage, fault: Fault) -> FaultPlan {
        self.injections.push((stage, fault));
        self
    }

    /// A plan with one pseudo-random `(stage, fault)` pair derived from
    /// `seed` (SplitMix64 — same seed, same plan, on every platform).
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let stage = Stage::ALL[(next() % Stage::ALL.len() as u64) as usize];
        let fault = Fault::ALL[(next() % Fault::ALL.len() as u64) as usize];
        FaultPlan::none().inject(stage, fault)
    }

    /// The fault planned for `stage`, if any (first match wins).
    pub fn fault_at(&self, stage: Stage) -> Option<Fault> {
        self.injections.iter().find(|(s, _)| *s == stage).map(|&(_, f)| f)
    }

    /// Whether `stage` has `fault` planned.
    pub fn has(&self, stage: Stage, fault: Fault) -> bool {
        self.fault_at(stage) == Some(fault)
    }
}

/// Resource budget for one flow run.
///
/// `Default` is fully unbounded with no injections — [`crate::flow::lock`]
/// uses exactly that, so ungoverned callers pay only a handful of atomic
/// loads.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock budget for the whole run (`None` = unbounded). The flow
    /// aims to return — with a result, a degraded result, or a structured
    /// error — within a small multiple of this (cooperative checks sit at
    /// loop boundaries, so one in-flight unit of work can overshoot).
    pub wall_clock: Option<Duration>,
    /// Per-stage soft deadlines. A stage whose soft deadline fires
    /// degrades (greedy selection, structural estimates, partial
    /// verification) rather than failing the run.
    pub stage_timeouts: Vec<(Stage, Duration)>,
    /// Deterministic fault injections (testing/chaos harness).
    pub fault_plan: FaultPlan,
    /// External cancellation: when set, the run token derives from this
    /// token, so firing it (e.g. from a parallel catalog worker's pool)
    /// stops the flow at the next cooperative check exactly like an
    /// expired wall clock.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// No limits, no injections.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// A budget bounded only by total wall-clock time.
    pub fn with_wall_clock(limit: Duration) -> RunBudget {
        RunBudget { wall_clock: Some(limit), ..RunBudget::default() }
    }

    /// Adds a per-stage soft deadline (builder-style).
    #[must_use]
    pub fn stage_timeout(mut self, stage: Stage, limit: Duration) -> RunBudget {
        self.stage_timeouts.push((stage, limit));
        self
    }

    /// Attaches a fault plan (builder-style).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> RunBudget {
        self.fault_plan = plan;
        self
    }

    /// Attaches an external cancel token (builder-style).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> RunBudget {
        self.cancel = Some(token.clone());
        self
    }

    /// The soft deadline duration configured for `stage`, if any.
    fn stage_limit(&self, stage: Stage) -> Option<Duration> {
        self.stage_timeouts.iter().find(|(s, _)| *s == stage).map(|&(_, d)| d)
    }
}

/// The runtime companion of a [`RunBudget`]: owns the run-wide cancel
/// token and records [`Degradation`]s as stages fall back.
#[derive(Debug)]
pub struct Governor {
    budget: RunBudget,
    run_token: CancelToken,
    degradations: Vec<Degradation>,
}

/// One graceful-degradation event: a stage hit its budget (or an injected
/// fault) and the flow substituted a cheaper strategy instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The stage that degraded.
    pub stage: Stage,
    /// What was substituted, human-readable.
    pub detail: String,
}

impl Governor {
    /// Starts governing a run: the wall-clock budget begins now.
    pub fn start(budget: RunBudget) -> Governor {
        let deadline = Deadline::within(budget.wall_clock);
        let run_token = match &budget.cancel {
            Some(t) => t.tightened(deadline),
            None => CancelToken::with_deadline(deadline),
        };
        Governor { budget, run_token, degradations: Vec::new() }
    }

    /// The run-wide cancel token (shared flag; wall-clock deadline).
    pub fn run_token(&self) -> &CancelToken {
        &self.run_token
    }

    /// The token a stage should poll: the run token tightened to the
    /// stage's soft deadline. An injected [`Fault::Timeout`] yields an
    /// already-expired deadline — the stage then behaves exactly as if its
    /// time ran out, with no sleeping and no wall-clock dependence.
    pub fn stage_token(&self, stage: Stage) -> CancelToken {
        let soft = if self.budget.fault_plan.has(stage, Fault::Timeout) {
            Deadline::after(Duration::ZERO)
        } else {
            Deadline::within(self.budget.stage_limit(stage))
        };
        self.run_token.tightened(soft)
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.budget.fault_plan
    }

    /// Records a graceful degradation.
    pub fn degrade(&mut self, stage: Stage, detail: impl Into<String>) {
        self.degradations.push(Degradation { stage, detail: detail.into() });
    }

    /// Degradations recorded so far (drained into the final report).
    pub fn take_degradations(&mut self) -> Vec<Degradation> {
        std::mem::take(&mut self.degradations)
    }

    /// Runs a stage body with panic isolation. An injected
    /// [`Fault::Panic`] panics *inside* the guarded region, so injection
    /// exercises the same recovery path a real bug would.
    ///
    /// `AssertUnwindSafe` is sound here because every stage body either
    /// owns its inputs or only reads shared state; on unwind the flow
    /// aborts (or degrades) without reusing partially-mutated values.
    pub fn run_stage<T>(
        &self,
        stage: Stage,
        body: impl FnOnce(&CancelToken) -> Result<T, crate::flow::LockError>,
    ) -> Result<T, crate::flow::LockError> {
        let token = self.stage_token(stage);
        let inject_panic = self.budget.fault_plan.has(stage, Fault::Panic);
        catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: panic at stage {stage}");
            }
            body(&token)
        }))
        .unwrap_or_else(|payload| {
            // `&*payload`, not `&payload`: the latter would make the Box
            // itself the `dyn Any` and every downcast would miss.
            Err(crate::flow::LockError::StagePanic { stage, message: panic_message(&*payload) })
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::LockError;

    #[test]
    fn stage_names_are_stable_and_unique() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Stage::ALL.len());
        assert_eq!(format!("{}", Stage::ScanLock), "scan_lock");
    }

    #[test]
    fn fault_plan_lookup() {
        let plan = FaultPlan::none()
            .inject(Stage::Select, Fault::Timeout)
            .inject(Stage::Verify, Fault::Panic);
        assert_eq!(plan.fault_at(Stage::Select), Some(Fault::Timeout));
        assert!(plan.has(Stage::Verify, Fault::Panic));
        assert_eq!(plan.fault_at(Stage::Database), None);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::seeded(7), FaultPlan::seeded(7));
        // Over a seed range, every fault kind shows up (coverage of the
        // selection logic, not a statistical claim).
        let kinds: std::collections::HashSet<_> =
            (0..64u64).filter_map(|s| FaultPlan::seeded(s).injections.first().map(|&(_, f)| f)).collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn run_stage_catches_real_panics() {
        let gov = Governor::start(RunBudget::unlimited());
        let out: Result<(), _> = gov.run_stage(Stage::Transform, |_| panic!("boom {}", 42));
        match out {
            Err(LockError::StagePanic { stage, message }) => {
                assert_eq!(stage, Stage::Transform);
                assert!(message.contains("boom 42"), "{message}");
            }
            other => panic!("expected StagePanic, got {other:?}"),
        }
    }

    #[test]
    fn run_stage_injects_panics_inside_the_guard() {
        let budget =
            RunBudget::unlimited().with_faults(FaultPlan::none().inject(Stage::Database, Fault::Panic));
        let gov = Governor::start(budget);
        let out = gov.run_stage(Stage::Database, |_| Ok(1));
        assert!(
            matches!(out, Err(LockError::StagePanic { stage: Stage::Database, .. })),
            "got {out:?}"
        );
        // Other stages are unaffected.
        assert_eq!(gov.run_stage(Stage::Select, |_| Ok(2)).unwrap(), 2);
    }

    #[test]
    fn injected_timeout_expires_stage_token_immediately() {
        let budget =
            RunBudget::unlimited().with_faults(FaultPlan::none().inject(Stage::Select, Fault::Timeout));
        let gov = Governor::start(budget);
        assert!(gov.stage_token(Stage::Select).should_stop().is_some());
        assert!(gov.stage_token(Stage::Verify).should_stop().is_none());
    }

    #[test]
    fn stage_token_combines_run_and_stage_deadlines() {
        let budget = RunBudget::with_wall_clock(Duration::from_secs(3600))
            .stage_timeout(Stage::Verify, Duration::ZERO);
        let gov = Governor::start(budget);
        assert!(gov.run_token().should_stop().is_none());
        assert!(gov.stage_token(Stage::Verify).should_stop().is_some());
        assert!(gov.stage_token(Stage::Database).should_stop().is_none());
        // Cancelling the run fires every stage token.
        gov.run_token().cancel();
        assert!(gov.stage_token(Stage::Database).should_stop().is_some());
    }

    #[test]
    fn degradations_accumulate_and_drain() {
        let mut gov = Governor::start(RunBudget::unlimited());
        gov.degrade(Stage::Select, "greedy fallback");
        gov.degrade(Stage::Verify, "partial cycles");
        let d = gov.take_degradations();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].stage, Stage::Select);
        assert!(gov.take_degradations().is_empty());
    }
}
