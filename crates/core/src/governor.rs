//! Resource-governed flow execution: run budgets, per-stage deadlines,
//! panic isolation and deterministic fault injection.
//!
//! The seven-step flow ([`crate::flow::lock_governed`]) runs every stage
//! through this module's harness:
//!
//! * a [`RunBudget`] carries one wall-clock budget for the whole run plus
//!   optional per-stage soft deadlines; each stage receives a
//!   [`CancelToken`](rtlock_governor::CancelToken) tightened to the earlier
//!   of the two, and the long-running engines (synthesis fixpoint, ILP
//!   branch-and-bound, SAT probes, ATPG, co-simulation) poll it
//!   cooperatively;
//! * every stage body executes under [`std::panic::catch_unwind`], so a
//!   bug in one engine surfaces as a structured
//!   [`LockError::StagePanic`](crate::flow::LockError::StagePanic) instead
//!   of tearing down the caller;
//! * when a soft deadline fires, the flow degrades instead of failing —
//!   ILP falls back to greedy selection, database probing falls back to
//!   structural estimates, verification returns a reduced-cycle verdict —
//!   and each such step is recorded as a [`Degradation`] in the final
//!   [`FlowReport`](crate::flow::FlowReport);
//! * a [`FaultPlan`] injects panics, timeouts or empty results at any
//!   named stage, deterministically, so the degradation ladder itself is
//!   testable.

use rtlock_governor::{CancelToken, Deadline};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The stages of the RTLock flow, in execution order: the seven locking
/// steps plus the two lint gates that bracket them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Step 1: elaborate the original RTL (validates it synthesizes).
    Elaborate,
    /// Pre-lock lint gate: static analysis of the input module and its
    /// elaborated netlist before any locking work is spent on it.
    PreLint,
    /// Step 2: enumerate locking candidates.
    Enumerate,
    /// Step 3: build the offline case database (synthesis + attack probes).
    Database,
    /// Step 4: ILP case selection.
    Select,
    /// Step 5: apply the locking transforms to the RTL.
    Transform,
    /// Step 6: co-simulation verification.
    Verify,
    /// Step 7: partial scan insertion + scan locking.
    ScanLock,
    /// Post-lock lint gate: static analysis of the locked design (key and
    /// scan rules included) before it is handed back.
    PostLint,
    /// Whole-design dataflow analysis gate: the fixpoint-backed `K` rules
    /// (key taint, constant/X propagation, scan reachability) over the
    /// locked netlist. The most expensive gate, so it runs last.
    Analyze,
}

impl Stage {
    /// All stages, in flow order.
    pub const ALL: [Stage; 10] = [
        Stage::Elaborate,
        Stage::PreLint,
        Stage::Enumerate,
        Stage::Database,
        Stage::Select,
        Stage::Transform,
        Stage::Verify,
        Stage::ScanLock,
        Stage::PostLint,
        Stage::Analyze,
    ];

    /// Stable lowercase name (used in reports and fault plans).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Elaborate => "elaborate",
            Stage::PreLint => "pre_lint",
            Stage::Enumerate => "enumerate",
            Stage::Database => "database",
            Stage::Select => "select",
            Stage::Transform => "transform",
            Stage::Verify => "verify",
            Stage::ScanLock => "scan_lock",
            Stage::PostLint => "post_lint",
            Stage::Analyze => "analyze",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault the harness can inject at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The stage body panics (exercises the `catch_unwind` isolation).
    Panic,
    /// The stage behaves as if its deadline already expired when it
    /// started (exercises the degradation ladder without sleeping).
    Timeout,
    /// The stage produces an empty result (no candidates, no viable rows,
    /// empty selection — whatever "empty" means for that stage).
    EmptyResult,
    /// The stage deliberately corrupts its own output (currently only
    /// meaningful at [`Stage::Transform`], where it plants a key gate on a
    /// constant-driven net; a no-op elsewhere). Exercises the post-lock
    /// lint gate: the sabotage passes functional verification with the
    /// correct key but must be rejected by rule `C002`.
    Sabotage,
    /// The *process* aborts immediately after the stage body finishes —
    /// after its result was computed, before the flow can act on it.
    /// This is the crash-injection primitive the kill-and-resume harness
    /// uses: the campaign journal has recorded everything up to and
    /// including this stage, and recovery must resume from there.
    ///
    /// Deliberately **not** part of the pool [`FaultPlan::seeded`] draws
    /// from: a seeded chaos plan degrades in-process, it never takes the
    /// test runner down with it.
    CrashAfter,
}

impl Fault {
    const ALL: [Fault; 4] = [Fault::Panic, Fault::Timeout, Fault::EmptyResult, Fault::Sabotage];
}

/// A deterministic fault-injection plan: which [`Fault`] (if any) to
/// trigger at each stage. Used by the robustness test-suite to prove every
/// stage degrades into a structured error or a flagged result.
///
/// Besides the static injections, a plan can carry *transient* faults: a
/// `(stage, fault)` pair armed for a bounded number of runs. Each
/// [`Governor::start`] resolves the plan — consuming one charge from
/// every armed transient — so a flow retried under the same (cloned)
/// budget fails the first N attempts and succeeds afterwards. That is
/// exactly the shape the retry supervisor's acceptance test needs, and
/// because clones share the underlying counters, the charge accounting
/// is per-plan, not per-clone.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    injections: Vec<(Stage, Fault)>,
    transients: Vec<TransientFault>,
}

/// A fault armed for a bounded number of [`Governor::start`] resolutions.
#[derive(Debug, Clone)]
struct TransientFault {
    stage: Stage,
    fault: Fault,
    /// Charges left. Shared across clones: a budget cloned per retry
    /// attempt decrements the same counter.
    remaining: Arc<AtomicUsize>,
}

/// Equality ignores the live charge counters (two plans with the same
/// static and transient configuration compare equal even mid-burn); the
/// counters are runtime state, not plan identity.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &FaultPlan) -> bool {
        self.injections == other.injections
            && self.transients.len() == other.transients.len()
            && self
                .transients
                .iter()
                .zip(&other.transients)
                .all(|(a, b)| a.stage == b.stage && a.fault == b.fault)
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an injection (builder-style).
    #[must_use]
    pub fn inject(mut self, stage: Stage, fault: Fault) -> FaultPlan {
        self.injections.push((stage, fault));
        self
    }

    /// Arms `fault` at `stage` for the next `times` governed runs
    /// (builder-style). Each [`Governor::start`] burns one charge; once
    /// the counter hits zero the fault stops firing. Clones of the plan
    /// share the counter.
    #[must_use]
    pub fn inject_transient(mut self, stage: Stage, fault: Fault, times: usize) -> FaultPlan {
        self.transients.push(TransientFault {
            stage,
            fault,
            remaining: Arc::new(AtomicUsize::new(times)),
        });
        self
    }

    /// Snapshots the plan for one run: static injections pass through and
    /// every transient with charges left burns one and joins them. The
    /// resolved plan is purely static, so every `has`/`fault_at` query
    /// within the run sees one consistent answer no matter how many times
    /// a stage consults it.
    pub fn resolve(&self) -> FaultPlan {
        let mut injections = self.injections.clone();
        for t in &self.transients {
            let fired = t
                .remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                .is_ok();
            if fired {
                injections.push((t.stage, t.fault));
            }
        }
        FaultPlan { injections, transients: Vec::new() }
    }

    /// A plan with one pseudo-random `(stage, fault)` pair derived from
    /// `seed` (SplitMix64 — same seed, same plan, on every platform).
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let stage = Stage::ALL[(next() % Stage::ALL.len() as u64) as usize];
        let fault = Fault::ALL[(next() % Fault::ALL.len() as u64) as usize];
        FaultPlan::none().inject(stage, fault)
    }

    /// The fault planned for `stage`, if any (first match wins).
    pub fn fault_at(&self, stage: Stage) -> Option<Fault> {
        self.injections.iter().find(|(s, _)| *s == stage).map(|&(_, f)| f)
    }

    /// Whether `stage` has `fault` planned.
    pub fn has(&self, stage: Stage, fault: Fault) -> bool {
        self.fault_at(stage) == Some(fault)
    }
}

/// Resource budget for one flow run.
///
/// `Default` is fully unbounded with no injections — [`crate::flow::lock`]
/// uses exactly that, so ungoverned callers pay only a handful of atomic
/// loads.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock budget for the whole run (`None` = unbounded). The flow
    /// aims to return — with a result, a degraded result, or a structured
    /// error — within a small multiple of this (cooperative checks sit at
    /// loop boundaries, so one in-flight unit of work can overshoot).
    pub wall_clock: Option<Duration>,
    /// Per-stage soft deadlines. A stage whose soft deadline fires
    /// degrades (greedy selection, structural estimates, partial
    /// verification) rather than failing the run.
    pub stage_timeouts: Vec<(Stage, Duration)>,
    /// Deterministic fault injections (testing/chaos harness).
    pub fault_plan: FaultPlan,
    /// External cancellation: when set, the run token derives from this
    /// token, so firing it (e.g. from a parallel catalog worker's pool)
    /// stops the flow at the next cooperative check exactly like an
    /// expired wall clock.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// No limits, no injections.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// A budget bounded only by total wall-clock time.
    pub fn with_wall_clock(limit: Duration) -> RunBudget {
        RunBudget { wall_clock: Some(limit), ..RunBudget::default() }
    }

    /// Adds a per-stage soft deadline (builder-style).
    #[must_use]
    pub fn stage_timeout(mut self, stage: Stage, limit: Duration) -> RunBudget {
        self.stage_timeouts.push((stage, limit));
        self
    }

    /// Attaches a fault plan (builder-style).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> RunBudget {
        self.fault_plan = plan;
        self
    }

    /// Attaches an external cancel token (builder-style).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> RunBudget {
        self.cancel = Some(token.clone());
        self
    }

    /// The soft deadline duration configured for `stage`, if any.
    fn stage_limit(&self, stage: Stage) -> Option<Duration> {
        self.stage_timeouts.iter().find(|(s, _)| *s == stage).map(|&(_, d)| d)
    }
}

/// The runtime companion of a [`RunBudget`]: owns the run-wide cancel
/// token and records [`Degradation`]s as stages fall back.
#[derive(Debug)]
pub struct Governor {
    budget: RunBudget,
    run_token: CancelToken,
    degradations: Vec<Degradation>,
    stage_outcomes: Vec<StageOutcome>,
}

/// Terminal status of one executed stage, recorded by
/// [`Governor::run_stage`] and surfaced on
/// [`FlowReport::stage_outcomes`](crate::flow::FlowReport::stage_outcomes).
#[derive(Debug, Clone, PartialEq)]
pub enum StageStatus {
    /// The stage body returned `Ok`.
    Ok,
    /// The stage body returned a structured error (rendered).
    Failed(String),
    /// The stage body panicked; the captured payload message — not just a
    /// flag — so a report of a run that tolerated the panic (e.g. a lint
    /// gate) still says *what* blew up.
    Panicked(String),
}

/// One stage's recorded terminal status.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// The stage that ran.
    pub stage: Stage,
    /// How its body ended.
    pub status: StageStatus,
}

/// One graceful-degradation event: a stage hit its budget (or an injected
/// fault) and the flow substituted a cheaper strategy instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The stage that degraded.
    pub stage: Stage,
    /// What was substituted, human-readable.
    pub detail: String,
}

impl Governor {
    /// Starts governing a run: the wall-clock budget begins now, and the
    /// fault plan is resolved — each armed transient fault burns one
    /// charge here, so the plan is static for the run's duration.
    pub fn start(mut budget: RunBudget) -> Governor {
        budget.fault_plan = budget.fault_plan.resolve();
        let deadline = Deadline::within(budget.wall_clock);
        let run_token = match &budget.cancel {
            Some(t) => t.tightened(deadline),
            None => CancelToken::with_deadline(deadline),
        };
        Governor { budget, run_token, degradations: Vec::new(), stage_outcomes: Vec::new() }
    }

    /// The run-wide cancel token (shared flag; wall-clock deadline).
    pub fn run_token(&self) -> &CancelToken {
        &self.run_token
    }

    /// The token a stage should poll: the run token tightened to the
    /// stage's soft deadline. An injected [`Fault::Timeout`] yields an
    /// already-expired deadline — the stage then behaves exactly as if its
    /// time ran out, with no sleeping and no wall-clock dependence.
    pub fn stage_token(&self, stage: Stage) -> CancelToken {
        let soft = if self.budget.fault_plan.has(stage, Fault::Timeout) {
            Deadline::after(Duration::ZERO)
        } else {
            Deadline::within(self.budget.stage_limit(stage))
        };
        self.run_token.tightened(soft)
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.budget.fault_plan
    }

    /// Records a graceful degradation.
    pub fn degrade(&mut self, stage: Stage, detail: impl Into<String>) {
        self.degradations.push(Degradation { stage, detail: detail.into() });
    }

    /// Degradations recorded so far (drained into the final report).
    pub fn take_degradations(&mut self) -> Vec<Degradation> {
        std::mem::take(&mut self.degradations)
    }

    /// Stage outcomes recorded so far (drained into the final report).
    pub fn take_stage_outcomes(&mut self) -> Vec<StageOutcome> {
        std::mem::take(&mut self.stage_outcomes)
    }

    /// Runs a stage body with panic isolation. An injected
    /// [`Fault::Panic`] panics *inside* the guarded region, so injection
    /// exercises the same recovery path a real bug would. The stage's
    /// terminal status (including a captured panic's payload message) is
    /// recorded for [`Governor::take_stage_outcomes`], and an injected
    /// [`Fault::CrashAfter`] aborts the process once the body has
    /// finished — the crash-injection hook of the kill-and-resume
    /// harness.
    ///
    /// `AssertUnwindSafe` is sound here because every stage body either
    /// owns its inputs or only reads shared state; on unwind the flow
    /// aborts (or degrades) without reusing partially-mutated values.
    pub fn run_stage<T>(
        &mut self,
        stage: Stage,
        body: impl FnOnce(&CancelToken) -> Result<T, crate::flow::LockError>,
    ) -> Result<T, crate::flow::LockError> {
        let token = self.stage_token(stage);
        let inject_panic = self.budget.fault_plan.has(stage, Fault::Panic);
        let out = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: panic at stage {stage}");
            }
            body(&token)
        }))
        .unwrap_or_else(|payload| {
            // `&*payload`, not `&payload`: the latter would make the Box
            // itself the `dyn Any` and every downcast would miss.
            Err(crate::flow::LockError::StagePanic { stage, message: panic_message(&*payload) })
        });
        let status = match &out {
            Ok(_) => StageStatus::Ok,
            Err(crate::flow::LockError::StagePanic { message, .. }) => {
                StageStatus::Panicked(message.clone())
            }
            Err(e) => StageStatus::Failed(e.to_string()),
        };
        self.stage_outcomes.push(StageOutcome { stage, status });
        if self.budget.fault_plan.has(stage, Fault::CrashAfter) {
            eprintln!("injected fault: crash after stage {stage}");
            std::process::abort();
        }
        out
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::LockError;

    #[test]
    fn stage_names_are_stable_and_unique() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Stage::ALL.len());
        assert_eq!(format!("{}", Stage::ScanLock), "scan_lock");
    }

    #[test]
    fn fault_plan_lookup() {
        let plan = FaultPlan::none()
            .inject(Stage::Select, Fault::Timeout)
            .inject(Stage::Verify, Fault::Panic);
        assert_eq!(plan.fault_at(Stage::Select), Some(Fault::Timeout));
        assert!(plan.has(Stage::Verify, Fault::Panic));
        assert_eq!(plan.fault_at(Stage::Database), None);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::seeded(7), FaultPlan::seeded(7));
        // Over a seed range, every fault kind shows up (coverage of the
        // selection logic, not a statistical claim).
        let kinds: std::collections::HashSet<_> =
            (0..64u64).filter_map(|s| FaultPlan::seeded(s).injections.first().map(|&(_, f)| f)).collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn run_stage_catches_real_panics() {
        let mut gov = Governor::start(RunBudget::unlimited());
        let out: Result<(), _> = gov.run_stage(Stage::Transform, |_| panic!("boom {}", 42));
        match out {
            Err(LockError::StagePanic { stage, message }) => {
                assert_eq!(stage, Stage::Transform);
                assert!(message.contains("boom 42"), "{message}");
            }
            other => panic!("expected StagePanic, got {other:?}"),
        }
    }

    #[test]
    fn run_stage_injects_panics_inside_the_guard() {
        let budget =
            RunBudget::unlimited().with_faults(FaultPlan::none().inject(Stage::Database, Fault::Panic));
        let mut gov = Governor::start(budget);
        let out = gov.run_stage(Stage::Database, |_| Ok(1));
        assert!(
            matches!(out, Err(LockError::StagePanic { stage: Stage::Database, .. })),
            "got {out:?}"
        );
        // Other stages are unaffected.
        assert_eq!(gov.run_stage(Stage::Select, |_| Ok(2)).unwrap(), 2);
    }

    #[test]
    fn injected_timeout_expires_stage_token_immediately() {
        let budget =
            RunBudget::unlimited().with_faults(FaultPlan::none().inject(Stage::Select, Fault::Timeout));
        let gov = Governor::start(budget);
        assert!(gov.stage_token(Stage::Select).should_stop().is_some());
        assert!(gov.stage_token(Stage::Verify).should_stop().is_none());
    }

    #[test]
    fn stage_token_combines_run_and_stage_deadlines() {
        let budget = RunBudget::with_wall_clock(Duration::from_secs(3600))
            .stage_timeout(Stage::Verify, Duration::ZERO);
        let gov = Governor::start(budget);
        assert!(gov.run_token().should_stop().is_none());
        assert!(gov.stage_token(Stage::Verify).should_stop().is_some());
        assert!(gov.stage_token(Stage::Database).should_stop().is_none());
        // Cancelling the run fires every stage token.
        gov.run_token().cancel();
        assert!(gov.stage_token(Stage::Database).should_stop().is_some());
    }

    #[test]
    fn transient_faults_burn_one_charge_per_start() {
        let plan = FaultPlan::none().inject_transient(Stage::Verify, Fault::Panic, 2);
        let budget = RunBudget::unlimited().with_faults(plan);
        // First two governed runs see the fault; the third does not. The
        // cloned budgets share the charge counter.
        for expect_fault in [true, true, false] {
            let mut gov = Governor::start(budget.clone());
            let out = gov.run_stage(Stage::Verify, |_| Ok(()));
            assert_eq!(
                matches!(out, Err(LockError::StagePanic { .. })),
                expect_fault,
                "got {out:?}"
            );
        }
    }

    #[test]
    fn resolve_folds_transients_into_static_injections() {
        let plan = FaultPlan::none()
            .inject(Stage::Select, Fault::Timeout)
            .inject_transient(Stage::Verify, Fault::EmptyResult, 1);
        let first = plan.resolve();
        assert!(first.has(Stage::Select, Fault::Timeout));
        assert!(first.has(Stage::Verify, Fault::EmptyResult));
        let second = plan.resolve();
        assert!(second.has(Stage::Select, Fault::Timeout), "static injections persist");
        assert_eq!(second.fault_at(Stage::Verify), None, "charge exhausted");
    }

    #[test]
    fn seeded_plans_never_draw_crash_after() {
        // CrashAfter aborts the whole process; a seeded chaos plan must
        // never pick it.
        for seed in 0..256u64 {
            let plan = FaultPlan::seeded(seed);
            for stage in Stage::ALL {
                assert_ne!(plan.fault_at(stage), Some(Fault::CrashAfter), "seed {seed}");
            }
        }
    }

    #[test]
    fn stage_outcomes_record_status_and_panic_payload() {
        let budget =
            RunBudget::unlimited().with_faults(FaultPlan::none().inject(Stage::Verify, Fault::Panic));
        let mut gov = Governor::start(budget);
        let _ = gov.run_stage(Stage::Elaborate, |_| Ok(1));
        let _: Result<(), _> =
            gov.run_stage(Stage::Select, |_| Err(LockError::SelectionInfeasible));
        let _ = gov.run_stage(Stage::Verify, |_| Ok(2));
        let outcomes = gov.take_stage_outcomes();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].status, StageStatus::Ok);
        assert!(matches!(&outcomes[1].status, StageStatus::Failed(m) if m.contains("infeasible")));
        match &outcomes[2].status {
            StageStatus::Panicked(m) => {
                assert!(m.contains("injected fault: panic at stage verify"), "{m}")
            }
            other => panic!("expected panic payload, got {other:?}"),
        }
        assert!(gov.take_stage_outcomes().is_empty(), "drained");
    }

    #[test]
    fn degradations_accumulate_and_drain() {
        let mut gov = Governor::start(RunBudget::unlimited());
        gov.degrade(Stage::Select, "greedy fallback");
        gov.degrade(Stage::Verify, "partial cycles");
        let d = gov.take_degradations();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].stage, Stage::Select);
        assert!(gov.take_degradations().is_empty());
    }
}
