//! Case selection (step 4): the ILP of Equations 1–2, plus a greedy
//! baseline used by the selection ablation bench.
//!
//! * resilience row: `Σ Tᵢ·Cᵢ · (1 + addedRes%) ≥ T_spec`
//! * area row: `Σ Aᵢ·Cᵢ · (1 − sharedOv%) ≤ A_spec`
//! * mutual exclusion: `Σⱼ C_pj ≤ 1` per locking point `p`
//! * optional key-size floor: `Σ kᵢ·Cᵢ ≥ K_spec`
//! * objective: `min Σ Cᵢ`

use crate::candidates::Candidate;
use crate::database::Database;
use rtlock_governor::CancelToken;
use rtlock_ilp::{IlpProblem, Sense};
use std::collections::HashMap;

/// Designer specification (the constraint side of Equation 1).
#[derive(Debug, Clone, Copy)]
pub struct SelectionSpec {
    /// Minimum combined attack resilience (same units as the database's
    /// resilience score).
    pub min_resilience: f64,
    /// Maximum combined area overhead in percent.
    pub max_area_pct: f64,
    /// Minimum total key bits (0 disables the row).
    pub min_key_bits: usize,
    /// The paper's "(% added Res.)" correction for merged cases, 10–20.
    pub added_res_pct: f64,
    /// The paper's "(% shared Ov.)" correction for shared hardware, 10–20.
    pub shared_ov_pct: f64,
}

impl Default for SelectionSpec {
    fn default() -> Self {
        SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 15.0,
            min_key_bits: 0,
            added_res_pct: 15.0,
            shared_ov_pct: 15.0,
        }
    }
}

/// How a bounded selection attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectOutcome {
    /// A (proven or incumbent) selection was found.
    Selected(Vec<usize>),
    /// The budget fired before any feasible selection was found; nothing
    /// is proven — callers should fall back to greedy selection.
    TimedOut,
    /// The specification is proven infeasible.
    Infeasible,
}

/// Selects cases with the exact ILP. Returns candidate indices, or `None`
/// when the specification is infeasible.
pub fn select_ilp(db: &Database, candidates: &[Candidate], spec: &SelectionSpec) -> Option<Vec<usize>> {
    match select_ilp_bounded(db, candidates, spec, &CancelToken::unlimited()) {
        SelectOutcome::Selected(sel) => Some(sel),
        SelectOutcome::TimedOut | SelectOutcome::Infeasible => None,
    }
}

/// Budget-aware ILP selection: the branch-and-bound polls `cancel` and, if
/// stopped before finding any feasible cover, reports
/// [`SelectOutcome::TimedOut`] so the caller can degrade to greedy
/// selection instead of treating the spec as infeasible.
pub fn select_ilp_bounded(
    db: &Database,
    candidates: &[Candidate],
    spec: &SelectionSpec,
    cancel: &CancelToken,
) -> SelectOutcome {
    let rows: Vec<&crate::database::CaseMetrics> = db.viable_cases().collect();
    if rows.is_empty() {
        return SelectOutcome::Infeasible;
    }
    let mut p = IlpProblem::minimize(vec![1.0; rows.len()]);
    let res_scale = 1.0 + spec.added_res_pct / 100.0;
    let ov_scale = 1.0 - spec.shared_ov_pct / 100.0;
    p.add_constraint(
        rows.iter().enumerate().map(|(v, c)| (v, c.resilience * res_scale)).collect(),
        Sense::Ge,
        spec.min_resilience,
    );
    p.add_constraint(
        rows.iter().enumerate().map(|(v, c)| (v, c.area_overhead_pct * ov_scale)).collect(),
        Sense::Le,
        spec.max_area_pct,
    );
    if spec.min_key_bits > 0 {
        p.add_constraint(
            rows.iter().enumerate().map(|(v, c)| (v, c.key_size as f64)).collect(),
            Sense::Ge,
            spec.min_key_bits as f64,
        );
    }
    // Mutual exclusion per locking point.
    let mut by_point: HashMap<String, Vec<usize>> = HashMap::new();
    for (v, c) in rows.iter().enumerate() {
        by_point.entry(candidates[c.candidate_index].point_id()).or_default().push(v);
    }
    for group in by_point.values() {
        if group.len() > 1 {
            p.add_mutual_exclusion(group);
        }
    }
    let outcome = p.solve_with(cancel);
    match outcome.solution {
        Some(sol) => SelectOutcome::Selected(
            sol.assignment
                .iter()
                .enumerate()
                .filter(|(_, &x)| x)
                .map(|(v, _)| rows[v].candidate_index)
                .collect(),
        ),
        // No feasible cover found: only a *complete* search proves
        // infeasibility; an interrupted one proves nothing.
        None if outcome.complete => SelectOutcome::Infeasible,
        None => SelectOutcome::TimedOut,
    }
}

/// Greedy alternative (best resilience-per-area first) for the ablation
/// study; respects mutual exclusion and the area budget, stops once the
/// resilience and key targets are met.
pub fn select_greedy(db: &Database, candidates: &[Candidate], spec: &SelectionSpec) -> Vec<usize> {
    let mut rows: Vec<&crate::database::CaseMetrics> = db.viable_cases().collect();
    rows.sort_by(|a, b| {
        let ra = a.resilience / a.area_overhead_pct.max(0.1);
        let rb = b.resilience / b.area_overhead_pct.max(0.1);
        rb.total_cmp(&ra)
    });
    let res_scale = 1.0 + spec.added_res_pct / 100.0;
    let ov_scale = 1.0 - spec.shared_ov_pct / 100.0;
    let mut chosen = Vec::new();
    let mut used_points = Vec::new();
    let mut res = 0.0;
    let mut area = 0.0;
    let mut key_bits = 0usize;
    for c in rows {
        let point = candidates[c.candidate_index].point_id();
        if used_points.contains(&point) {
            continue;
        }
        if area + c.area_overhead_pct * ov_scale > spec.max_area_pct {
            continue;
        }
        chosen.push(c.candidate_index);
        used_points.push(point);
        res += c.resilience * res_scale;
        area += c.area_overhead_pct * ov_scale;
        key_bits += c.key_size;
        if res >= spec.min_resilience && key_bits >= spec.min_key_bits {
            break;
        }
    }
    chosen.sort();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{Candidate, ConstMode};
    use crate::database::{CaseMetrics, Database};
    use rtlock_rtl::cdfg::SiteLoc;
    use rtlock_rtl::Bv;

    fn fake_candidate(i: usize) -> Candidate {
        Candidate::Constant {
            loc: SiteLoc::Assign { index: i },
            ordinal: 0,
            value: Bv::from_u64(8, 7),
            mode: ConstMode::XorMask,
            key_bits: 4,
        }
    }

    fn row(i: usize, res: f64, area: f64, keys: usize) -> CaseMetrics {
        CaseMetrics {
            candidate_index: i,
            key_size: keys,
            area_overhead_pct: area,
            resilience: res,
            corruption: 0.5,
            ml_bias: 0.0,
            viable: true,
            label: format!("c{i}"),
        }
    }

    #[test]
    fn ilp_picks_minimum_cases() {
        let candidates: Vec<Candidate> = (0..4).map(fake_candidate).collect();
        let db = Database {
            cases: vec![row(0, 80.0, 6.0, 4), row(1, 30.0, 2.0, 4), row(2, 60.0, 5.0, 4), row(3, 10.0, 1.0, 4)],
        };
        let spec = SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 12.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        let sel = select_ilp(&db, &candidates, &spec).unwrap();
        assert_eq!(sel, vec![0, 2], "two cheapest-count covering cases");
    }

    #[test]
    fn mutual_exclusion_respected() {
        // Candidates 0 and 1 share the same locking point.
        let mut candidates: Vec<Candidate> = (0..3).map(fake_candidate).collect();
        candidates[1] = match fake_candidate(0) {
            Candidate::Constant { loc, ordinal, value, key_bits, .. } => {
                Candidate::Constant { loc, ordinal, value, mode: ConstMode::Substitute, key_bits }
            }
            _ => unreachable!(),
        };
        let db = Database { cases: vec![row(0, 60.0, 3.0, 4), row(1, 60.0, 3.0, 4), row(2, 60.0, 3.0, 4)] };
        let spec = SelectionSpec {
            min_resilience: 110.0,
            max_area_pct: 20.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        let sel = select_ilp(&db, &candidates, &spec).unwrap();
        assert!(!(sel.contains(&0) && sel.contains(&1)), "exclusive cases: {sel:?}");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn infeasible_spec_returns_none() {
        let candidates: Vec<Candidate> = (0..2).map(fake_candidate).collect();
        let db = Database { cases: vec![row(0, 10.0, 10.0, 4), row(1, 10.0, 10.0, 4)] };
        let spec = SelectionSpec {
            min_resilience: 1000.0,
            max_area_pct: 5.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        assert!(select_ilp(&db, &candidates, &spec).is_none());
    }

    #[test]
    fn corrections_change_feasibility() {
        let candidates: Vec<Candidate> = (0..2).map(fake_candidate).collect();
        let db = Database { cases: vec![row(0, 50.0, 8.0, 4), row(1, 45.0, 8.0, 4)] };
        // Without addedRes: 95 < 100 infeasible; with 10%: 104.5 feasible.
        let strict = SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 16.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        assert!(select_ilp(&db, &candidates, &strict).is_none());
        let with_bonus = SelectionSpec { added_res_pct: 10.0, ..strict };
        assert!(select_ilp(&db, &candidates, &with_bonus).is_some());
    }

    #[test]
    fn greedy_respects_budget_and_exclusion() {
        let candidates: Vec<Candidate> = (0..4).map(fake_candidate).collect();
        let db = Database {
            cases: vec![row(0, 80.0, 6.0, 4), row(1, 30.0, 2.0, 4), row(2, 60.0, 5.0, 4), row(3, 10.0, 1.0, 4)],
        };
        let spec = SelectionSpec {
            min_resilience: 1e9, // unreachable: greedy packs the budget
            max_area_pct: 8.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        let sel = select_greedy(&db, &candidates, &spec);
        let area: f64 = sel
            .iter()
            .map(|&i| db.cases.iter().find(|c| c.candidate_index == i).unwrap().area_overhead_pct)
            .sum();
        assert!(area <= 8.0 + 1e-9, "area {area}");
        assert!(!sel.is_empty());
    }

    #[test]
    fn bounded_select_reports_timeout_not_infeasible() {
        use rtlock_governor::{CancelToken, Deadline};
        use std::time::Duration;
        let candidates: Vec<Candidate> = (0..4).map(fake_candidate).collect();
        let db = Database {
            cases: vec![row(0, 80.0, 6.0, 4), row(1, 30.0, 2.0, 4), row(2, 60.0, 5.0, 4), row(3, 10.0, 1.0, 4)],
        };
        let spec = SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 12.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        let expired = CancelToken::with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(select_ilp_bounded(&db, &candidates, &spec, &expired), SelectOutcome::TimedOut);
        // The same spec with an unlimited token is solvable — the timeout
        // verdict came from the budget, not the model.
        assert!(matches!(
            select_ilp_bounded(&db, &candidates, &spec, &CancelToken::unlimited()),
            SelectOutcome::Selected(_)
        ));
    }

    #[test]
    fn bounded_select_proves_infeasibility_when_complete() {
        use rtlock_governor::CancelToken;
        let candidates: Vec<Candidate> = (0..2).map(fake_candidate).collect();
        let db = Database { cases: vec![row(0, 10.0, 10.0, 4), row(1, 10.0, 10.0, 4)] };
        let spec = SelectionSpec {
            min_resilience: 1000.0,
            max_area_pct: 5.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 0,
        };
        assert_eq!(
            select_ilp_bounded(&db, &candidates, &spec, &CancelToken::unlimited()),
            SelectOutcome::Infeasible
        );
    }

    #[test]
    fn key_floor_forces_more_cases() {
        let candidates: Vec<Candidate> = (0..3).map(fake_candidate).collect();
        let db = Database { cases: vec![row(0, 200.0, 2.0, 4), row(1, 5.0, 2.0, 4), row(2, 5.0, 2.0, 4)] };
        let spec = SelectionSpec {
            min_resilience: 100.0,
            max_area_pct: 20.0,
            added_res_pct: 0.0,
            shared_ov_pct: 0.0,
            min_key_bits: 12,
        };
        let sel = select_ilp(&db, &candidates, &spec).unwrap();
        assert_eq!(sel.len(), 3, "key floor requires all three");
    }
}
