//! Threat-model capability matrix (Table I and Fig. 1).
//!
//! Encodes, per technique, which threats are covered — the qualitative
//! comparison the paper opens with. `table1` regenerates the table.

use std::fmt;

/// Protection status against a threat class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Protected.
    Yes,
    /// Not protected.
    No,
    /// Protected when combined with encryption/management (P1735).
    WithEncryption,
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coverage::Yes => write!(f, "yes"),
            Coverage::No => write!(f, "no"),
            Coverage::WithEncryption => write!(f, "yes (with P1735)"),
        }
    }
}

/// One row of the Table I comparison.
#[derive(Debug, Clone)]
pub struct TechniqueRow {
    /// Technique name.
    pub technique: &'static str,
    /// Against insider threats.
    pub insider: Coverage,
    /// Against oracle-less piracy.
    pub oracle_less: Coverage,
    /// Against oracle-guided piracy.
    pub oracle_guided: Coverage,
    /// Known breaking attacks.
    pub broken_by: &'static str,
}

/// The Table I rows as the paper reports them, with RTLock last.
pub fn table1_rows() -> Vec<TechniqueRow> {
    vec![
        TechniqueRow {
            technique: "ASSURE [25]",
            insider: Coverage::No,
            oracle_less: Coverage::Yes,
            oracle_guided: Coverage::No,
            broken_by: "SAT [4], ML-based [27]",
        },
        TechniqueRow {
            technique: "ASSURE + Scan [26]",
            insider: Coverage::No,
            oracle_less: Coverage::Yes,
            oracle_guided: Coverage::Yes,
            broken_by: "ML-based [27]",
        },
        TechniqueRow {
            technique: "ML-resilient ASSURE [27]",
            insider: Coverage::No,
            oracle_less: Coverage::Yes,
            oracle_guided: Coverage::No,
            broken_by: "SAT [4]",
        },
        TechniqueRow {
            technique: "RTLock (this work)",
            insider: Coverage::WithEncryption,
            oracle_less: Coverage::Yes,
            oracle_guided: Coverage::Yes,
            broken_by: "-",
        },
    ]
}

/// Renders Table I as aligned text.
pub fn render_table1() -> String {
    let rows = table1_rows();
    let mut s = String::new();
    s.push_str(&format!(
        "{:<26} {:<18} {:<12} {:<14} {}\n",
        "Technique", "Insider Threats", "Oracle-less", "Oracle-guided", "Broken by"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<26} {:<18} {:<12} {:<14} {}\n",
            r.technique,
            r.insider.to_string(),
            r.oracle_less.to_string(),
            r.oracle_guided.to_string(),
            r.broken_by
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtlock_row_claims_the_full_matrix() {
        let rows = table1_rows();
        let rtlock = rows.last().unwrap();
        assert_eq!(rtlock.insider, Coverage::WithEncryption);
        assert_eq!(rtlock.oracle_guided, Coverage::Yes);
        assert_eq!(rtlock.broken_by, "-");
    }

    #[test]
    fn rendering_contains_all_rows() {
        let text = render_table1();
        for r in table1_rows() {
            assert!(text.contains(r.technique), "{}", r.technique);
        }
    }
}
