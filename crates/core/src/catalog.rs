//! Parallel catalog runs: the full lock→verify→attack pipeline over a set
//! of designs, with a deterministic merged report.
//!
//! [`lock_catalog_parallel`] fans the per-design pipelines out over an
//! [`Executor`]; [`lock_catalog_sequential`] is its single-threaded twin.
//! Both produce a [`CatalogReport`] whose entries sit in **input order**
//! regardless of which worker finished first, and whose
//! [`canonical`](CatalogReport::canonical) rendering excludes every
//! wall-clock quantity — so the two functions (at any thread count) are
//! byte-identical whenever the run is budgeted by iterations rather than
//! time. The determinism suite diffs exactly that.
//!
//! Cancellation composes hierarchically: the run-wide token passed in is
//! the parent of each worker's token (via the executor) and of each
//! design's [`RunBudget::cancel`] and portfolio tokens, so one `cancel()`
//! drains the whole catalog at the next cooperative checks.

use crate::flow::{lock_governed, AttackSurface, FlowReport, LockError, RtlLockConfig};
use crate::governor::RunBudget;
use rtlock_attacks::portfolio::{
    portfolio_attack_sequential, PortfolioConfig, PortfolioTarget, PortfolioVerdict,
};
use rtlock_exec::{Executor, TaskError};
use rtlock_governor::CancelToken;
use rtlock_rtl::Module;
use std::fmt::Write as _;

/// One design to push through the pipeline.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Design name (report key).
    pub name: String,
    /// Parsed RTL.
    pub module: Module,
    /// Locking configuration for this design.
    pub config: RtlLockConfig,
}

impl CatalogEntry {
    /// Entry for a named benchmark from `rtlock_designs`' catalog.
    ///
    /// # Errors
    ///
    /// [`LockError::Synthesis`] when the benchmark is unknown or fails to
    /// parse.
    pub fn benchmark(name: &str, config: RtlLockConfig) -> Result<CatalogEntry, LockError> {
        let bench = rtlock_designs::by_name(name)
            .ok_or_else(|| LockError::Synthesis(format!("unknown benchmark {name}")))?;
        let module =
            bench.module().map_err(|e| LockError::Synthesis(format!("{name}: {e}")))?;
        Ok(CatalogEntry { name: name.to_owned(), module, config })
    }
}

/// Catalog-wide settings shared by every entry.
#[derive(Debug, Clone)]
pub struct CatalogJob {
    /// The designs, in report order.
    pub entries: Vec<CatalogEntry>,
    /// Budget template for each design's flow run (its `cancel` field is
    /// replaced with the worker's token).
    pub budget: RunBudget,
    /// Portfolio configuration for the attack stage; `None` skips attacks.
    pub portfolio: Option<PortfolioConfig>,
}

/// What happened to one design.
#[derive(Debug, Clone)]
pub enum DesignStatus {
    /// The pipeline completed (locking succeeded).
    Done(Box<DesignSummary>),
    /// The flow returned a structured error.
    Failed(LockError),
    /// The design never ran (or its slot was skipped) because the run was
    /// cancelled first.
    Cancelled(String),
    /// The design's task panicked inside the pool.
    Panicked(String),
}

/// The per-design artifacts the merged report keeps.
#[derive(Debug, Clone)]
pub struct DesignSummary {
    /// Flow statistics.
    pub report: FlowReport,
    /// Functional key length.
    pub key_bits: usize,
    /// Portfolio verdict, when attacks were requested.
    pub verdict: Option<PortfolioVerdict>,
}

/// The merged catalog report, entries in input order.
#[derive(Debug, Clone)]
pub struct CatalogReport {
    /// `(name, status)` per design, in the order of [`CatalogJob::entries`].
    pub designs: Vec<(String, DesignStatus)>,
}

impl CatalogReport {
    /// A canonical text rendering excluding every wall-clock field; two
    /// runs that did the same logical work serialize identically no matter
    /// how many workers they used.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for (name, status) in &self.designs {
            let _ = writeln!(s, "== {name} ==");
            match status {
                DesignStatus::Done(d) => {
                    let r = &d.report;
                    let _ = writeln!(s, "key_bits: {}", d.key_bits);
                    let _ = writeln!(
                        s,
                        "flow: candidates={} viable={} used_ilp={} selected={:?} applied={:?}",
                        r.candidates_enumerated, r.viable_cases, r.used_ilp, r.selected, r.applied
                    );
                    let _ = writeln!(
                        s,
                        "verify: mismatch={:.6} corruption={:.6} partial={}",
                        r.verified_mismatch_rate, r.corruption, r.partial_verification
                    );
                    for deg in &r.degradations {
                        let _ = writeln!(s, "degraded: {}: {}", deg.stage, deg.detail);
                    }
                    match &d.verdict {
                        Some(v) => {
                            for line in v.canonical().lines() {
                                let _ = writeln!(s, "attack.{line}");
                            }
                        }
                        None => s.push_str("attack: skipped\n"),
                    }
                }
                DesignStatus::Failed(e) => {
                    let _ = writeln!(s, "failed: {e}");
                }
                DesignStatus::Cancelled(reason) => {
                    let _ = writeln!(s, "cancelled: {reason}");
                }
                DesignStatus::Panicked(msg) => {
                    let _ = writeln!(s, "panicked: {msg}");
                }
            }
        }
        s
    }

    /// Count of designs whose pipeline completed.
    pub fn completed(&self) -> usize {
        self.designs.iter().filter(|(_, st)| matches!(st, DesignStatus::Done(_))).count()
    }
}

/// Runs one design end to end under `token`.
fn run_design(
    entry: &CatalogEntry,
    job: &CatalogJob,
    token: &CancelToken,
) -> Result<DesignSummary, LockError> {
    let budget = RunBudget { cancel: Some(token.clone()), ..job.budget.clone() };
    let locked = lock_governed(&entry.module, &entry.config, &budget)?;
    let verdict = match &job.portfolio {
        Some(portfolio) => {
            let surface = locked.attack_surface(None)?;
            let target = match &surface {
                AttackSurface::CombinationalViews { locked, original } => {
                    PortfolioTarget { comb: Some((locked, original)), seq: None }
                }
                AttackSurface::SequentialOnly { locked, original } => {
                    PortfolioTarget { comb: None, seq: Some((locked, original)) }
                }
            };
            Some(portfolio_attack_sequential(&target, portfolio, &token.child()))
        }
        None => None,
    };
    Ok(DesignSummary { report: locked.report, key_bits: locked.key.len(), verdict })
}

fn status_of(result: Result<DesignSummary, LockError>) -> DesignStatus {
    match result {
        Ok(summary) => DesignStatus::Done(Box::new(summary)),
        Err(e) => DesignStatus::Failed(e),
    }
}

/// Runs every entry's pipeline across `executor`'s workers. Results are
/// merged in entry order; see the module docs for the determinism
/// guarantee.
pub fn lock_catalog_parallel(
    job: &CatalogJob,
    executor: &Executor,
    token: &CancelToken,
) -> CatalogReport {
    let indices: Vec<usize> = (0..job.entries.len()).collect();
    let results = executor.map(token, indices, |_, i, worker_token| {
        run_design(&job.entries[i], job, worker_token)
    });
    let designs = job
        .entries
        .iter()
        .zip(results)
        .map(|(entry, res)| {
            let status = match res {
                Ok(r) => status_of(r),
                Err(TaskError::Cancelled(reason)) => DesignStatus::Cancelled(format!("{reason:?}")),
                Err(TaskError::Panicked(msg)) => DesignStatus::Panicked(msg),
            };
            (entry.name.clone(), status)
        })
        .collect();
    CatalogReport { designs }
}

/// The sequential twin of [`lock_catalog_parallel`]: same pipeline, same
/// merge order, one design at a time on the calling thread.
pub fn lock_catalog_sequential(job: &CatalogJob, token: &CancelToken) -> CatalogReport {
    let designs = job
        .entries
        .iter()
        .map(|entry| {
            let status = match token.should_stop() {
                Some(reason) => DesignStatus::Cancelled(format!("{reason:?}")),
                None => status_of(run_design(entry, job, token)),
            };
            (entry.name.clone(), status)
        })
        .collect();
    CatalogReport { designs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseConfig;
    use crate::select::SelectionSpec;

    fn tiny_module(tag: u8) -> Module {
        rtlock_rtl::parse(&format!(
            r#"
module tiny{tag}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h2{};
  end
endmodule"#,
            13 + tag,
            tag % 10
        ))
        .expect("parses")
    }

    fn quick_config() -> RtlLockConfig {
        RtlLockConfig {
            database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
            spec: SelectionSpec {
                min_resilience: 30.0,
                max_area_pct: 40.0,
                ..SelectionSpec::default()
            },
            verify_cycles: 16,
            scan: None,
            ..RtlLockConfig::default()
        }
    }

    fn tiny_job(n: u8) -> CatalogJob {
        CatalogJob {
            entries: (0..n)
                .map(|i| CatalogEntry {
                    name: format!("tiny{i}"),
                    module: tiny_module(i),
                    config: quick_config(),
                })
                .collect(),
            budget: RunBudget::unlimited(),
            portfolio: None,
        }
    }

    #[test]
    fn parallel_merge_preserves_entry_order() {
        let job = tiny_job(3);
        let report = lock_catalog_parallel(&job, &Executor::new(3), &CancelToken::unlimited());
        let names: Vec<&str> = report.designs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["tiny0", "tiny1", "tiny2"]);
        assert_eq!(report.completed(), 3, "{}", report.canonical());
    }

    #[test]
    fn parallel_canonical_matches_sequential() {
        let job = tiny_job(3);
        let reference = lock_catalog_sequential(&job, &CancelToken::unlimited()).canonical();
        for threads in [1, 2, 4] {
            let report =
                lock_catalog_parallel(&job, &Executor::new(threads), &CancelToken::unlimited());
            assert_eq!(report.canonical(), reference, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_run_reports_cancelled_designs() {
        let job = tiny_job(2);
        let token = CancelToken::unlimited();
        token.cancel();
        let par = lock_catalog_parallel(&job, &Executor::new(2), &token);
        let seq = lock_catalog_sequential(&job, &token);
        assert_eq!(par.canonical(), seq.canonical());
        assert!(par
            .designs
            .iter()
            .all(|(_, st)| matches!(st, DesignStatus::Cancelled(_))), "{}", par.canonical());
    }

    #[test]
    fn unknown_benchmark_is_a_structured_error() {
        assert!(matches!(
            CatalogEntry::benchmark("nope", quick_config()),
            Err(LockError::Synthesis(_))
        ));
    }
}
