//! Parallel catalog runs: the full lock→verify→attack pipeline over a set
//! of designs, with a deterministic merged report.
//!
//! [`lock_catalog_parallel`] fans the per-design pipelines out over an
//! [`Executor`]; [`lock_catalog_sequential`] is its single-threaded twin.
//! Both produce a [`CatalogReport`] whose entries sit in **input order**
//! regardless of which worker finished first, and whose
//! [`canonical`](CatalogReport::canonical) rendering excludes every
//! wall-clock quantity — so the two functions (at any thread count) are
//! byte-identical whenever the run is budgeted by iterations rather than
//! time. The determinism suite diffs exactly that.
//!
//! Cancellation composes hierarchically: the run-wide token passed in is
//! the parent of each worker's token (via the executor) and of each
//! design's [`RunBudget::cancel`] and portfolio tokens, so one `cancel()`
//! drains the whole catalog at the next cooperative checks.

use crate::flow::{lock_governed_cached, AttackSurface, FlowReport, LockError, RtlLockConfig};
use crate::governor::RunBudget;
use crate::journal::{self, CampaignJournal};
use rtlock_artifacts::ArtifactStore;
use rtlock_attacks::portfolio::{
    portfolio_attack_sequential, PortfolioConfig, PortfolioTarget, PortfolioVerdict,
};
use rtlock_exec::{
    panic_message, Executor, RetryRecord, SupervisedEvent, TaskError, TaskResult,
};
use rtlock_store::{ErrorClass, Event, RetryPolicy};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use rtlock_governor::CancelToken;
use rtlock_rtl::Module;

/// One design to push through the pipeline.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Design name (report key).
    pub name: String,
    /// Parsed RTL.
    pub module: Module,
    /// Locking configuration for this design.
    pub config: RtlLockConfig,
}

impl CatalogEntry {
    /// Entry for a named benchmark from `rtlock_designs`' catalog.
    ///
    /// # Errors
    ///
    /// [`LockError::Synthesis`] when the benchmark is unknown or fails to
    /// parse.
    pub fn benchmark(name: &str, config: RtlLockConfig) -> Result<CatalogEntry, LockError> {
        let bench = rtlock_designs::by_name(name)
            .ok_or_else(|| LockError::Synthesis(format!("unknown benchmark {name}")))?;
        let module =
            bench.module().map_err(|e| LockError::Synthesis(format!("{name}: {e}")))?;
        Ok(CatalogEntry { name: name.to_owned(), module, config })
    }
}

/// Catalog-wide settings shared by every entry.
#[derive(Debug, Clone)]
pub struct CatalogJob {
    /// The designs, in report order.
    pub entries: Vec<CatalogEntry>,
    /// Budget template for each design's flow run (its `cancel` field is
    /// replaced with the worker's token).
    pub budget: RunBudget,
    /// Portfolio configuration for the attack stage; `None` skips attacks.
    pub portfolio: Option<PortfolioConfig>,
    /// Retry policy for the per-design supervisor: transient failures
    /// (stage panics, budget exhaustion) re-run the design in place after
    /// a deterministic backoff; permanent errors never retry. The default
    /// policy (one attempt) disables retries.
    pub retry: RetryPolicy,
    /// Content-addressed artifact cache shared by every design's flow and
    /// attack run (and across catalog runs when the same store is reused).
    /// `None` disables caching; the report is byte-identical either way.
    pub cache: Option<Arc<ArtifactStore>>,
}

/// What happened to one design.
#[derive(Debug, Clone)]
pub enum DesignStatus {
    /// The pipeline completed (locking succeeded).
    Done(Box<DesignSummary>),
    /// The flow returned a structured error.
    Failed(LockError),
    /// The design never ran (or its slot was skipped) because the run was
    /// cancelled first.
    Cancelled(String),
    /// The design's task panicked inside the pool.
    Panicked(String),
    /// The design's final status was recovered from a campaign journal; a
    /// resumed run did not re-execute it. The stored body replays
    /// byte-for-byte in [`CatalogReport::canonical`].
    Replayed(ReplayedDesign),
}

/// A design status recovered from a journal (see
/// [`lock_catalog_resumable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedDesign {
    /// Design name, cross-checked against the job's entry at that index.
    pub name: String,
    /// Whether the recorded status was a completed pipeline
    /// ([`DesignStatus::Done`]).
    pub completed: bool,
    /// The canonical report body recorded when the design finished.
    pub body: String,
}

impl DesignStatus {
    /// The canonical report section for this design — every line below
    /// its `== name ==` header, excluding all wall-clock quantities. This
    /// is the text the journal stores and a resumed run replays verbatim.
    pub fn canonical_body(&self) -> String {
        let mut s = String::new();
        match self {
            DesignStatus::Done(d) => {
                let r = &d.report;
                let _ = writeln!(s, "key_bits: {}", d.key_bits);
                let _ = writeln!(
                    s,
                    "flow: candidates={} viable={} used_ilp={} selected={:?} applied={:?}",
                    r.candidates_enumerated, r.viable_cases, r.used_ilp, r.selected, r.applied
                );
                let _ = writeln!(
                    s,
                    "verify: mismatch={:.6} corruption={:.6} partial={}",
                    r.verified_mismatch_rate, r.corruption, r.partial_verification
                );
                for deg in &r.degradations {
                    let _ = writeln!(s, "degraded: {}: {}", deg.stage, deg.detail);
                }
                match &d.verdict {
                    Some(v) => {
                        for line in v.canonical().lines() {
                            let _ = writeln!(s, "attack.{line}");
                        }
                    }
                    None => s.push_str("attack: skipped\n"),
                }
            }
            DesignStatus::Failed(e) => {
                let _ = writeln!(s, "failed: {e}");
            }
            DesignStatus::Cancelled(reason) => {
                let _ = writeln!(s, "cancelled: {reason}");
            }
            DesignStatus::Panicked(msg) => {
                let _ = writeln!(s, "panicked: {msg}");
            }
            DesignStatus::Replayed(r) => s.push_str(&r.body),
        }
        s
    }

    /// Whether this status represents a completed pipeline (directly or
    /// via replay).
    pub fn is_completed(&self) -> bool {
        match self {
            DesignStatus::Done(_) => true,
            DesignStatus::Replayed(r) => r.completed,
            _ => false,
        }
    }
}

/// The per-design artifacts the merged report keeps.
#[derive(Debug, Clone)]
pub struct DesignSummary {
    /// Flow statistics.
    pub report: FlowReport,
    /// Functional key length.
    pub key_bits: usize,
    /// Portfolio verdict, when attacks were requested.
    pub verdict: Option<PortfolioVerdict>,
}

/// The merged catalog report, entries in input order.
#[derive(Debug, Clone)]
pub struct CatalogReport {
    /// `(name, status)` per design, in the order of [`CatalogJob::entries`].
    pub designs: Vec<(String, DesignStatus)>,
    /// Every failed supervised attempt, sorted by `(design index,
    /// attempt)`. Excluded from [`canonical`](CatalogReport::canonical):
    /// retries describe how the run got there, not what it produced.
    pub retries: Vec<RetryRecord>,
}

impl CatalogReport {
    /// A canonical text rendering excluding every wall-clock field; two
    /// runs that did the same logical work serialize identically no matter
    /// how many workers they used — and a resumed run replays journaled
    /// designs byte-for-byte.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for (name, status) in &self.designs {
            let _ = writeln!(s, "== {name} ==");
            s.push_str(&status.canonical_body());
        }
        s
    }

    /// Count of designs whose pipeline completed (including replayed
    /// completions).
    pub fn completed(&self) -> usize {
        self.designs.iter().filter(|(_, st)| st.is_completed()).count()
    }
}

/// Runs one design end to end under `token`.
fn run_design(
    entry: &CatalogEntry,
    job: &CatalogJob,
    token: &CancelToken,
) -> Result<DesignSummary, LockError> {
    let budget = RunBudget { cancel: Some(token.clone()), ..job.budget.clone() };
    let locked = lock_governed_cached(&entry.module, &entry.config, &budget, job.cache.clone())?;
    let verdict = match &job.portfolio {
        Some(portfolio) => {
            let surface = locked.attack_surface(None)?;
            let target = match &surface {
                AttackSurface::CombinationalViews { locked, original } => {
                    PortfolioTarget { comb: Some((locked, original)), seq: None }
                }
                AttackSurface::SequentialOnly { locked, original } => {
                    PortfolioTarget { comb: None, seq: Some((locked, original)) }
                }
            };
            let mut portfolio = portfolio.clone();
            if portfolio.cache.is_none() {
                portfolio.cache = job.cache.clone();
            }
            Some(portfolio_attack_sequential(&target, &portfolio, &token.child()))
        }
        None => None,
    };
    Ok(DesignSummary { report: locked.report, key_bits: locked.key.len(), verdict })
}

/// Collapses one supervised task result into a design status.
fn status_of(result: TaskResult<Result<DesignSummary, LockError>>) -> DesignStatus {
    match result {
        Ok(Ok(summary)) => DesignStatus::Done(Box::new(summary)),
        Ok(Err(e)) => DesignStatus::Failed(e),
        Err(TaskError::Cancelled(reason)) => DesignStatus::Cancelled(format!("{reason:?}")),
        Err(TaskError::Panicked(msg)) => DesignStatus::Panicked(msg),
    }
}

/// The shared supervisor classification: panics and budget exhaustion
/// are transient (a fresh attempt can succeed), structural flow errors
/// are permanent (re-running reaches the same error), successes and
/// cancellations are definitive.
fn classify_design(
    result: &TaskResult<Result<DesignSummary, LockError>>,
) -> Option<(ErrorClass, String)> {
    match result {
        Ok(Ok(_)) | Err(TaskError::Cancelled(_)) => None,
        Ok(Err(e)) => Some((e.error_class(), e.to_string())),
        Err(TaskError::Panicked(msg)) => {
            Some((ErrorClass::Transient, format!("task panicked: {msg}")))
        }
    }
}

/// Runs every entry's pipeline across `executor`'s workers. Results are
/// merged in entry order; see the module docs for the determinism
/// guarantee. Transient per-design failures retry under
/// [`CatalogJob::retry`].
pub fn lock_catalog_parallel(
    job: &CatalogJob,
    executor: &Executor,
    token: &CancelToken,
) -> CatalogReport {
    catalog_supervised(job, executor, token, vec![None; job.entries.len()], |_, _| {})
}

/// [`lock_catalog_parallel`] with checkpoint/resume through a campaign
/// journal. `recovered` is the event list [`CampaignJournal::open`]
/// returned: designs with a journaled final status are **replayed**
/// (their canonical body reproduced byte-for-byte, no re-execution), the
/// rest run normally, and every fresh final status and failed attempt is
/// journaled as it happens — so a `SIGKILL` at any point loses at most
/// the in-flight designs, and `interrupt → resume` produces a report
/// byte-identical to an uninterrupted run at any thread count.
///
/// Journal append errors mid-run do not fail the campaign: the sink
/// reports the error to stderr once and the run continues unjournaled
/// (a later resume simply redoes that work).
pub fn lock_catalog_resumable(
    job: &CatalogJob,
    executor: &Executor,
    token: &CancelToken,
    journal: &mut CampaignJournal,
    recovered: &[Event],
) -> CatalogReport {
    let prior = replayed_designs(recovered, &job.entries);
    let sink = Mutex::new(journal);
    let warn = |e: std::io::Error| {
        eprintln!("catalog journal: append failed ({e}); continuing unjournaled");
    };
    catalog_supervised(job, executor, token, prior, |design_index, event| {
        let name = job.entries[design_index].name.as_str();
        match event {
            SupervisedEvent::Attempt(record) => {
                let mut record = record.clone();
                record.index = design_index;
                let event = journal::retry_event("catalog", design_index, name, &record);
                if let Err(e) = sink.lock().expect("journal lock").append(&event) {
                    warn(e);
                }
            }
            SupervisedEvent::Finished { result, .. } => {
                // A cancelled design is not a final outcome — leave it out
                // of the journal so a resumed run re-executes it.
                if matches!(result, Err(TaskError::Cancelled(_))) {
                    return;
                }
                let status = status_of(result.clone());
                let event = journal::design_finished_event(
                    design_index,
                    name,
                    status.is_completed(),
                    &status.canonical_body(),
                );
                if let Err(e) = sink.lock().expect("journal lock").append(&event) {
                    warn(e);
                }
            }
        }
    })
}

/// Decodes `design_finished` events into per-entry replay slots.
/// At-least-once semantics: the last record for an index wins; records
/// whose index or name does not match the job are ignored (stale journal
/// for a different campaign).
fn replayed_designs(events: &[Event], entries: &[CatalogEntry]) -> Vec<Option<ReplayedDesign>> {
    let mut prior: Vec<Option<ReplayedDesign>> = vec![None; entries.len()];
    for event in events.iter().filter(|e| e.kind == journal::KIND_DESIGN_FINISHED) {
        let (Some(index), Some(name), Some(completed), Some(body)) = (
            event.get_parsed::<usize>("index"),
            event.get("name"),
            event.get("completed"),
            event.get("body"),
        ) else {
            continue;
        };
        if index >= entries.len() || entries[index].name != name {
            continue;
        }
        prior[index] = Some(ReplayedDesign {
            name: name.to_owned(),
            completed: completed == "true",
            body: body.to_owned(),
        });
    }
    prior
}

/// The shared engine behind the parallel runners: runs every entry whose
/// `prior` slot is empty under the supervised map, reporting live events
/// (with the *design* index, not the compacted work-list index) to
/// `observe`, then merges replayed and fresh statuses in entry order.
fn catalog_supervised<O>(
    job: &CatalogJob,
    executor: &Executor,
    token: &CancelToken,
    mut prior: Vec<Option<ReplayedDesign>>,
    observe: O,
) -> CatalogReport
where
    O: Fn(usize, SupervisedEvent<'_, Result<DesignSummary, LockError>>) + Sync,
{
    debug_assert_eq!(prior.len(), job.entries.len());
    let todo: Vec<usize> = (0..job.entries.len()).filter(|&i| prior[i].is_none()).collect();
    let todo_ref = &todo;
    let (results, mut retries) = executor.map_supervised_observed(
        token,
        todo.clone(),
        &job.retry,
        classify_design,
        |event| {
            let design_index = match &event {
                SupervisedEvent::Attempt(record) => todo_ref[record.index],
                SupervisedEvent::Finished { index, .. } => todo_ref[*index],
            };
            observe(design_index, event);
        },
        |_, &i, _attempt, worker_token| run_design(&job.entries[i], job, worker_token),
    );
    // Retry records come back indexed by work-list position; lift them to
    // design indices so they line up with the report.
    for record in &mut retries {
        record.index = todo[record.index];
    }
    retries.sort_by_key(|r| (r.index, r.attempt));

    let mut fresh = results.into_iter();
    let designs = job
        .entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let status = match prior[i].take() {
                Some(replay) => DesignStatus::Replayed(replay),
                None => status_of(fresh.next().expect("one result per missing design")),
            };
            (entry.name.clone(), status)
        })
        .collect();
    CatalogReport { designs, retries }
}

/// The sequential twin of [`lock_catalog_parallel`]: same pipeline, same
/// retry semantics, same merge order, one design at a time on the calling
/// thread.
pub fn lock_catalog_sequential(job: &CatalogJob, token: &CancelToken) -> CatalogReport {
    let max_attempts = job.retry.max_attempts.max(1);
    let mut retries = Vec::new();
    let mut designs = Vec::with_capacity(job.entries.len());
    for (i, entry) in job.entries.iter().enumerate() {
        let mut retry_no = 0u32;
        let mut attempt = 1u32;
        let result = loop {
            let out: TaskResult<Result<DesignSummary, LockError>> =
                match token.should_stop() {
                    Some(reason) => Err(TaskError::Cancelled(reason)),
                    None => catch_unwind(AssertUnwindSafe(|| run_design(entry, job, token)))
                        .map_err(|p| TaskError::Panicked(panic_message(&*p))),
                };
            let Some((class, detail)) = classify_design(&out) else { break out };
            let will_retry = class == ErrorClass::Transient
                && attempt < max_attempts
                && token.should_stop().is_none();
            let backoff = if will_retry {
                retry_no += 1;
                Some(job.retry.backoff(retry_no))
            } else {
                None
            };
            retries.push(RetryRecord { index: i, attempt, class, detail, backoff });
            match backoff {
                Some(d) => std::thread::sleep(d),
                None => break out,
            }
            attempt += 1;
        };
        designs.push((entry.name.clone(), status_of(result)));
    }
    CatalogReport { designs, retries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseConfig;
    use crate::select::SelectionSpec;

    fn tiny_module(tag: u8) -> Module {
        rtlock_rtl::parse(&format!(
            r#"
module tiny{tag}(input clk, input rst, input [7:0] d, output reg [7:0] y);
  always @(posedge clk or posedge rst) begin
    if (rst) y <= 8'd0; else y <= (d + 8'd{}) ^ 8'h2{};
  end
endmodule"#,
            13 + tag,
            tag % 10
        ))
        .expect("parses")
    }

    fn quick_config() -> RtlLockConfig {
        RtlLockConfig {
            database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
            spec: SelectionSpec {
                min_resilience: 30.0,
                max_area_pct: 40.0,
                ..SelectionSpec::default()
            },
            verify_cycles: 16,
            scan: None,
            ..RtlLockConfig::default()
        }
    }

    fn tiny_job(n: u8) -> CatalogJob {
        CatalogJob {
            entries: (0..n)
                .map(|i| CatalogEntry {
                    name: format!("tiny{i}"),
                    module: tiny_module(i),
                    config: quick_config(),
                })
                .collect(),
            budget: RunBudget::unlimited(),
            portfolio: None,
            retry: RetryPolicy::default(),
            cache: None,
        }
    }

    #[test]
    fn parallel_merge_preserves_entry_order() {
        let job = tiny_job(3);
        let report = lock_catalog_parallel(&job, &Executor::new(3), &CancelToken::unlimited());
        let names: Vec<&str> = report.designs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["tiny0", "tiny1", "tiny2"]);
        assert_eq!(report.completed(), 3, "{}", report.canonical());
    }

    #[test]
    fn parallel_canonical_matches_sequential() {
        let job = tiny_job(3);
        let reference = lock_catalog_sequential(&job, &CancelToken::unlimited()).canonical();
        for threads in [1, 2, 4] {
            let report =
                lock_catalog_parallel(&job, &Executor::new(threads), &CancelToken::unlimited());
            assert_eq!(report.canonical(), reference, "threads={threads}");
        }
    }

    #[test]
    fn cancelled_run_reports_cancelled_designs() {
        let job = tiny_job(2);
        let token = CancelToken::unlimited();
        token.cancel();
        let par = lock_catalog_parallel(&job, &Executor::new(2), &token);
        let seq = lock_catalog_sequential(&job, &token);
        assert_eq!(par.canonical(), seq.canonical());
        assert!(par
            .designs
            .iter()
            .all(|(_, st)| matches!(st, DesignStatus::Cancelled(_))), "{}", par.canonical());
    }

    #[test]
    fn unknown_benchmark_is_a_structured_error() {
        assert!(matches!(
            CatalogEntry::benchmark("nope", quick_config()),
            Err(LockError::Synthesis(_))
        ));
    }
}
