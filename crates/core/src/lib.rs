//! **RTLock** — scan-aware logic locking at RTL (DATE 2023), reproduced.
//!
//! The crate implements the paper's seven-step locking flow on top of the
//! workspace substrates:
//!
//! 1. **Analyze the RTL** — CDFG + FSM extraction
//!    ([`candidates::enumerate`] uses `rtlock-rtl`'s analyses);
//! 2. **Select locking candidates** — constant, arithmetic and five FSM
//!    locking flavors ([`candidates`]);
//! 3. **Database creation** — each case synthesized and attack-probed
//!    offline ([`database`]);
//! 4. **Selection of cases** — the ILP of Equations 1–2 ([`select`]);
//! 5. **Update RTL** — key ports + site rewrites ([`transforms`]);
//! 6. **Design verification** — co-simulation and SAT-miter equivalence
//!    ([`verify`]);
//! 7. **Partial scan insertion + locking** — SCOAP-guided register choice
//!    with counter-LFSR scan obfuscation ([`scan_lock`]).
//!
//! [`flow::lock`] runs everything and returns a [`flow::LockedDesign`],
//! which exposes the attacker-visible surfaces ([`flow::AttackSurface`])
//! and P1735 export. [`flow::lock_governed`] runs the same flow under a
//! [`governor::RunBudget`]: wall-clock and per-stage deadlines, panic
//! isolation, graceful degradation and deterministic fault injection.
//! [`baselines`] adds the gate-level comparison lockers of Tables III/IV;
//! [`threat`] encodes Table I.
//!
//! # Examples
//!
//! ```
//! use rtlock::flow::{lock, RtlLockConfig};
//! use rtlock::database::DatabaseConfig;
//! use rtlock::select::SelectionSpec;
//!
//! let m = rtlock_rtl::parse(r#"
//! module demo(input clk, input rst, input [7:0] d, output reg [7:0] y);
//!   always @(posedge clk or posedge rst) begin
//!     if (rst) y <= 8'd0; else y <= (d + 8'd13) ^ 8'h21;
//!   end
//! endmodule"#)?;
//!
//! let config = RtlLockConfig {
//!     database: DatabaseConfig { sat_probe: false, ..DatabaseConfig::default() },
//!     spec: SelectionSpec { min_resilience: 30.0, max_area_pct: 40.0, ..SelectionSpec::default() },
//!     ..RtlLockConfig::default()
//! };
//! let locked = lock(&m, &config)?;
//! assert!(locked.key.len() >= 1);
//! assert_eq!(locked.report.verified_mismatch_rate, 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod candidates;
pub mod catalog;
pub mod database;
pub mod flow;
pub mod governor;
pub mod journal;
pub mod scan_lock;
pub mod select;
pub mod testability;
pub mod threat;
pub mod tpm;
pub mod transforms;
pub mod verify;

pub use catalog::{
    lock_catalog_parallel, lock_catalog_resumable, lock_catalog_sequential, CatalogEntry,
    CatalogJob, CatalogReport, DesignStatus, DesignSummary, ReplayedDesign,
};
pub use journal::CampaignJournal;
pub use flow::{
    lock, lock_governed, lock_governed_cached, AttackSurface, LockError, LockedDesign,
    RtlLockConfig,
};
pub use governor::{Degradation, Fault, FaultPlan, RunBudget, Stage};
