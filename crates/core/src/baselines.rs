//! Gate-level baseline locking techniques for the comparative rows of
//! Tables III and IV: RND and MUX2 \[3\], SLL \[31\], TOC_MUX / TOC_XOR \[39\],
//! and IOLTS \[40\].
//!
//! Each locker inserts key gates post-synthesis until a target area
//! overhead (the paper fixes 15 % across techniques) is reached, then
//! returns the locked netlist and the correct key.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlock_netlist::ppa::{analyze as ppa_analyze, PpaConfig};
use rtlock_netlist::{GateId, GateKind, Netlist};

/// The baseline techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Random XOR/XNOR insertion (EPIC-style).
    Rnd,
    /// Key-controlled 2:1 muxes between true and decoy nets.
    Mux2,
    /// Interference-aware XOR/XNOR insertion ("secure logic locking").
    Sll,
    /// Fault-analysis guided MUX insertion.
    TocMux,
    /// Fault-analysis guided XOR/XNOR insertion.
    TocXor,
    /// AND/OR key-gate insertion (IOLTS'14).
    Iolts,
}

impl BaselineKind {
    /// All techniques in Table III order.
    pub fn all() -> [BaselineKind; 6] {
        [
            BaselineKind::Rnd,
            BaselineKind::Mux2,
            BaselineKind::Sll,
            BaselineKind::TocMux,
            BaselineKind::TocXor,
            BaselineKind::Iolts,
        ]
    }

    /// Table-row name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Rnd => "RND",
            BaselineKind::Mux2 => "MUX2",
            BaselineKind::Sll => "SLL",
            BaselineKind::TocMux => "TOC_MUX",
            BaselineKind::TocXor => "TOC_XOR",
            BaselineKind::Iolts => "IOLTS",
        }
    }
}

/// A gate-level-locked netlist plus its correct key.
#[derive(Debug, Clone)]
pub struct BaselineLocked {
    /// The locked netlist (key inputs marked, in key order).
    pub netlist: Netlist,
    /// Correct key bits.
    pub key: Vec<bool>,
    /// Technique used.
    pub kind: BaselineKind,
    /// Achieved area overhead in percent.
    pub area_overhead_pct: f64,
}

/// Locks `original` with `kind` until `target_overhead_pct` area overhead
/// is reached (or `max_key_bits` as a safety bound).
///
/// # Panics
///
/// Panics if the original netlist is cyclic or has no logic gates.
pub fn lock_baseline(
    original: &Netlist,
    kind: BaselineKind,
    target_overhead_pct: f64,
    max_key_bits: usize,
    seed: u64,
) -> BaselineLocked {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_area = ppa_analyze(original, &PpaConfig::default()).area_um2;
    assert!(base_area > 0.0, "empty netlist");
    let mut n = original.clone();
    let mut key = Vec::new();

    // Candidate insertion points, ranked per technique.
    let mut sites = rank_sites(&n, kind, &mut rng);
    let mut site_cursor = 0usize;

    while key.len() < max_key_bits {
        let area = ppa_analyze(&n, &PpaConfig::default()).area_um2;
        if (area - base_area) / base_area * 100.0 >= target_overhead_pct {
            break;
        }
        if site_cursor >= sites.len() {
            // Re-rank over the grown netlist.
            sites = rank_sites(&n, kind, &mut rng);
            site_cursor = 0;
            if sites.is_empty() {
                break;
            }
        }
        let target = sites[site_cursor];
        site_cursor += 1;
        if !n.gate(target).kind.is_logic() && n.gate(target).kind != GateKind::Input {
            continue;
        }
        let bit_index = key.len();
        let k = n.add_input(format!("keyinput{bit_index}"));
        n.mark_key_input(k);
        match kind {
            BaselineKind::Rnd | BaselineKind::Sll | BaselineKind::TocXor => {
                let correct = rng.gen_bool(0.5);
                let gate = if correct {
                    n.add_gate(GateKind::Xnor, vec![target, k])
                } else {
                    n.add_gate(GateKind::Xor, vec![target, k])
                };
                n.replace_uses(target, gate, &[gate]);
                key.push(correct);
            }
            BaselineKind::Mux2 | BaselineKind::TocMux => {
                let decoy = random_other_net(&n, target, &mut rng);
                let correct = rng.gen_bool(0.5);
                let gate = if correct {
                    n.add_gate(GateKind::Mux, vec![k, decoy, target]) // sel=1 -> target
                } else {
                    n.add_gate(GateKind::Mux, vec![k, target, decoy])
                };
                n.replace_uses(target, gate, &[gate]);
                key.push(correct);
            }
            BaselineKind::Iolts => {
                // AND with key (correct 1) or OR with key (correct 0).
                let use_and = rng.gen_bool(0.5);
                let gate = if use_and {
                    n.add_gate(GateKind::And, vec![target, k])
                } else {
                    n.add_gate(GateKind::Or, vec![target, k])
                };
                n.replace_uses(target, gate, &[gate]);
                key.push(use_and);
            }
        }
    }
    let area = ppa_analyze(&n, &PpaConfig::default()).area_um2;
    BaselineLocked {
        netlist: n,
        key,
        kind,
        area_overhead_pct: (area - base_area) / base_area * 100.0,
    }
}

/// A random net outside `avoid`'s transitive fanout cone (a decoy inside
/// the cone would create a combinational cycle through the mux).
fn random_other_net(n: &Netlist, avoid: GateId, rng: &mut StdRng) -> GateId {
    let fanouts = n.fanouts();
    let mut cone = std::collections::HashSet::from([avoid]);
    let mut stack = vec![avoid];
    while let Some(g) = stack.pop() {
        for &f in &fanouts[g.index()] {
            // Flip-flops cut combinational paths.
            if !n.gate(f).kind.is_dff() && cone.insert(f) {
                stack.push(f);
            }
        }
    }
    let pool: Vec<GateId> = n
        .ids()
        .filter(|&g| {
            !cone.contains(&g)
                && (n.gate(g).kind.is_logic() || n.gate(g).kind == GateKind::Input)
                && !n.key_inputs.contains(&g)
        })
        .collect();
    if pool.is_empty() {
        avoid
    } else {
        pool[rng.gen_range(0..pool.len())]
    }
}

/// Ranks candidate nets for key-gate insertion, technique-specific.
fn rank_sites(n: &Netlist, kind: BaselineKind, rng: &mut StdRng) -> Vec<GateId> {
    let mut logic: Vec<GateId> = n
        .ids()
        .filter(|&g| {
            (n.gate(g).kind.is_logic() || n.gate(g).kind == GateKind::Input)
                && !n.key_inputs.contains(&g)
        })
        .collect();
    match kind {
        BaselineKind::Rnd | BaselineKind::Mux2 | BaselineKind::Iolts => {
            // Uniform random order.
            for i in (1..logic.len()).rev() {
                logic.swap(i, rng.gen_range(0..=i));
            }
        }
        BaselineKind::Sll => {
            // Interference heuristic: high fanout first, deep second.
            let fanouts = n.fanouts();
            let levels = n.levelize().unwrap_or_else(|_| vec![0; n.len()]);
            logic.sort_by_key(|g| {
                std::cmp::Reverse((fanouts[g.index()].len() as u32) * 16 + levels[g.index()].min(15))
            });
        }
        BaselineKind::TocMux | BaselineKind::TocXor => {
            // Fault-impact heuristic: how many output bits flip when the
            // net is stuck, over random patterns (the "fault analysis" of
            // [39]).
            let impact = fault_impact(n, rng.gen());
            logic.sort_by_key(|g| std::cmp::Reverse(impact[g.index()]));
        }
    }
    logic.truncate(1024);
    logic
}

/// Popcount of output flips when each net is forced to its complement,
/// over one 64-lane random block.
fn fault_impact(n: &Netlist, seed: u64) -> Vec<u64> {
    use rtlock_netlist::NetSim;
    let Ok(mut sim) = NetSim::new(n) else {
        return vec![0; n.len()];
    };
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &i in n.inputs() {
        let r = next();
        sim.set_input(i, r);
    }
    sim.reset();
    sim.step();
    let good: Vec<u64> = n.outputs().iter().map(|&(_, g)| sim.value(g)).collect();
    let fanouts = n.fanouts();
    let order = n.topo_order().unwrap_or_else(|_| n.ids().collect());
    let mut impact = vec![0u64; n.len()];
    for site in n.ids() {
        if !n.gate(site).kind.is_logic() {
            continue;
        }
        // Cone re-simulation with the site inverted.
        let mut vals: Vec<u64> = n.ids().map(|g| sim.value(g)).collect();
        vals[site.index()] = !vals[site.index()];
        let mut cone = std::collections::HashSet::new();
        let mut stack = vec![site];
        while let Some(g) = stack.pop() {
            for &f in &fanouts[g.index()] {
                if cone.insert(f) {
                    stack.push(f);
                }
            }
        }
        for &g in &order {
            if !cone.contains(&g) || !n.gate(g).kind.is_logic() {
                continue;
            }
            let ins: Vec<u64> = n.gate(g).fanin.iter().map(|f| vals[f.index()]).collect();
            vals[g.index()] = n.gate(g).kind.eval64(&ins);
        }
        let mut flips = 0u64;
        for (i, &(_, drv)) in n.outputs().iter().enumerate() {
            flips += (vals[drv.index()] ^ good[i]).count_ones() as u64;
        }
        impact[site.index()] = flips;
    }
    impact
}

/// Applies the correct key and checks functional equivalence on random
/// patterns (sanity helper shared by tests and benches).
pub fn baseline_is_sound(locked: &BaselineLocked, original: &Netlist, patterns: usize, seed: u64) -> bool {
    rtlock_attacks::key_accuracy(&locked.netlist, original, &locked.key, patterns, seed) == 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlock_synth::{elaborate, optimize};

    fn sample_netlist() -> Netlist {
        let m = rtlock_rtl::parse(
            "module t(input [7:0] a, input [7:0] b, output [7:0] s, output [7:0] x);\n\
             assign s = a + b;\n assign x = (a ^ b) & 8'h7F;\nendmodule",
        )
        .unwrap();
        let mut n = elaborate(&m).unwrap();
        optimize(&mut n);
        n
    }

    #[test]
    fn every_baseline_locks_soundly() {
        let orig = sample_netlist();
        for kind in BaselineKind::all() {
            let locked = lock_baseline(&orig, kind, 15.0, 64, 42);
            assert!(!locked.key.is_empty(), "{kind:?} inserted keys");
            assert!(
                baseline_is_sound(&locked, &orig, 32, 7),
                "{kind:?} must be functionally correct under its key"
            );
            assert_eq!(locked.netlist.key_inputs.len(), locked.key.len());
        }
    }

    #[test]
    fn wrong_key_corrupts() {
        let orig = sample_netlist();
        for kind in BaselineKind::all() {
            let locked = lock_baseline(&orig, kind, 15.0, 64, 43);
            let mut wrong = locked.key.clone();
            for b in wrong.iter_mut() {
                *b = !*b;
            }
            let acc = rtlock_attacks::key_accuracy(&locked.netlist, &orig, &wrong, 32, 9);
            assert!(acc < 1.0, "{kind:?}: all-flipped key must corrupt, acc={acc}");
        }
    }

    #[test]
    fn overhead_reaches_target() {
        let orig = sample_netlist();
        let locked = lock_baseline(&orig, BaselineKind::Rnd, 15.0, 256, 44);
        assert!(locked.area_overhead_pct >= 14.0, "got {}", locked.area_overhead_pct);
        // Larger budget -> more key bits.
        let bigger = lock_baseline(&orig, BaselineKind::Rnd, 30.0, 256, 44);
        assert!(bigger.key.len() > locked.key.len());
    }

    #[test]
    fn key_bits_capped() {
        let orig = sample_netlist();
        let locked = lock_baseline(&orig, BaselineKind::TocXor, 90.0, 10, 45);
        assert_eq!(locked.key.len(), 10);
    }

    #[test]
    fn optimization_does_not_break_locked_netlists() {
        // The ML attacks re-optimize locked netlists; make sure that is
        // sound for baseline-locked circuits too.
        let orig = sample_netlist();
        let locked = lock_baseline(&orig, BaselineKind::Iolts, 15.0, 64, 46);
        let mut opt = locked.netlist.clone();
        optimize(&mut opt);
        let acc = rtlock_attacks::key_accuracy(&opt, &orig, &locked.key, 32, 11);
        assert_eq!(acc, 1.0);
    }
}
